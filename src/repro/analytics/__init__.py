"""Offline infection analytics: the Section II study and figure data."""

from repro.analytics.exposure import (
    EXPOSURE_CATEGORIES,
    classify_origin,
    exposure_distribution,
    per_family_exposure,
)
from repro.analytics.graphprops import (
    FIG3_PROPERTIES,
    average_graph_properties,
    class_feature_matrix,
    feature_distribution,
)
from repro.analytics.headers import (
    FIG4_ELEMENTS,
    average_header_elements,
    header_element_counts,
)
from repro.analytics.report import format_distribution, format_table
from repro.analytics.study import (
    FamilyRow,
    GlobalProperties,
    callback_prevalence,
    global_properties,
    table1_rows,
)

__all__ = [
    "EXPOSURE_CATEGORIES",
    "FIG3_PROPERTIES",
    "FIG4_ELEMENTS",
    "FamilyRow",
    "GlobalProperties",
    "average_graph_properties",
    "average_header_elements",
    "callback_prevalence",
    "class_feature_matrix",
    "classify_origin",
    "exposure_distribution",
    "feature_distribution",
    "format_distribution",
    "format_table",
    "global_properties",
    "header_element_counts",
    "per_family_exposure",
    "table1_rows",
]
