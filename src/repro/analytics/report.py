"""Plain-text table/figure rendering for experiment reports.

Every experiment runner prints through these helpers so the bench output
visually matches the paper's tables (rows/columns in the same order).
"""

from __future__ import annotations

__all__ = ["format_table", "format_distribution"]


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_distribution(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
) -> str:
    """Render a labelled horizontal bar chart (for figure reproductions)."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.4g}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
