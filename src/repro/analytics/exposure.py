"""Enticement exposure analysis (Section II-B, Figures 1 and 2).

Recovers, per infection trace, the enticement strategy that lured the
victim — by classifying the origin of the conversation — and aggregates
overall (Figure 1) and per-family (Figure 2) distributions.
"""

from __future__ import annotations

from repro.core.model import Trace
from repro.synthesis.corpus import Corpus
from repro.synthesis.entities import SEARCH_ENGINES, SOCIAL_SITES

__all__ = ["classify_origin", "exposure_distribution",
           "per_family_exposure", "cms_breakdown", "EXPOSURE_CATEGORIES"]

#: Figure 1 legend categories, in display order.
EXPOSURE_CATEGORIES = (
    "google", "bing", "empty", "compromised", "redacted", "social",
    "legitimate",
)

_CMS_MARKERS = ("/wp-content/", "/wp-includes/", "/wp-admin/",
                "/components/com_", "/modules/mod_", "/sites/default/")


def classify_origin(trace: Trace) -> str:
    """Classify one infection trace's enticement origin.

    Mirrors the paper's forensics: search-engine referrers are read off
    the origin host; empty referrers indicate concealment; an entry-hop
    URI matching a default CMS installation marks a compromised site.
    """
    origin = trace.origin.lower()
    if not origin:
        # Distinguish concealed-empty from privacy-redacted via metadata
        # when available (the generators record it); default to empty.
        if trace.meta.get("enticement") == "redacted":
            return "redacted"
        return "empty"
    if "google" in origin:
        return "google"
    if "bing" in origin:
        return "bing"
    if any(origin.endswith(s) for s in SOCIAL_SITES):
        return "social"
    if any(origin.endswith(s) for s in SEARCH_ENGINES):
        return "google"  # minor engines folded into the search share
    first_uri = ""
    for txn in trace.transactions:
        if txn.server == origin or txn.request.referrer_host == origin:
            first_uri = txn.request.uri
            break
    if trace.transactions and not first_uri:
        first_uri = trace.transactions[0].request.uri
    if any(marker in first_uri for marker in _CMS_MARKERS):
        return "compromised"
    if trace.meta.get("enticement") == "compromised":
        return "compromised"
    return "legitimate"


def exposure_distribution(traces: list[Trace]) -> dict[str, float]:
    """Figure 1: fraction of infections per enticement category."""
    counts = {category: 0 for category in EXPOSURE_CATEGORIES}
    total = 0
    for trace in traces:
        if not trace.is_infection:
            continue
        counts[classify_origin(trace)] += 1
        total += 1
    if total == 0:
        return {category: 0.0 for category in EXPOSURE_CATEGORIES}
    return {category: count / total for category, count in counts.items()}


def per_family_exposure(corpus: Corpus) -> dict[str, dict[str, float]]:
    """Figure 2: per-family enticement distributions."""
    result: dict[str, dict[str, float]] = {}
    for family in corpus.families:
        result[family] = exposure_distribution(corpus.by_family(family))
    return result


#: CMS fingerprints for the Section II-B "weaponization of compromised
#: sites" analysis (URI patterns of default installations).
_CMS_FINGERPRINTS = {
    "wordpress": ("/wp-content/", "/wp-includes/", "/wp-admin/"),
    "joomla": ("/components/com_", "/modules/mod_"),
    "drupal": ("/sites/default/",),
}


def cms_breakdown(traces: list[Trace]) -> dict[str, int]:
    """Count compromised-site enticements per CMS (Section II-B).

    The paper matched the entry-hop URIs of the 94 compromised-site
    enticements against default CMS installation paths and found 56/94
    WordPress.  Returns ``{cms_name: count, "other": count}`` over the
    infection traces whose enticement was a compromised site.
    """
    counts = {name: 0 for name in _CMS_FINGERPRINTS}
    counts["other"] = 0
    for trace in traces:
        if not trace.is_infection:
            continue
        if classify_origin(trace) != "compromised":
            continue
        first_uri = trace.transactions[0].request.uri if trace.transactions else ""
        matched = False
        for name, markers in _CMS_FINGERPRINTS.items():
            if any(marker in first_uri for marker in markers):
                counts[name] += 1
                matched = True
                break
        if not matched:
            counts["other"] += 1
    return counts
