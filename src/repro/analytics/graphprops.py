"""Graph-property aggregates: Figure 3 and the Figure 7-9 distributions.

Figure 3 compares average measures of twelve graph properties between
infection and benign WCGs; Figures 7-9 show the per-WCG distributions of
average node connectivity, betweenness centrality, and closeness
centrality.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import build_wcg
from repro.core.model import Trace
from repro.features.extractor import FeatureExtractor
from repro.features.registry import feature_names

__all__ = ["FIG3_PROPERTIES", "average_graph_properties",
           "feature_distribution", "class_feature_matrix"]

#: The properties plotted in Figure 3, by feature name.
FIG3_PROPERTIES = (
    "order", "size", "diameter", "degree", "volume", "density",
    "avg_degree_centrality", "avg_closeness_centrality",
    "avg_betweenness_centrality", "avg_load_centrality",
    "avg_degree_connectivity", "avg_neighbor_degree", "avg_pagerank",
)


def class_feature_matrix(
    traces: list[Trace],
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Extract (X, y, names) over labelled traces (helper for figures)."""
    extractor = FeatureExtractor()
    rows = []
    labels = []
    for trace in traces:
        rows.append(extractor.extract(build_wcg(trace)))
        labels.append(1.0 if trace.is_infection else 0.0)
    return np.vstack(rows), np.array(labels), feature_names()


def average_graph_properties(
    traces: list[Trace],
) -> dict[str, dict[str, float]]:
    """Figure 3 data: mean of each graph property per class.

    Returns ``{property: {"infection": mean, "benign": mean}}``.
    """
    X, y, names = class_feature_matrix(traces)
    result: dict[str, dict[str, float]] = {}
    for prop in FIG3_PROPERTIES:
        column = X[:, names.index(prop)]
        result[prop] = {
            "infection": float(column[y == 1].mean()) if (y == 1).any() else 0.0,
            "benign": float(column[y == 0].mean()) if (y == 0).any() else 0.0,
        }
    return result


def feature_distribution(
    traces: list[Trace],
    feature: str,
    bins: int = 20,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figures 7-9 data: per-class histogram of one feature.

    Returns ``{"infection": (counts, edges), "benign": (counts, edges)}``
    over a shared bin grid.
    """
    X, y, names = class_feature_matrix(traces)
    column = X[:, names.index(feature)]
    lo, hi = float(column.min()), float(column.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    inf_counts, _ = np.histogram(column[y == 1], bins=edges)
    ben_counts, _ = np.histogram(column[y == 0], bins=edges)
    return {
        "infection": (inf_counts, edges),
        "benign": (ben_counts, edges),
    }
