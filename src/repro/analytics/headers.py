"""HTTP-header statistics (Section II-D, Figure 4).

Average counts of header elements per trace, compared between infection
and benign classes: GET/POST requests, redirection chains, response-code
classes, and referrer presence.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import HttpMethod, Trace
from repro.core.redirects import (
    RedirectKind,
    infer_redirects,
    longest_chain_length,
)

__all__ = ["FIG4_ELEMENTS", "header_element_counts", "average_header_elements"]

#: Figure 4 x-axis categories.
FIG4_ELEMENTS = (
    "get", "post", "redirect_chains", "http_20x", "http_30x", "http_40x",
    "http_50x", "with_referrer", "no_referrer",
)


def header_element_counts(trace: Trace) -> dict[str, float]:
    """Per-trace counts of the Figure 4 header elements."""
    counts = {element: 0.0 for element in FIG4_ELEMENTS}
    for txn in trace.transactions:
        if txn.request.method is HttpMethod.GET:
            counts["get"] += 1
        elif txn.request.method is HttpMethod.POST:
            counts["post"] += 1
        if txn.request.referrer:
            counts["with_referrer"] += 1
        else:
            counts["no_referrer"] += 1
        klass = txn.status // 100
        if klass == 2:
            counts["http_20x"] += 1
        elif klass == 3:
            counts["http_30x"] += 1
        elif klass == 4:
            counts["http_40x"] += 1
        elif klass == 5:
            counts["http_50x"] += 1
    genuine = [
        r for r in infer_redirects(trace.transactions)
        if r.kind is not RedirectKind.REFERRER
    ]
    counts["redirect_chains"] = float(longest_chain_length(genuine))
    return counts


def average_header_elements(
    traces: list[Trace],
) -> dict[str, dict[str, float]]:
    """Figure 4 data: mean of each element per class.

    Returns ``{element: {"infection": mean, "benign": mean}}``.
    """
    sums = {
        "infection": {element: [] for element in FIG4_ELEMENTS},
        "benign": {element: [] for element in FIG4_ELEMENTS},
    }
    for trace in traces:
        side = "infection" if trace.is_infection else "benign"
        counts = header_element_counts(trace)
        for element in FIG4_ELEMENTS:
            sums[side][element].append(counts[element])
    result: dict[str, dict[str, float]] = {}
    for element in FIG4_ELEMENTS:
        result[element] = {
            side: float(np.mean(values)) if values else 0.0
            for side, values in (
                ("infection", sums["infection"][element]),
                ("benign", sums["benign"][element]),
            )
        }
    return result
