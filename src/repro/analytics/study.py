"""The Section II infection-dynamics study: Table I and global properties.

Given a corpus of labelled traces, recomputes everything the paper's
offline analysis reports: the per-family ground-truth statistics
(Table I), the Section III-D global graph properties, and the
post-infection call-back prevalence (Section II-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import build_wcg
from repro.core.model import Trace
from repro.core.payloads import PayloadType
from repro.core.redirects import (
    RedirectKind,
    infer_redirects,
    longest_chain_length,
)
from repro.synthesis.corpus import Corpus

__all__ = ["FamilyRow", "GlobalProperties", "table1_rows", "global_properties",
           "callback_prevalence"]

#: Table I payload columns, in paper order.
_PAYLOAD_COLUMNS = ("pdf", "exe", "jar", "swf", "crypt", "js")

_COLUMN_TYPES: dict[str, tuple[PayloadType, ...]] = {
    "pdf": (PayloadType.PDF,),
    "exe": (PayloadType.EXE, PayloadType.DMG),
    "jar": (PayloadType.JAR,),
    "swf": (PayloadType.SWF,),
    "crypt": (PayloadType.CRYPT,),
    "js": (PayloadType.JAVASCRIPT,),
}


@dataclass
class FamilyRow:
    """One Table I row recomputed from a corpus."""

    family: str
    n_traces: int
    hosts_min: int
    hosts_max: int
    hosts_avg: float
    redirects_min: int
    redirects_max: int
    redirects_avg: float
    payload_counts: dict[str, int] = field(default_factory=dict)

    def as_list(self) -> list[object]:
        """Row cells in the paper's column order."""
        return [
            self.family, self.n_traces,
            self.hosts_min, self.hosts_max, round(self.hosts_avg, 1),
            self.redirects_min, self.redirects_max,
            round(self.redirects_avg, 1),
            *(self.payload_counts.get(col, 0) for col in _PAYLOAD_COLUMNS),
        ]


def _trace_stats(trace: Trace) -> tuple[int, int, dict[str, int]]:
    """(host count, redirect chain length, payload counts) for one trace."""
    hosts = len(trace.hosts)
    # Table I counts actual redirections (30x / content-embedded); the
    # referrer-corroborated hops our graph builder also mines would count
    # ordinary link clicks as redirects.
    genuine = [
        r for r in infer_redirects(trace.transactions)
        if r.kind is not RedirectKind.REFERRER
    ]
    redirects = longest_chain_length(genuine)
    counts: dict[str, int] = {}
    for txn in trace.transactions:
        if txn.status != 200:
            continue
        for column, types in _COLUMN_TYPES.items():
            if txn.payload_type in types:
                counts[column] = counts.get(column, 0) + 1
    return hosts, redirects, counts


def table1_rows(corpus: Corpus) -> list[FamilyRow]:
    """Recompute Table I: the benign row first, then each family."""
    groups: list[tuple[str, list[Trace]]] = [("Benign", corpus.benign)]
    groups.extend(
        (family, corpus.by_family(family)) for family in corpus.families
    )
    rows: list[FamilyRow] = []
    for family, traces in groups:
        if not traces:
            continue
        host_counts: list[int] = []
        redirect_counts: list[int] = []
        payload_totals: dict[str, int] = {}
        for trace in traces:
            hosts, redirects, counts = _trace_stats(trace)
            host_counts.append(hosts)
            redirect_counts.append(redirects)
            for column, count in counts.items():
                payload_totals[column] = payload_totals.get(column, 0) + count
        rows.append(
            FamilyRow(
                family=family,
                n_traces=len(traces),
                hosts_min=min(host_counts),
                hosts_max=max(host_counts),
                hosts_avg=float(np.mean(host_counts)),
                redirects_min=min(redirect_counts),
                redirects_max=max(redirect_counts),
                redirects_avg=float(np.mean(redirect_counts)),
                payload_counts=payload_totals,
            )
        )
    return rows


@dataclass(frozen=True)
class GlobalProperties:
    """Section III-D global WCG properties."""

    nodes_min: int
    nodes_max: int
    nodes_avg: float
    edges_min: int
    edges_max: int
    edges_avg: float
    lifetime_min: float
    lifetime_max: float
    lifetime_avg: float


def global_properties(traces: list[Trace]) -> GlobalProperties:
    """Node/edge/lifetime ranges over the given traces' WCGs."""
    nodes: list[int] = []
    edges: list[int] = []
    lifetimes: list[float] = []
    for trace in traces:
        wcg = build_wcg(trace)
        nodes.append(wcg.order)
        edges.append(wcg.size)
        lifetimes.append(trace.duration)
    return GlobalProperties(
        nodes_min=min(nodes), nodes_max=max(nodes),
        nodes_avg=float(np.mean(nodes)),
        edges_min=min(edges), edges_max=max(edges),
        edges_avg=float(np.mean(edges)),
        lifetime_min=min(lifetimes), lifetime_max=max(lifetimes),
        lifetime_avg=float(np.mean(lifetimes)),
    )


def callback_prevalence(traces: list[Trace]) -> float:
    """Fraction of traces with at least one post-download edge.

    The paper confirmed call-back attempts in 708/770 infection traces
    (Section II-D).
    """
    if not traces:
        return 0.0
    with_callback = sum(
        1 for trace in traces if build_wcg(trace).has_post_download_dynamics()
    )
    return with_callback / len(traces)
