"""Pipeline stats reporting: registry snapshots as JSON lines.

:class:`PipelineStatsReporter` turns the active metrics registry into a
stream of JSON-lines snapshots — one object per line, each carrying the
reason it was emitted (``"interval"`` / ``"finalize"`` / caller-chosen),
wall-clock seconds since the reporter started, and the full
counters/gauges/histograms view.  It is the single source both for
operator-facing telemetry (``dynaminer detect --metrics``) and for the
benchmark artifacts, so perf numbers and production counters cannot
drift apart.

``maybe_emit`` is safe to call from the per-packet hot loop: it is one
clock read and a comparison until the interval elapses, and a no-op
when no interval is configured.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable

from repro.obs.registry import MetricsRegistry, NullRegistry, get_registry

__all__ = ["PipelineStatsReporter", "read_snapshots", "parse_snapshots"]


class PipelineStatsReporter:
    """Snapshots a metrics registry as JSON lines.

    Args:
        registry: registry to snapshot; defaults to the active one.
        out: ``None`` collects lines in :attr:`lines` (tests,
            benchmarks); a path string appends to that file; a
            file-like object is written to directly (not closed).
        interval: seconds between :meth:`maybe_emit` snapshots;
            ``None`` disables interval emission (finalize-only).
        clock: injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry | None = None,
        out: str | IO[str] | None = None,
        interval: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.interval = interval
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self.emitted = 0
        #: Counter values at the last emission — the baseline the
        #: per-interval deltas and rates are computed against.
        self._last_counters: dict[str, int] = {}
        #: Snapshot lines retained when no ``out`` sink is configured.
        self.lines: list[str] = []
        self._stream: IO[str] | None = None
        self._owns_stream = False
        if out is None:
            pass
        elif hasattr(out, "write"):
            self._stream = out  # type: ignore[assignment]
        else:
            self._stream = open(out, "a", encoding="utf-8")
            self._owns_stream = True

    def snapshot(self, reason: str = "interval") -> dict:
        """Build (without emitting) one snapshot dict.

        Alongside the cumulative registry view, each snapshot carries
        the counter *deltas* since the previous emission and the
        derived per-second *rates* (``<name>_per_s``) over that
        interval, so operators and bench artifacts read steady-state
        throughput (e.g. ``decode.packets_per_s``) without
        post-processing.  Raw histogram sample buffers are stripped —
        they exist for the fleet merge, not for JSONL lines.
        """
        data = self.registry.snapshot()
        for hist in data.get("histograms", {}).values():
            hist.pop("samples", None)
        data["reason"] = reason
        now = self._clock()
        data["elapsed_seconds"] = now - self._started
        interval = now - self._last_emit if self.emitted else data[
            "elapsed_seconds"]
        data["interval_seconds"] = interval
        deltas = {
            name: value - self._last_counters.get(name, 0)
            for name, value in data.get("counters", {}).items()
        }
        data["deltas"] = deltas
        data["rates"] = {
            f"{name}_per_s": delta / interval
            for name, delta in deltas.items()
        } if interval > 0 else {}
        return data

    def emit(self, reason: str = "interval") -> dict:
        """Write one JSON-lines snapshot; returns the snapshot dict."""
        data = self.snapshot(reason)
        line = json.dumps(data, sort_keys=True)
        if self._stream is not None:
            self._stream.write(line + "\n")
            self._stream.flush()
        else:
            self.lines.append(line)
        self.emitted += 1
        self._last_emit = self._clock()
        # The next interval's deltas start from this emission.
        self._last_counters = dict(data.get("counters", {}))
        return data

    def maybe_emit(self, reason: str = "interval") -> dict | None:
        """Emit iff the configured interval has elapsed since the last
        emission; cheap enough for per-packet call sites."""
        if self.interval is None:
            return None
        if self._clock() - self._last_emit < self.interval:
            return None
        return self.emit(reason)

    def finalize(self) -> dict:
        """Emit the end-of-run snapshot and release the sink."""
        data = self.emit("finalize")
        self.close()
        return data

    def close(self) -> None:
        """Close the output file if this reporter opened it."""
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None
            self._owns_stream = False


def parse_snapshots(lines: list[str]) -> list[dict]:
    """Decode JSON-lines snapshot strings (skips blank lines)."""
    return [json.loads(line) for line in lines if line.strip()]


def read_snapshots(path: str) -> list[dict]:
    """Read every snapshot from a JSON-lines stats file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_snapshots(handle.readlines())
