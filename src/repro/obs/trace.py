"""Detection tracing: bounded, deterministic per-watch event timelines.

The metrics registry (:mod:`repro.obs.registry`) answers "how much";
this module answers "why did *this* alert fire".  A :class:`Tracer`
accumulates a ring-buffered timeline of structured :class:`TraceEvent`
records per session watch — watch opened, clue fired, edge appended,
structure-version bump, score computed, verdict (alert / cooldown /
benign), watch pruned — and the detector reads the per-watch clue
summary back out of it to assemble each alert's provenance record
(:class:`repro.detection.alerts.AlertProvenance`).

The enablement pattern mirrors the registry exactly: components capture
the active tracer once at construction (:func:`get_tracer`), the
default :class:`NullTracer` makes every emission a single attribute
load plus a no-op call, and recording is switched on *before* the
pipeline is built — ``REPRO_TRACE=1`` in the environment,
:func:`enable_tracing`, or the scoped :func:`use_tracer`.
``tests/detection/test_trace_differential.py`` proves pipeline outputs
(alerts, graphs, vectors, metrics) are byte-identical either way.

Determinism contract: every event field except the wall-clock stamps —
``mono`` (monotonic seconds since the tracer started) and the
``latency_s`` score-timing datum — and the process-layout-dependent
``batch`` datum is derived from the packet stream alone.
:meth:`TraceEvent.canonical` strips exactly those fields, and
the sharded service merges per-shard streams under the same
``(timestamp, shard_id, seq)`` key as alerts, so any worker count
yields the identical canonical trace stream (DESIGN.md §16).

Boundedness: per-watch rings cap at ``max_events_per_watch`` (oldest
events drop first; the per-watch clue summary is kept out-of-ring so
provenance never loses its clue chain), closed-watch timelines cap at
``max_events`` globally, and the per-watch table caps at
``max_watches`` — a process-wide tracer left on for an entire test
session stays O(1) in memory.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, Callable, Iterable, Iterator

from repro.obs.registry import _env_enabled

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "canonical_events",
    "write_trace",
    "read_trace",
    "parse_trace",
]

#: Event kinds emitted by the detection path (DESIGN.md §16).
EVENT_KINDS = ("watch", "clue", "edge", "wcg", "score", "verdict", "prune")

#: Sampling modes: ``"full"`` keeps every watch's timeline; ``"alerts"``
#: discards the timelines of watches that close without alerting.
SAMPLE_MODES = ("full", "alerts")

#: Data keys excluded from the canonical (determinism-checked) form
#: alongside ``mono``: ``latency_s`` is a wall-clock measurement, and
#: ``batch`` (micro-batch size at score flush) depends on how many
#: clients' requests coalesced in one process — shard layout, not
#: stream content.
_VOLATILE_KEYS = frozenset({"latency_s", "batch"})

#: Clue summaries kept per watch regardless of ring eviction.
_MAX_CLUES = 32


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on a watch timeline.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        ts: stream (packet) time the event describes.
        mono: monotonic wall seconds since the tracer started.
        client: victim host the event belongs to ("" for global events).
        watch: session-watch key ("" for global events).
        data: kind-specific fields, JSON primitives only (picklable
            across worker processes).
        seq: emission ordinal within this tracer — the deterministic
            tie-break of the ``(ts, shard_id, seq)`` merge key; not
            part of the exported dict forms.
    """

    kind: str
    ts: float
    mono: float
    client: str
    watch: str
    data: dict
    seq: int = 0

    def to_dict(self) -> dict:
        """Full JSON form (one trace JSONL line)."""
        return {
            "kind": self.kind,
            "ts": self.ts,
            "mono": self.mono,
            "client": self.client,
            "watch": self.watch,
            "data": dict(self.data),
        }

    def canonical(self) -> dict:
        """Deterministic form: the dict minus wall-clock fields.

        Two runs of the same packet stream — any worker count, tracing
        merged or single-process — produce identical canonical streams.
        """
        return {
            "kind": self.kind,
            "ts": self.ts,
            "client": self.client,
            "watch": self.watch,
            "data": {
                key: value
                for key, value in self.data.items()
                if key not in _VOLATILE_KEYS
            },
        }


class _WatchTrace:
    """Per-watch accumulation: the event ring plus the clue summary.

    The clue summary lives outside the ring because provenance depends
    on it — a busy watch may rotate its ring past the clue events, but
    the alert's clue chain must survive."""

    __slots__ = ("events", "clues", "clue_count")

    def __init__(self, cap: int):
        self.events: deque[TraceEvent] = deque(maxlen=cap)
        self.clues: list[TraceEvent] = []
        self.clue_count = 0


class Tracer:
    """Recording tracer: bounded per-watch rings, deterministic output.

    Args:
        sample: ``"full"`` (every watch timeline) or ``"alerts"``
            (only watches that alerted survive :meth:`close_watch`).
        max_events_per_watch: ring size per live watch.
        max_events: cap on retained closed-watch events (oldest drop).
        max_watches: cap on concurrently tracked watch timelines.
        clock: injectable monotonic clock (tests pin it).
    """

    enabled = True

    def __init__(
        self,
        sample: str = "full",
        max_events_per_watch: int = 512,
        max_events: int = 100_000,
        max_watches: int = 8192,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if sample not in SAMPLE_MODES:
            raise ValueError(f"unknown trace sampling mode {sample!r}")
        self.sample = sample
        self.max_events_per_watch = max(1, max_events_per_watch)
        self.max_events = max(1, max_events)
        self.max_watches = max(1, max_watches)
        self._clock = clock
        self._origin = clock()
        self._watches: dict[str, _WatchTrace] = {}
        self._done: list[TraceEvent] = []
        self._seq = 0
        self.dropped_events = 0
        self.dropped_watches = 0

    # -- recording ----------------------------------------------------

    def emit(self, kind: str, ts: float, client: str = "",
             watch: str = "", **data) -> TraceEvent:
        """Record one event; returns it.

        ``kind="watch"`` resets the per-watch state for that key —
        watch keys recycle per client, so a fresh watch must never
        inherit a predecessor's timeline or clue summary.  ``data``
        values must be JSON primitives (events cross process
        boundaries inside ``ShardResult``).
        """
        event = TraceEvent(
            kind=kind,
            ts=float(ts),
            mono=self._clock() - self._origin,
            client=client,
            watch=watch,
            data=data,
            seq=self._seq,
        )
        self._seq += 1
        if not watch:
            self._done.append(event)
            self._bound_done()
            return event
        trace = self._watches.get(watch)
        if kind == "watch" or trace is None:
            trace = self._open_watch(watch)
        ring = trace.events
        if len(ring) == ring.maxlen:
            self.dropped_events += 1  # deque evicts the oldest
        ring.append(event)
        if kind == "clue":
            trace.clue_count += 1
            if len(trace.clues) < _MAX_CLUES:
                trace.clues.append(event)
        return event

    def _open_watch(self, key: str) -> _WatchTrace:
        if key not in self._watches and \
                len(self._watches) >= self.max_watches:
            # Evict the stalest timeline (insertion order) as if its
            # watch closed without alerting.
            evicted = next(iter(self._watches))
            self.dropped_watches += 1
            self.close_watch(evicted, alerted=False)
        trace = self._watches[key] = _WatchTrace(self.max_events_per_watch)
        return trace

    def close_watch(self, key: str, alerted: bool) -> None:
        """Retire a watch timeline: flush it (or drop it, in
        ``"alerts"`` mode when the watch never alerted)."""
        trace = self._watches.pop(key, None)
        if trace is None:
            return
        if self.sample == "alerts" and not alerted:
            return
        self._done.extend(trace.events)
        self._bound_done()

    def _bound_done(self) -> None:
        overflow = len(self._done) - self.max_events
        if overflow > 0:
            del self._done[:overflow]
            self.dropped_events += overflow

    # -- reading ------------------------------------------------------

    def watch_summary(self, key: str) -> _WatchTrace | None:
        """Live accumulation for one watch (the detector reads the clue
        summary out of it when assembling alert provenance)."""
        return self._watches.get(key)

    @property
    def event_count(self) -> int:
        """Events currently retained (closed + live rings)."""
        return len(self._done) + sum(
            len(trace.events) for trace in self._watches.values()
        )

    def events(self) -> list[TraceEvent]:
        """Every retained event, sorted by ``(ts, seq)``.

        In ``"alerts"`` mode still-open (never-closed) timelines are
        excluded — their watches have not alerted.
        """
        collected = list(self._done)
        if self.sample == "full":
            for trace in self._watches.values():
                collected.extend(trace.events)
        collected.sort(key=lambda e: (e.ts, e.seq))
        return collected

    def drain(self) -> list[TraceEvent]:
        """:meth:`events`, then reset all accumulation state."""
        collected = self.events()
        self._watches.clear()
        self._done.clear()
        return collected


class NullTracer:
    """Disabled tracer: every call is a true no-op (no clock read, no
    allocation); the shared :data:`NULL_TRACER` is the default."""

    enabled = False
    sample = "full"
    dropped_events = 0
    dropped_watches = 0

    def emit(self, kind: str, ts: float, client: str = "",
             watch: str = "", **data) -> None:
        return None

    def close_watch(self, key: str, alerted: bool) -> None:
        return None

    def watch_summary(self, key: str) -> None:
        return None

    @property
    def event_count(self) -> int:
        return 0

    def events(self) -> list[TraceEvent]:
        return []

    def drain(self) -> list[TraceEvent]:
        return []


NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = (
    Tracer(sample=os.environ.get("REPRO_TRACE_SAMPLE", "full").strip()
           or "full")
    if _env_enabled(os.environ.get("REPRO_TRACE"))
    else NULL_TRACER
)


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (null when tracing is off)."""
    return _active


def tracing_enabled() -> bool:
    """True when the active tracer records anything."""
    return _active.enabled


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the active one; returns the previous.

    Components capture the tracer at construction — swap it *before*
    building the pipeline you want traced.
    """
    global _active
    previous = _active
    _active = tracer
    return previous


def enable_tracing(sample: str = "full", **kwargs) -> Tracer:
    """Install (and return) a fresh recording tracer."""
    tracer = Tracer(sample=sample, **kwargs)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)


@contextmanager
def use_tracer(
    tracer: Tracer | NullTracer | None = None,
) -> Iterator[Tracer | NullTracer]:
    """Scoped tracer swap: activate ``tracer`` (a fresh one when
    ``None``), restore the previous on exit."""
    active = Tracer() if tracer is None else tracer
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


# -- JSON-lines I/O ---------------------------------------------------


def canonical_events(events: Iterable[TraceEvent]) -> list[dict]:
    """Deterministic dict stream (wall-clock fields stripped) — what
    the differential tests compare across worker counts."""
    return [event.canonical() for event in events]


def write_trace(events: Iterable[TraceEvent],
                out: str | IO[str]) -> int:
    """Write events as JSON lines (stable key order); returns the
    number of lines written.  ``out`` is a path (appended to) or a
    file-like object (written, not closed) — the same sink convention
    as :class:`repro.obs.reporter.PipelineStatsReporter`.
    """
    lines = [json.dumps(event.to_dict(), sort_keys=True)
             for event in events]
    if hasattr(out, "write"):
        for line in lines:
            out.write(line + "\n")
    else:
        with open(out, "a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
    return len(lines)


def parse_trace(lines: Iterable[str]) -> list[dict]:
    """Decode JSON-lines trace strings (skips blank lines)."""
    return [json.loads(line) for line in lines if line.strip()]


def read_trace(path: str) -> list[dict]:
    """Read every event dict from a trace JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle.readlines())
