"""Pipeline observability: metrics, timing spans, logging, stats reports.

The live pipeline is instrumented end to end — decode, reassembly, HTTP
pairing, session table, clues, WCG building, feature extraction, forest
inference, alert dispatch — against the process-wide registry from
:mod:`repro.obs.registry`.  By default that registry is a no-op
(:data:`NULL_REGISTRY`), so the uninstrumented hot path pays one empty
method call per event; set ``REPRO_METRICS=1`` (or call
:func:`enable_metrics` / :func:`use_registry` before constructing the
pipeline) to record.

See DESIGN.md §11 for the metric taxonomy and the README's
"Observability" section for the operator workflow.
"""

from repro.obs.logs import LOGGER_NAME, configure_logging, get_logger
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
    span,
    use_registry,
)
from repro.obs.reporter import (
    PipelineStatsReporter,
    parse_snapshots,
    read_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "span",
    "configure_logging",
    "get_logger",
    "LOGGER_NAME",
    "PipelineStatsReporter",
    "parse_snapshots",
    "read_snapshots",
]
