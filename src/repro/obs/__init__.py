"""Pipeline observability: metrics, timing spans, logging, stats reports.

The live pipeline is instrumented end to end — decode, reassembly, HTTP
pairing, session table, clues, WCG building, feature extraction, forest
inference, alert dispatch — against the process-wide registry from
:mod:`repro.obs.registry`.  By default that registry is a no-op
(:data:`NULL_REGISTRY`), so the uninstrumented hot path pays one empty
method call per event; set ``REPRO_METRICS=1`` (or call
:func:`enable_metrics` / :func:`use_registry` before constructing the
pipeline) to record.

Detection tracing (:mod:`repro.obs.trace`) follows the same pattern:
``REPRO_TRACE=1`` / :func:`enable_tracing` / :func:`use_tracer` switch
on per-watch event timelines and alert provenance; the default
:data:`NULL_TRACER` is a true no-op.

See DESIGN.md §11 for the metric taxonomy, DESIGN.md §16 for the trace
event taxonomy, and the README's "Observability" and "Tracing & alert
provenance" sections for the operator workflow.
"""

from repro.obs.logs import LOGGER_NAME, configure_logging, get_logger
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
    span,
    use_registry,
)
from repro.obs.reporter import (
    PipelineStatsReporter,
    parse_snapshots,
    read_snapshots,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    canonical_events,
    disable_tracing,
    enable_tracing,
    get_tracer,
    parse_trace,
    read_trace,
    set_tracer,
    tracing_enabled,
    use_tracer,
    write_trace,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "canonical_events",
    "write_trace",
    "read_trace",
    "parse_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "span",
    "configure_logging",
    "get_logger",
    "LOGGER_NAME",
    "PipelineStatsReporter",
    "parse_snapshots",
    "read_snapshots",
]
