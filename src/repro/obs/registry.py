"""Metrics primitives: counters, gauges, histograms, spans, registries.

The live pipeline (decode → reassembly → HTTP pairing → session table →
clues → WCG/features → forest inference → alerts) emits telemetry
through a process-wide *active registry*.  Two implementations share one
interface:

* :class:`MetricsRegistry` — the real thing: named :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments plus
  :meth:`~MetricsRegistry.span` timing contexts, snapshot-able as a
  plain dict for the JSON-lines reporter.
* :class:`NullRegistry` — the default.  Every accessor returns a shared
  no-op singleton, so an instrumentation site costs one attribute load
  and one empty method call; no names are interned, no dicts grow, no
  clock is read.  ``tests/detection/test_metrics_differential.py``
  proves the pipeline's *outputs* are byte-identical either way.

Sites that live on the hot path capture their instrument handles once
(at construction) from :func:`get_registry`; the handles then bind to
whichever registry was active when the component was built.  Enable
metrics *before* constructing the pipeline — via ``REPRO_METRICS=1`` in
the environment, :func:`enable_metrics`, or the :func:`use_registry`
context manager.

Histograms keep a bounded, *deterministically decimated* sample list:
when the buffer fills, every other sample is dropped and the keep
stride doubles.  Quantiles are exact below the buffer size and a
deterministic (order-stable, replayable) approximation beyond it —
there is no randomness anywhere, matching the repo-wide determinism
contract (DESIGN.md §6).
"""

from __future__ import annotations

import math
import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "decimate_samples",
    "interpolated_quantile",
    "Span",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "span",
]

#: Histogram sample-buffer size; beyond it, deterministic decimation.
_MAX_SAMPLES = 2048


def decimate_samples(samples: list[float],
                     cap: int = _MAX_SAMPLES) -> list[float]:
    """Bound a sample buffer with the histogram's decimation rule.

    Repeatedly keeps every other sample (in observation order) until
    the buffer fits under ``cap`` — the exact halving
    :meth:`Histogram.observe` applies, so merging per-shard buffers
    (:func:`repro.service.daemon.merge_snapshots`) stays deterministic
    and bounded.
    """
    out = list(samples)
    cap = max(2, cap)
    while len(out) >= cap:
        del out[1::2]
    return out


def interpolated_quantile(samples: list[float], q: float) -> float | None:
    """Linear-interpolated quantile of a sample buffer.

    The shared quantile rule of :meth:`Histogram.quantile` and the
    fleet snapshot merge; ``None`` on an empty buffer.
    """
    if not samples:
        return None
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    q = min(1.0, max(0.0, q))
    position = q * (len(data) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return data[low]
    fraction = position - low
    return data[low] * (1.0 - fraction) + data[high] * fraction


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A value that goes up and down (e.g. live watch count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Distribution of observed values with deterministic quantiles.

    Tracks exact ``count``/``sum``/``min``/``max`` for every
    observation; quantiles come from a bounded sample list.  While the
    list is under ``max_samples`` entries it holds *every* observation
    and quantiles are exact; once full, the list is halved (every other
    sample kept) and the keep stride doubles, so memory stays bounded
    and the retained subset depends only on the observation sequence —
    never on a clock or RNG.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "_phase", "_cap")

    def __init__(self, name: str, max_samples: int = _MAX_SAMPLES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0
        self._cap = max(2, max_samples)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._phase == 0:
            self._samples.append(value)
            if len(self._samples) >= self._cap:
                # Deterministic decimation: keep every other sample,
                # double the stride for future observations.
                del self._samples[1::2]
                self._stride *= 2
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile over the retained samples.

        Exact while fewer than ``max_samples`` values have been
        observed; a deterministic approximation afterwards.  Returns
        ``None`` on an empty histogram.
        """
        return interpolated_quantile(self._samples, q)

    def snapshot(self) -> dict:
        """JSON-compatible summary (count, sum, min/max, mean, p50/90/99).

        ``samples`` carries the retained (deterministically decimated)
        buffer so a fleet merge can compute *exact* quantiles instead
        of estimating from per-shard summaries; the stats reporter
        strips it from operator-facing JSONL lines.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "samples": list(self._samples),
        }


class Span:
    """Context manager timing one block into a histogram of seconds."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(time.perf_counter() - self._started)
        return False


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def snapshot(self) -> dict:
        return {}


class _NullSpan:
    """Shared do-nothing span: no clock read, no allocation per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """Disabled-metrics registry: every accessor returns a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {"enabled": False, "counters": {}, "gauges": {},
                "histograms": {}}


class MetricsRegistry:
    """Named-instrument registry; get-or-create semantics per name."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def span(self, name: str) -> Span:
        """Timing context recording seconds into ``span.<name>``."""
        return Span(self.histogram(f"span.{name}"))

    def snapshot(self) -> dict:
        """One JSON-compatible view of every instrument, sorted by name."""
        return {
            "enabled": True,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }


NULL_REGISTRY = NullRegistry()

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled(value: str | None) -> bool:
    """Does an ``REPRO_METRICS`` value ask for metrics?"""
    return (value or "").strip().lower() in _TRUTHY


_active: MetricsRegistry | NullRegistry = (
    MetricsRegistry() if _env_enabled(os.environ.get("REPRO_METRICS"))
    else NULL_REGISTRY
)


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide active registry (null when metrics are off)."""
    return _active


def metrics_enabled() -> bool:
    """True when the active registry records anything."""
    return _active.enabled


def set_registry(
    registry: MetricsRegistry | NullRegistry,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the active one; returns the previous.

    Components capture instrument handles at construction — swap the
    registry *before* building the pipeline you want observed.
    """
    global _active
    previous = _active
    _active = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install (and return) a fresh recording registry."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable_metrics() -> None:
    """Restore the no-op registry."""
    set_registry(NULL_REGISTRY)


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry | None = None,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Scoped registry swap: activate ``registry`` (a fresh one when
    ``None``), restore the previous on exit."""
    active = MetricsRegistry() if registry is None else registry
    previous = set_registry(active)
    try:
        yield active
    finally:
        set_registry(previous)


def span(name: str) -> Span | _NullSpan:
    """Timing context on the *active* registry (no-op when disabled)."""
    return _active.span(name)
