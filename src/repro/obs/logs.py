"""Structured logging setup for the pipeline.

One package-level logger (``repro``) with stage children
(``repro.cli``, ``repro.detection`` …).  :func:`configure_logging`
is idempotent: the first call attaches a stderr handler with a
timestamped format; later calls only adjust the level, so libraries
and tests can call it freely without stacking duplicate handlers.

Nothing configures logging at import time — an embedding application
keeps full control until it (or the CLI) opts in.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["configure_logging", "get_logger", "LOGGER_NAME"]

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def _coerce_level(level: int | str) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level: {level!r}")
    return resolved


class _LazyStderrHandler(logging.StreamHandler):
    """Stream handler that resolves ``sys.stderr`` at emit time.

    Binding the stream per record keeps log output visible to harnesses
    that swap ``sys.stderr`` after configuration (pytest's capsys does).
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> IO[str]:
        return sys.stderr

    @stream.setter
    def stream(self, value: IO[str]) -> None:
        pass


def configure_logging(
    level: int | str = "info",
    stream: IO[str] | None = None,
    force: bool = False,
) -> logging.Logger:
    """Attach (once) a formatted handler to the ``repro`` logger.

    Args:
        level: name (``"debug"``/``"info"``/…) or numeric level.
        stream: handler target; defaults to the *current* ``sys.stderr``
            on every emission.
        force: drop existing handlers and re-attach (tests use this to
            redirect the stream).

    Returns the configured package logger.
    """
    logger = logging.getLogger(LOGGER_NAME)
    numeric = _coerce_level(level)
    if force:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
    if not logger.handlers:
        handler: logging.Handler = (
            logging.StreamHandler(stream) if stream is not None
            else _LazyStderrHandler()
        )
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(numeric)
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """Child logger under the package hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")
