"""WCG construction from HTTP transaction streams (Section III-B).

Construction steps, mirroring the paper: extract unique hosts as nodes;
group transactions into host-pair conversations; derive request,
response, and redirection edges; annotate nodes and edges with
conversation attributes; prepend the *origin node* (the enticement
source, or ``"empty"`` when concealed).
"""

from __future__ import annotations

from repro.core.model import HttpTransaction, Trace
from repro.core.redirects import Redirect, infer_redirects
from repro.core.stages import Stage, assign_stages
from repro.core.wcg import EdgeData, EdgeKind, NodeKind, WebConversationGraph
from repro.core.payloads import is_exploit_type
from repro.exceptions import GraphConstructionError

__all__ = ["WCGBuilder", "build_wcg"]


def _origin_of(transactions: list[HttpTransaction]) -> str:
    """The enticement origin: referrer host of the earliest transaction."""
    for txn in sorted(transactions, key=lambda t: t.timestamp):
        ref = txn.request.referrer_host
        if ref:
            return ref
        return ""  # first transaction has no referrer -> origin unknown
    return ""


class WCGBuilder:
    """Incremental WCG builder.

    Feed transactions with :meth:`add`; call :meth:`build` to (re)label
    stages, infer redirect edges, and return the annotated graph.  The
    on-the-wire detector reuses one builder per watched session so that
    each new transaction triggers an incremental graph update
    (Section V-B, "WCG classification and update").
    """

    def __init__(self, victim: str | None = None, origin: str | None = None):
        self._victim = victim
        self._origin = origin
        self._transactions: list[HttpTransaction] = []
        self._dirty = True
        self._cached: WebConversationGraph | None = None

    def add(self, txn: HttpTransaction) -> None:
        """Append one transaction to the conversation."""
        self._transactions.append(txn)
        self._dirty = True

    def extend(self, transactions: list[HttpTransaction]) -> None:
        """Append many transactions at once."""
        self._transactions.extend(transactions)
        self._dirty = True

    @property
    def transaction_count(self) -> int:
        """Number of transactions fed so far."""
        return len(self._transactions)

    def build(self) -> WebConversationGraph:
        """Construct (or return the cached) annotated WCG."""
        if not self._dirty and self._cached is not None:
            return self._cached
        if not self._transactions:
            raise GraphConstructionError("no transactions to build a WCG from")
        transactions = sorted(self._transactions, key=lambda t: t.timestamp)
        victim = self._victim or transactions[0].client
        origin = self._origin if self._origin is not None else _origin_of(transactions)
        wcg = WebConversationGraph(victim=victim, origin=origin)

        stages = assign_stages(transactions)
        redirects = infer_redirects(transactions)
        self._add_transaction_edges(wcg, transactions, stages)
        self._add_redirect_edges(wcg, transactions, stages, redirects)
        self._link_origin(wcg, transactions)
        self._cached = wcg
        self._dirty = False
        return wcg

    @staticmethod
    def _add_transaction_edges(
        wcg: WebConversationGraph,
        transactions: list[HttpTransaction],
        stages: list[Stage],
    ) -> None:
        for txn, stage in zip(transactions, stages):
            request = txn.request
            wcg.add_node(txn.client, kind=NodeKind.VICTIM if txn.client ==
                         wcg.victim else NodeKind.REMOTE)
            wcg.add_node(txn.server)
            wcg.record_uri(txn.server, request.uri)
            if request.dnt:
                wcg.dnt = True
            flash = request.headers.get("X-Flash-Version")
            if flash:
                wcg.x_flash_version = flash
            wcg.add_edge(
                txn.client,
                txn.server,
                EdgeData(
                    kind=EdgeKind.REQUEST,
                    timestamp=request.timestamp,
                    stage=stage,
                    method=request.method.value,
                    uri_length=request.uri_length,
                    referrer=request.referrer,
                    user_agent=request.user_agent,
                ),
            )
            if txn.response is None:
                continue
            ptype = txn.payload_type
            wcg.record_payload(txn.server, ptype)
            wcg.add_edge(
                txn.server,
                txn.client,
                EdgeData(
                    kind=EdgeKind.RESPONSE,
                    timestamp=txn.response.timestamp,
                    stage=stage,
                    status=txn.status,
                    payload_type=ptype,
                    payload_size=txn.payload_size,
                ),
            )
            if (
                200 <= txn.status < 300
                and is_exploit_type(ptype)
                and txn.client == wcg.victim
            ):
                wcg.mark_malicious(txn.server)

    @staticmethod
    def _add_redirect_edges(
        wcg: WebConversationGraph,
        transactions: list[HttpTransaction],
        stages: list[Stage],
        redirects: list[Redirect],
    ) -> None:
        # Stage of a redirect edge = stage of the nearest transaction at
        # or before the redirect's timestamp.
        stamped = sorted(
            zip((t.timestamp for t in transactions), stages), key=lambda p: p[0]
        )

        def _stage_at(ts: float) -> Stage:
            chosen = Stage.PRE_DOWNLOAD
            for stamp, stage in stamped:
                if stamp <= ts:
                    chosen = stage
                else:
                    break
            return chosen

        for redirect in redirects:
            wcg.add_node(redirect.source, kind=NodeKind.REDIRECTOR)
            wcg.add_node(redirect.target)
            wcg.add_edge(
                redirect.source,
                redirect.target,
                EdgeData(
                    kind=EdgeKind.REDIRECT,
                    timestamp=redirect.timestamp,
                    stage=_stage_at(redirect.timestamp),
                    redirect_kind=redirect.kind.value,
                    cross_domain=redirect.cross_domain,
                ),
            )

    @staticmethod
    def _link_origin(
        wcg: WebConversationGraph, transactions: list[HttpTransaction]
    ) -> None:
        """Connect the origin node to the first host the victim visited."""
        first = min(transactions, key=lambda t: t.timestamp)
        target = first.server
        if wcg.origin == target:
            return
        wcg.add_edge(
            wcg.origin,
            target,
            EdgeData(
                kind=EdgeKind.REDIRECT,
                timestamp=first.timestamp,
                stage=Stage.PRE_DOWNLOAD,
                redirect_kind="origin",
                cross_domain=True,
            ),
        )


def build_wcg(
    source: Trace | list[HttpTransaction],
    victim: str | None = None,
    origin: str | None = None,
) -> WebConversationGraph:
    """One-shot WCG construction from a trace or transaction list."""
    builder = WCGBuilder(victim=victim, origin=origin)
    if isinstance(source, Trace):
        builder.extend(source.transactions)
        if origin is None and source.origin:
            builder._origin = source.origin
    else:
        builder.extend(source)
    return builder.build()
