"""WCG construction from HTTP transaction streams (Section III-B).

Construction steps, mirroring the paper: extract unique hosts as nodes;
group transactions into host-pair conversations; derive request,
response, and redirection edges; annotate nodes and edges with
conversation attributes; prepend the *origin node* (the enticement
source, or ``"empty"`` when concealed).

The builder is *truly incremental*: :meth:`WCGBuilder.add` is a
constant-time append, and :meth:`WCGBuilder.build` folds the pending
transactions' edges into the existing graph, resumes stage assignment
through :class:`~repro.core.stages.StageAssigner` (re-labelling only
the edges a moved boundary invalidated), and feeds each new transaction
to the running :class:`~repro.core.redirects.RedirectInferencer`.
Per-transaction cost is therefore O(log n + affected edges) instead of
a full rebuild — and nothing at all for the (common) watched sessions
whose graph is never requested.  The one exception is an out-of-order arrival (a transaction
stamped earlier than one already ingested): that falls back to a full
replay in stable timestamp order, which keeps the result identical to
the batch path by construction.

:func:`build_wcg` is a feed-once wrapper over the same machinery — the
batch and the on-the-wire graphs cannot drift because they are produced
by the same per-transaction mutation sequence (see DESIGN.md §9 and the
differential tests in ``tests/detection/test_wcg_incremental_equivalence.py``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.model import HttpTransaction, Trace
from repro.core.redirects import RedirectInferencer
from repro.core.stages import Stage, StageAssigner
from repro.core.wcg import (
    KIND_REDIRECT,
    KIND_REQUEST,
    KIND_RESPONSE,
    NodeKind,
    WebConversationGraph,
)
from repro.core.payloads import is_exploit_type
from repro.exceptions import GraphConstructionError
from repro.obs import get_registry

__all__ = ["WCGBuilder", "build_wcg"]


def _origin_of(transactions: list[HttpTransaction]) -> str:
    """The enticement origin: referrer host of the earliest transaction."""
    if not transactions:
        return ""
    first = min(transactions, key=lambda t: t.timestamp)
    return first.request.referrer_host or ""


class WCGBuilder:
    """Incremental WCG builder.

    Feed transactions with :meth:`add` (a constant-time append);
    :meth:`build` drains the pending transactions into the live graph —
    new nodes/edges are appended, stages of already-ingested edges are
    re-labelled only when an arrival moved a stage boundary, and
    redirect edges are inferred from each new transaction alone.  The
    returned graph is the *same object* across calls, grown in place,
    which is what lets downstream caches key on the graph's ``version``
    counters.  The on-the-wire detector
    reuses one builder per watched session (Section V-B, "WCG
    classification and update").
    """

    def __init__(self, victim: str | None = None, origin: str | None = None):
        self._victim = victim
        self._origin = origin
        self._transactions: list[HttpTransaction] = []
        # Added but not yet ingested; drained on the next build().
        self._pending: list[HttpTransaction] = []
        self._wcg: WebConversationGraph | None = None
        self._assigner: StageAssigner | None = None
        self._inferencer: RedirectInferencer | None = None
        # Request timestamps in ingest order — non-decreasing, so the
        # list is sorted and position == assigner seq.
        self._stamps: list[float] = []
        # Per-seq (request edge index, response edge index | None) for
        # columnar stage re-labelling through ``set_edge_stage``.
        self._txn_edges: list[tuple[int, int | None]] = []
        # Redirect edge indices in add order + a (timestamp, index) key
        # list kept sorted for windowed re-staging.
        self._redirect_edges: list[int] = []
        self._redirect_keys: list[tuple[float, int]] = []
        self._max_ts = float("-inf")
        metrics = get_registry()
        self._c_ingested = metrics.counter("wcg.transactions_ingested")
        self._c_edges = metrics.counter("wcg.edges_appended")
        self._c_replays = metrics.counter("wcg.out_of_order_replays")

    def add(self, txn: HttpTransaction) -> None:
        """Record one transaction; graph work is deferred to :meth:`build`.

        Most watched sessions are never scored (no clue ever fires), so
        the expensive part — edge appends, stage bookkeeping, redirect
        inference — runs lazily when the graph is actually requested.
        ``add`` itself is a constant-time append.
        """
        self._transactions.append(txn)
        self._pending.append(txn)

    def extend(self, transactions: list[HttpTransaction]) -> None:
        """Append many transactions at once."""
        for txn in transactions:
            self.add(txn)

    @property
    def transaction_count(self) -> int:
        """Number of transactions fed so far."""
        return len(self._transactions)

    def build(self) -> WebConversationGraph:
        """Return the live annotated WCG, ingesting any pending adds."""
        self._drain()
        if self._wcg is None:
            raise GraphConstructionError("no transactions to build a WCG from")
        return self._wcg

    # -- incremental machinery ---------------------------------------------

    def _drain(self) -> None:
        """Ingest the pending transactions into the live graph."""
        pending, self._pending = self._pending, []
        for txn in pending:
            if self._wcg is not None and txn.timestamp < self._max_ts:
                # Late (out-of-order) arrival: the canonical feed order
                # is the stable timestamp sort, so replay from scratch
                # (``_transactions`` already holds every pending txn).
                # Live capture emits at response completion, which is
                # almost always in request order, so this path is rare.
                self._replay()
                return
            self._ingest(txn)

    def _replay(self) -> None:
        """Re-ingest everything in stable timestamp order."""
        self._c_replays.inc()
        ordered = sorted(self._transactions, key=lambda t: t.timestamp)
        self._wcg = None
        self._assigner = None
        self._inferencer = None
        self._stamps = []
        self._txn_edges = []
        self._redirect_edges = []
        self._redirect_keys = []
        self._max_ts = float("-inf")
        for txn in ordered:
            self._ingest(txn)

    def _ingest(self, txn: HttpTransaction) -> None:
        if self._wcg is None:
            victim = self._victim or txn.client
            origin = (
                self._origin
                if self._origin is not None
                else txn.request.referrer_host or ""
            )
            self._wcg = WebConversationGraph(victim=victim, origin=origin)
            self._assigner = StageAssigner()
            self._inferencer = RedirectInferencer()
        wcg = self._wcg
        seq = len(self._txn_edges)
        self._c_ingested.inc()

        changes = self._assigner.add(txn)
        stage = self._assigner.current_stage(seq)

        request = txn.request
        wcg.add_node(txn.client, kind=NodeKind.VICTIM if txn.client ==
                     wcg.victim else NodeKind.REMOTE)
        wcg.add_node(txn.server)
        wcg.record_uri(txn.server, request.uri)
        if request.dnt:
            wcg.dnt = True
        flash = request.headers.get("X-Flash-Version")
        if flash:
            wcg.x_flash_version = flash
        request_edge = wcg.append_edge(
            txn.client,
            txn.server,
            kind=KIND_REQUEST,
            timestamp=request.timestamp,
            stage=int(stage),
            method=request.method.value,
            uri_length=request.uri_length,
            referrer=request.referrer,
            user_agent=request.user_agent,
        )
        self._c_edges.inc()
        response_edge: int | None = None
        if txn.response is not None:
            ptype = txn.payload_type
            wcg.record_payload(txn.server, ptype)
            response_edge = wcg.append_edge(
                txn.server,
                txn.client,
                kind=KIND_RESPONSE,
                timestamp=txn.response.timestamp,
                stage=int(stage),
                status=txn.status,
                payload_type=ptype,
                payload_size=txn.payload_size,
            )
            self._c_edges.inc()
            if (
                200 <= txn.status < 300
                and is_exploit_type(ptype)
                and txn.client == wcg.victim
            ):
                wcg.mark_malicious(txn.server)
        self._txn_edges.append((request_edge, response_edge))
        self._stamps.append(txn.timestamp)
        self._max_ts = txn.timestamp

        # Apply the bounded re-labelling the new arrival caused.
        relabel_floor = txn.timestamp
        for other, new_stage in changes:
            if other == seq:
                continue
            other_request, other_response = self._txn_edges[other]
            wcg.set_edge_stage(other_request, new_stage)
            if other_response is not None:
                wcg.set_edge_stage(other_response, new_stage)
            if self._stamps[other] < relabel_floor:
                relabel_floor = self._stamps[other]

        if seq == 0 and self._link_origin(wcg, txn):
            self._c_edges.inc()

        # Redirect edges observed by this transaction, staged at the
        # nearest ingested transaction at-or-before their timestamp.
        for redirect in self._inferencer.observe(txn):
            wcg.add_node(redirect.source, kind=NodeKind.REDIRECTOR)
            wcg.add_node(redirect.target)
            redirect_edge = wcg.append_edge(
                redirect.source,
                redirect.target,
                kind=KIND_REDIRECT,
                timestamp=redirect.timestamp,
                stage=int(self._stage_at(redirect.timestamp)),
                redirect_kind=redirect.kind.value,
                cross_domain=redirect.cross_domain,
            )
            self._c_edges.inc()
            index = len(self._redirect_edges)
            self._redirect_edges.append(redirect_edge)
            # In-order ingest ⇒ the new key sorts at (or near) the end.
            key = (redirect.timestamp, index)
            at = bisect_right(self._redirect_keys, key)
            self._redirect_keys.insert(at, key)

        # Re-stage redirect edges whose governing transaction may have
        # changed: any at-or-after the earliest re-labelled (or new)
        # transaction timestamp.  Earlier redirects are governed by
        # transactions whose stages did not move.
        start = bisect_left(self._redirect_keys, (relabel_floor, -1))
        for stamp, index in self._redirect_keys[start:]:
            wcg.set_edge_stage(self._redirect_edges[index],
                               self._stage_at(stamp))

    def _stage_at(self, ts: float) -> Stage:
        """Stage of the nearest transaction at or before ``ts``.

        ``_stamps`` is non-decreasing and position == assigner seq, so a
        bisect replaces the former linear scan; ties resolve to the
        highest seq, matching the stable-sort semantics of the batch
        algorithm.
        """
        index = bisect_right(self._stamps, ts) - 1
        if index < 0:
            return Stage.PRE_DOWNLOAD
        return self._assigner.current_stage(index)

    @staticmethod
    def _link_origin(wcg: WebConversationGraph, first: HttpTransaction) -> bool:
        """Connect the origin node to the first host the victim visited.

        Returns whether an edge was actually appended (the origin may
        *be* the first host)."""
        target = first.server
        if wcg.origin == target:
            return False
        wcg.append_edge(
            wcg.origin,
            target,
            kind=KIND_REDIRECT,
            timestamp=first.timestamp,
            stage=int(Stage.PRE_DOWNLOAD),
            redirect_kind="origin",
            cross_domain=True,
        )
        return True


def build_wcg(
    source: Trace | list[HttpTransaction],
    victim: str | None = None,
    origin: str | None = None,
) -> WebConversationGraph:
    """One-shot WCG construction from a trace or transaction list.

    Feed-once wrapper over the incremental :class:`WCGBuilder`:
    transactions are fed in stable timestamp order, so the batch result
    is — by construction — identical to the live graph a per-transaction
    feed converges to.
    """
    if isinstance(source, Trace):
        transactions = source.transactions
        if origin is None and source.origin:
            origin = source.origin
    else:
        transactions = source
    builder = WCGBuilder(victim=victim, origin=origin)
    for txn in sorted(transactions, key=lambda t: t.timestamp):
        builder.add(txn)
    return builder.build()
