"""Session grouping of HTTP transactions (Section V-B).

On the wire, transactions from many browsing sessions interleave.  The
paper groups transactions into candidate WCGs using the *session ID*
carried in URIs/cookies ([18], W3C session identification), falling back
to a heuristic that clusters on referrer values and timestamps when a
client juggles several session IDs at once.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.core.model import HttpTransaction

__all__ = ["extract_session_id", "SessionCluster", "group_sessions"]

_SESSION_PARAM_NAMES = (
    "sessionid", "session_id", "session", "sid", "phpsessid", "jsessionid",
    "aspsessionid", "sess", "s_id", "cfid",
)
_COOKIE_SESSION = re.compile(
    r"(?:PHPSESSID|JSESSIONID|ASP\.NET_SessionId|session[-_]?id|sid)"
    r"\s*=\s*([A-Za-z0-9_\-]+)",
    re.IGNORECASE,
)
_PATH_SESSION = re.compile(r";jsessionid=([A-Za-z0-9_\-]+)", re.IGNORECASE)


def extract_session_id(txn: HttpTransaction) -> str:
    """Best-effort session identifier for a transaction.

    Checks, in order: ``;jsessionid=`` path parameters, well-known query
    parameters, the ``Cookie`` request header, and ``Set-Cookie`` on the
    response.  Returns ``""`` when no session marker is present.
    """
    uri = txn.request.uri
    path_match = _PATH_SESSION.search(uri)
    if path_match:
        return path_match.group(1)
    query = urlsplit(uri).query
    if query:
        for name, value in parse_qsl(query, keep_blank_values=False):
            if name.lower() in _SESSION_PARAM_NAMES and value:
                return value
    cookie = txn.request.headers.get("Cookie")
    if cookie:
        cookie_match = _COOKIE_SESSION.search(cookie)
        if cookie_match:
            return cookie_match.group(1)
    if txn.response is not None:
        set_cookie = txn.response.headers.get("Set-Cookie")
        if set_cookie:
            cookie_match = _COOKIE_SESSION.search(set_cookie)
            if cookie_match:
                return cookie_match.group(1)
    return ""


@dataclass
class SessionCluster:
    """One candidate conversation: a client's related transactions."""

    client: str
    transactions: list[HttpTransaction] = field(default_factory=list)
    session_ids: set[str] = field(default_factory=set)
    hosts: set[str] = field(default_factory=set)
    last_ts: float = 0.0

    def add(self, txn: HttpTransaction, session_id: str) -> None:
        """Append a transaction and update cluster membership indexes."""
        self.transactions.append(txn)
        if session_id:
            self.session_ids.add(session_id)
        self.hosts.add(txn.server)
        ref = txn.request.referrer_host
        if ref:
            self.hosts.add(ref)
        self.last_ts = max(self.last_ts, txn.timestamp)


def group_sessions(
    transactions: list[HttpTransaction],
    idle_gap: float = 60.0,
) -> list[SessionCluster]:
    """Cluster a transaction stream into per-session groups.

    Clustering is per client.  A transaction joins an existing cluster of
    the same client when any of these hold (the paper's heuristic order):

    1. it carries a session ID already seen in the cluster;
    2. its referrer host (or target host) is already a member host of the
       cluster and it arrives within ``idle_gap`` seconds of the
       cluster's last activity;
    3. otherwise it opens a new cluster.

    Returns clusters ordered by first-transaction timestamp.
    """
    ordered = sorted(transactions, key=lambda t: t.timestamp)
    clusters: list[SessionCluster] = []
    by_client: dict[str, list[SessionCluster]] = {}
    for txn in ordered:
        session_id = extract_session_id(txn)
        candidates = by_client.setdefault(txn.client, [])
        chosen: SessionCluster | None = None
        if session_id:
            for cluster in candidates:
                if session_id in cluster.session_ids:
                    chosen = cluster
                    break
        if chosen is None:
            ref_host = txn.request.referrer_host
            for cluster in reversed(candidates):
                if txn.timestamp - cluster.last_ts > idle_gap:
                    continue
                if ref_host and ref_host in cluster.hosts:
                    chosen = cluster
                    break
                if txn.server in cluster.hosts:
                    chosen = cluster
                    break
        if chosen is None:
            chosen = SessionCluster(client=txn.client)
            candidates.append(chosen)
            clusters.append(chosen)
        chosen.add(txn, session_id)
    clusters.sort(key=lambda c: c.transactions[0].timestamp)
    return clusters
