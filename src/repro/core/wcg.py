"""The Web Conversation Graph (WCG) abstraction (Section III-A).

A WCG is a directed graph capturing the interaction between a victim host
and one or more remote hosts.  Formally (paper notation) a WCG
``G_i = (Phi_i, Psi_i, Sigma_i, alpha, beta)`` where ``Phi`` are request
edges, ``Psi`` response edges, ``Sigma`` redirection edges, ``alpha`` node
attributes and ``beta`` edge attributes.  We realize it on a
``networkx.MultiDiGraph`` so that parallel edges of different kinds
between the same host pair coexist, and expose the annotated views that
feature extraction (``repro.features``) consumes.

To make the on-the-wire path cheap, the graph maintains running
aggregates as it mutates:

* :class:`GraphCounters` — integer tallies (edge kinds, methods, status
  classes, URI totals, degree maximum, distinct host pairs) that back
  the cheap feature tier without any edge iteration.
* ``version`` — bumped on every feature-bearing mutation; callers cache
  derived values (the 37-vector, a classifier score) keyed on it.
* ``structure_version`` — bumped only when the *simple-graph* structure
  changes (a new node, or a first edge between a host pair).  Expensive
  topology features (diameter, centralities, connectivity, clustering)
  depend only on that structure, so they are recomputed only when this
  counter moves.
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass, field, replace
from typing import Iterator

import networkx as nx

from repro.core.payloads import PayloadSummary, PayloadType
from repro.core.stages import Stage

__all__ = ["NodeKind", "EdgeKind", "EdgeData", "GraphCounters",
           "WebConversationGraph"]

#: Node name used for the synthetic origin node when the enticement
#: source is unknown (referrer concealed), per Section III-B.
EMPTY_ORIGIN = "empty"


class NodeKind(enum.Enum):
    """Designation of a WCG node (Section III-A)."""

    ORIGIN = "origin"
    VICTIM = "victim"
    REMOTE = "remote"
    MALICIOUS = "malicious"
    REDIRECTOR = "redirector"


class EdgeKind(enum.Enum):
    """Relation an edge represents."""

    REQUEST = "req"
    RESPONSE = "res"
    REDIRECT = "redir"


@dataclass
class EdgeData:
    """Edge attributes ``beta`` (Section III-C, edge-level).

    ``method``/``uri_length`` are set on request edges;
    ``status``/``payload_type``/``payload_size`` on response edges;
    ``redirect_kind``/``cross_domain`` on redirect edges.
    """

    kind: EdgeKind
    timestamp: float
    stage: Stage = Stage.DOWNLOAD
    method: str = ""
    uri_length: int = 0
    status: int = 0
    payload_type: PayloadType | None = None
    payload_size: int = 0
    redirect_kind: str = ""
    cross_domain: bool = False
    referrer: str = ""
    user_agent: str = ""


@dataclass
class _NodeData:
    """Node attributes ``alpha`` (Section III-C, node-level)."""

    kind: NodeKind = NodeKind.REMOTE
    ip: str = ""
    uris: set[str] = field(default_factory=set)
    payloads: PayloadSummary = field(default_factory=PayloadSummary)


@dataclass
class GraphCounters:
    """Running integer aggregates maintained by WCG mutations.

    Every value here is an exact tally — the cheap feature tier reads
    them directly instead of re-walking the edge list, and because they
    are integers the derived feature values are bit-identical to the
    edge-walk formulation.
    """

    request_edges: int = 0
    response_edges: int = 0
    redirect_edges: int = 0
    gets: int = 0
    posts: int = 0
    other_methods: int = 0
    with_referrer: int = 0
    without_referrer: int = 0
    status_classes: dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0, 4: 0, 5: 0}
    )
    #: Hosts with at least one recorded URI / distinct URIs / their bytes.
    uri_hosts: int = 0
    total_uris: int = 0
    total_uri_length: int = 0
    #: Max total degree over the multigraph (degrees only ever grow).
    max_degree: int = 0
    #: Distinct ``(source, target)`` pairs == simple-digraph edge count.
    distinct_pairs: int = 0

    def copy(self) -> "GraphCounters":
        clone = replace(self)
        clone.status_classes = dict(self.status_classes)
        return clone


class WebConversationGraph:
    """An annotated WCG for one client conversation.

    Construction normally goes through
    :class:`repro.core.builder.WCGBuilder`; the mutation API here
    (``add_node`` / ``add_edge``) is what the builder and the incremental
    on-the-wire updater drive.
    """

    def __init__(self, victim: str, origin: str = ""):
        self._graph = nx.MultiDiGraph()
        self.victim = victim
        self.origin = origin or EMPTY_ORIGIN
        self._dnt = False
        self._x_flash_version: str = ""
        self._version = 0
        self._structure_version = 0
        self.counters = GraphCounters()
        self._degrees: dict[str, int] = {}
        self._pair_multiplicity: dict[tuple[str, str], int] = {}
        self._timestamps: list[float] = []
        self._request_stamps: list[float] = []
        self.add_node(self.origin, kind=NodeKind.ORIGIN)
        self.add_node(victim, kind=NodeKind.VICTIM)

    # --- change tracking -------------------------------------------------

    @property
    def version(self) -> int:
        """Bumped on every feature-bearing mutation (cache key)."""
        return self._version

    @property
    def structure_version(self) -> int:
        """Bumped only when the simple-graph structure changes."""
        return self._structure_version

    @property
    def dnt(self) -> bool:
        """True when any request in the conversation carried DNT."""
        return self._dnt

    @dnt.setter
    def dnt(self, value: bool) -> None:
        if value != self._dnt:
            self._dnt = value
            self._version += 1

    @property
    def x_flash_version(self) -> str:
        """The last X-Flash-Version header observed (feature f2)."""
        return self._x_flash_version

    @x_flash_version.setter
    def x_flash_version(self, value: str) -> None:
        if value != self._x_flash_version:
            self._x_flash_version = value
            self._version += 1

    # --- structure -------------------------------------------------------

    @property
    def graph(self) -> nx.MultiDiGraph:
        """The underlying annotated multigraph (read-mostly)."""
        return self._graph

    def add_node(self, host: str, kind: NodeKind = NodeKind.REMOTE,
                 ip: str = "") -> None:
        """Add (or update) a host node."""
        if host in self._graph:
            data: _NodeData = self._graph.nodes[host]["data"]
            # VICTIM/ORIGIN designations are sticky; MALICIOUS upgrades REMOTE.
            if data.kind is NodeKind.REMOTE and kind in (
                NodeKind.MALICIOUS,
                NodeKind.REDIRECTOR,
            ):
                data.kind = kind
            if ip and not data.ip:
                data.ip = ip
            return
        self._graph.add_node(host, data=_NodeData(kind=kind, ip=ip))
        self._degrees[host] = 0
        self._version += 1
        self._structure_version += 1

    def mark_malicious(self, host: str) -> None:
        """Designate a node malicious (it served an exploit payload)."""
        if host not in self._graph:
            self.add_node(host, kind=NodeKind.MALICIOUS)
            return
        data: _NodeData = self._graph.nodes[host]["data"]
        if data.kind in (NodeKind.REMOTE, NodeKind.REDIRECTOR):
            data.kind = NodeKind.MALICIOUS

    def add_edge(self, source: str, target: str, data: EdgeData) -> None:
        """Add a typed, annotated edge, creating endpoints as needed."""
        self.add_node(source)
        self.add_node(target)
        self._graph.add_edge(source, target, data=data)
        self._version += 1

        degree = self._degrees[source] + 1
        self._degrees[source] = degree
        if degree > self.counters.max_degree:
            self.counters.max_degree = degree
        degree = self._degrees[target] + 1
        self._degrees[target] = degree
        if degree > self.counters.max_degree:
            self.counters.max_degree = degree

        pair = (source, target)
        multiplicity = self._pair_multiplicity.get(pair, 0)
        self._pair_multiplicity[pair] = multiplicity + 1
        if multiplicity == 0:
            self.counters.distinct_pairs += 1
            self._structure_version += 1

        insort(self._timestamps, data.timestamp)
        counters = self.counters
        if data.kind is EdgeKind.REQUEST:
            counters.request_edges += 1
            if data.method == "GET":
                counters.gets += 1
            elif data.method == "POST":
                counters.posts += 1
            else:
                counters.other_methods += 1
            if data.referrer:
                counters.with_referrer += 1
            else:
                counters.without_referrer += 1
            insort(self._request_stamps, data.timestamp)
        elif data.kind is EdgeKind.RESPONSE:
            counters.response_edges += 1
            klass = data.status // 100
            if klass in counters.status_classes:
                counters.status_classes[klass] += 1
        else:
            counters.redirect_edges += 1

    def node_data(self, host: str) -> _NodeData:
        """The ``alpha`` record for ``host``."""
        return self._graph.nodes[host]["data"]

    def record_uri(self, host: str, uri: str) -> None:
        """Track a URI observed for ``host`` (URIs-per-host annotation)."""
        self.add_node(host)
        uris = self.node_data(host).uris
        if uri in uris:
            return
        if not uris:
            self.counters.uri_hosts += 1
        uris.add(uri)
        self.counters.total_uris += 1
        self.counters.total_uri_length += len(uri)
        self._version += 1

    def record_payload(self, host: str, ptype: PayloadType) -> None:
        """Track a payload exchanged with ``host``."""
        self.add_node(host)
        self.node_data(host).payloads.add(ptype)

    # --- views -----------------------------------------------------------

    def edges(self, kind: EdgeKind | None = None) -> Iterator[tuple[str, str, EdgeData]]:
        """Iterate ``(source, target, EdgeData)``, optionally filtered."""
        for source, target, attrs in self._graph.edges(data=True):
            data: EdgeData = attrs["data"]
            if kind is None or data.kind is kind:
                yield source, target, data

    def request_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Phi`` — request edges."""
        return list(self.edges(EdgeKind.REQUEST))

    def response_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Psi`` — response edges."""
        return list(self.edges(EdgeKind.RESPONSE))

    def redirect_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Sigma`` — redirection edges."""
        return list(self.edges(EdgeKind.REDIRECT))

    def hosts(self) -> list[str]:
        """All node names, origin node included."""
        return list(self._graph.nodes)

    def remote_hosts(self) -> list[str]:
        """All nodes other than the victim and the origin."""
        return [
            host
            for host in self._graph.nodes
            if host not in (self.victim, self.origin)
        ]

    @property
    def order(self) -> int:
        """Number of nodes (feature f7)."""
        return self._graph.number_of_nodes()

    @property
    def size(self) -> int:
        """Number of edges (feature f8)."""
        return self._graph.number_of_edges()

    @property
    def has_known_origin(self) -> bool:
        """True when the enticement origin was recoverable (feature f1)."""
        return self.origin != EMPTY_ORIGIN

    def timestamps(self) -> list[float]:
        """All edge timestamps, ascending (maintained sorted, not re-sorted)."""
        return list(self._timestamps)

    def request_timestamps(self) -> list[float]:
        """Request-edge timestamps, ascending.  Treat as read-only."""
        return self._request_stamps

    @property
    def duration(self) -> float:
        """Conversation duration in seconds (graph-level annotation)."""
        stamps = self._timestamps
        if len(stamps) < 2:
            return 0.0
        return stamps[-1] - stamps[0]

    def stage_edges(self, stage: Stage) -> list[tuple[str, str, EdgeData]]:
        """Edges annotated with the given conversation stage."""
        return [
            (source, target, data)
            for source, target, data in self.edges()
            if data.stage is stage
        ]

    def has_post_download_dynamics(self) -> bool:
        """True when at least one post-download edge exists."""
        return any(
            data.stage is Stage.POST_DOWNLOAD for _, _, data in self.edges()
        )

    def simple_graph(self, include_origin: bool = True) -> nx.DiGraph:
        """Collapse parallel edges into a simple digraph for analytics.

        Edge multiplicity is preserved as a ``weight`` attribute; graph
        analytics that are multiplicity-sensitive (degree, volume) read
        the multigraph instead.

        Nodes and adjacencies are inserted in sorted order, so the
        projection — and every float computed over it — is a canonical
        function of the graph's *content*, independent of the order in
        which the builder happened to insert nodes and edges.  The
        incremental and batch construction paths interleave insertions
        differently; this is what keeps their feature vectors
        bit-identical (see DESIGN.md §9).
        """
        simple = nx.DiGraph()
        for host in sorted(self._graph.nodes):
            if not include_origin and host == self.origin:
                continue
            simple.add_node(host)
        for source, target in sorted(self._pair_multiplicity):
            if not include_origin and self.origin in (source, target):
                continue
            simple.add_edge(
                source, target, weight=self._pair_multiplicity[(source, target)]
            )
        return simple

    def copy(self) -> "WebConversationGraph":
        """Deep-enough copy for incremental what-if evaluation.

        Edge records are duplicated — the live builder re-labels stages
        in place, and that must not leak into clones.
        """
        clone = WebConversationGraph.__new__(WebConversationGraph)
        clone._graph = nx.MultiDiGraph()
        clone.victim = self.victim
        clone.origin = self.origin
        clone._dnt = self._dnt
        clone._x_flash_version = self._x_flash_version
        clone._version = self._version
        clone._structure_version = self._structure_version
        clone.counters = self.counters.copy()
        clone._degrees = dict(self._degrees)
        clone._pair_multiplicity = dict(self._pair_multiplicity)
        clone._timestamps = list(self._timestamps)
        clone._request_stamps = list(self._request_stamps)
        for host, attrs in self._graph.nodes(data=True):
            data: _NodeData = attrs["data"]
            copied = _NodeData(kind=data.kind, ip=data.ip)
            copied.uris = set(data.uris)
            copied.payloads.counts = dict(data.payloads.counts)
            clone._graph.add_node(host, data=copied)
        for source, target, attrs in self._graph.edges(data=True):
            clone._graph.add_edge(source, target, data=replace(attrs["data"]))
        return clone

    def __repr__(self) -> str:
        return (
            f"WebConversationGraph(victim={self.victim!r}, "
            f"origin={self.origin!r}, order={self.order}, size={self.size})"
        )
