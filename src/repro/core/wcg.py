"""The Web Conversation Graph (WCG) abstraction (Section III-A).

A WCG is a directed graph capturing the interaction between a victim host
and one or more remote hosts.  Formally (paper notation) a WCG
``G_i = (Phi_i, Psi_i, Sigma_i, alpha, beta)`` where ``Phi`` are request
edges, ``Psi`` response edges, ``Sigma`` redirection edges, ``alpha`` node
attributes and ``beta`` edge attributes.

Storage is columnar (DESIGN.md §14): hosts are interned to dense node
ids and every numeric edge attribute lives in a numpy column of an
:class:`~repro.core.columns.EdgeColumnStore`, grown by amortized
doubling so the incremental live path stays O(1) per edge.  The object
API the rest of the repo consumes — :meth:`edges` yielding
:class:`EdgeData`, :meth:`simple_graph`, :attr:`graph` — is preserved
as a read-only *view* materialized from the columns, which is what
keeps every live-vs-batch and sharded differential byte-identical
across the representation change.

To make the on-the-wire path cheap, the graph maintains running
aggregates as it mutates:

* :class:`GraphCounters` — integer tallies (edge kinds, methods, status
  classes, URI totals, degree maximum, distinct host pairs) that back
  the cheap feature tier without any edge iteration.
* ``version`` — bumped on every feature-bearing mutation; callers cache
  derived values (the 37-vector, a classifier score) keyed on it.
* ``structure_version`` — bumped only when the *simple-graph* structure
  changes (a new node, or a first edge between a host pair).  Expensive
  topology features (diameter, centralities, connectivity, clustering)
  depend only on that structure, so they are recomputed only when this
  counter moves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator

import networkx as nx
import numpy as np

from repro.core.columns import METHODS, REDIRECT_KINDS, EdgeColumnStore
from repro.core.payloads import PayloadSummary, PayloadType
from repro.core.stages import Stage

__all__ = ["NodeKind", "EdgeKind", "EdgeData", "GraphCounters",
           "WebConversationGraph"]

#: Node name used for the synthetic origin node when the enticement
#: source is unknown (referrer concealed), per Section III-B.
EMPTY_ORIGIN = "empty"


class NodeKind(enum.Enum):
    """Designation of a WCG node (Section III-A)."""

    ORIGIN = "origin"
    VICTIM = "victim"
    REMOTE = "remote"
    MALICIOUS = "malicious"
    REDIRECTOR = "redirector"


class EdgeKind(enum.Enum):
    """Relation an edge represents."""

    REQUEST = "req"
    RESPONSE = "res"
    REDIRECT = "redir"


#: Dense codes for the ``kind`` column and back.
_KIND_CODE = {EdgeKind.REQUEST: 0, EdgeKind.RESPONSE: 1, EdgeKind.REDIRECT: 2}
_KIND_OF_CODE = (EdgeKind.REQUEST, EdgeKind.RESPONSE, EdgeKind.REDIRECT)
KIND_REQUEST, KIND_RESPONSE, KIND_REDIRECT = 0, 1, 2

#: Dense codes for the ``payload`` column; -1 encodes None.
_PAYLOAD_TYPES = tuple(PayloadType)
_PAYLOAD_CODE = {ptype: code for code, ptype in enumerate(_PAYLOAD_TYPES)}

_STAGES = tuple(Stage)


@dataclass
class EdgeData:
    """Edge attributes ``beta`` (Section III-C, edge-level).

    ``method``/``uri_length`` are set on request edges;
    ``status``/``payload_type``/``payload_size`` on response edges;
    ``redirect_kind``/``cross_domain`` on redirect edges.

    Since the columnar refactor this is a *view record*: :meth:`
    WebConversationGraph.edges` materializes one per edge from the
    column store.  Mutating a yielded record does not write back —
    stage re-labelling goes through
    :meth:`WebConversationGraph.set_edge_stage`.
    """

    kind: EdgeKind
    timestamp: float
    stage: Stage = Stage.DOWNLOAD
    method: str = ""
    uri_length: int = 0
    status: int = 0
    payload_type: PayloadType | None = None
    payload_size: int = 0
    redirect_kind: str = ""
    cross_domain: bool = False
    referrer: str = ""
    user_agent: str = ""


@dataclass
class _NodeData:
    """Node attributes ``alpha`` (Section III-C, node-level)."""

    kind: NodeKind = NodeKind.REMOTE
    ip: str = ""
    uris: set[str] = field(default_factory=set)
    payloads: PayloadSummary = field(default_factory=PayloadSummary)


@dataclass
class GraphCounters:
    """Running integer aggregates maintained by WCG mutations.

    Every value here is an exact tally — the cheap feature tier reads
    them directly instead of re-walking the edge list, and because they
    are integers the derived feature values are bit-identical to the
    edge-walk formulation.
    """

    request_edges: int = 0
    response_edges: int = 0
    redirect_edges: int = 0
    gets: int = 0
    posts: int = 0
    other_methods: int = 0
    with_referrer: int = 0
    without_referrer: int = 0
    status_classes: dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0, 4: 0, 5: 0}
    )
    #: Hosts with at least one recorded URI / distinct URIs / their bytes.
    uri_hosts: int = 0
    total_uris: int = 0
    total_uri_length: int = 0
    #: Max total degree over the multigraph (degrees only ever grow).
    max_degree: int = 0
    #: Distinct ``(source, target)`` pairs == simple-digraph edge count.
    distinct_pairs: int = 0

    def copy(self) -> "GraphCounters":
        clone = replace(self)
        clone.status_classes = dict(self.status_classes)
        return clone


class WebConversationGraph:
    """An annotated WCG for one client conversation.

    Construction normally goes through
    :class:`repro.core.builder.WCGBuilder`; the mutation API here
    (``add_node`` / ``add_edge`` / ``append_edge``) is what the builder
    and the incremental on-the-wire updater drive.
    """

    def __init__(self, victim: str, origin: str = ""):
        self.victim = victim
        self.origin = origin or EMPTY_ORIGIN
        self._dnt = False
        self._x_flash_version: str = ""
        self._version = 0
        self._structure_version = 0
        self.counters = GraphCounters()
        # Host interning: name -> dense id, id -> name, id -> alpha record.
        self._host_ids: dict[str, int] = {}
        self._host_names: list[str] = []
        self._node_records: list[_NodeData] = []
        self._degrees: list[int] = []
        self._pair_multiplicity: dict[tuple[str, str], int] = {}
        self._edges = EdgeColumnStore()
        # Running timestamp extrema (duration = max - min, identical to
        # sorted[-1] - sorted[0]); sorted caches built lazily per version.
        self._ts_min = np.inf
        self._ts_max = -np.inf
        self._sorted_ts: tuple[int, list[float]] | None = None
        self._sorted_req_ts: tuple[int, np.ndarray] | None = None
        # Stage re-labels do not bump ``version`` (stages are not feature
        # inputs); the nx back-compat view keys on this epoch too.
        self._stage_epoch = 0
        self._nx_cache: tuple[int, int, nx.MultiDiGraph] | None = None
        self.add_node(self.origin, kind=NodeKind.ORIGIN)
        self.add_node(victim, kind=NodeKind.VICTIM)

    # --- change tracking -------------------------------------------------

    @property
    def version(self) -> int:
        """Bumped on every feature-bearing mutation (cache key)."""
        return self._version

    @property
    def structure_version(self) -> int:
        """Bumped only when the simple-graph structure changes."""
        return self._structure_version

    @property
    def dnt(self) -> bool:
        """True when any request in the conversation carried DNT."""
        return self._dnt

    @dnt.setter
    def dnt(self, value: bool) -> None:
        if value != self._dnt:
            self._dnt = value
            self._version += 1

    @property
    def x_flash_version(self) -> str:
        """The last X-Flash-Version header observed (feature f2)."""
        return self._x_flash_version

    @x_flash_version.setter
    def x_flash_version(self, value: str) -> None:
        if value != self._x_flash_version:
            self._x_flash_version = value
            self._version += 1

    # --- structure -------------------------------------------------------

    @property
    def edge_store(self) -> EdgeColumnStore:
        """The columnar edge storage (vectorized extraction reads this)."""
        return self._edges

    @property
    def graph(self) -> nx.MultiDiGraph:
        """Back-compat ``networkx`` view, rebuilt on demand and cached.

        Node records are shared with the live graph (reads through the
        view see current annotations); edge attribute records are
        materialized :class:`EdgeData` copies.
        """
        cached = self._nx_cache
        if cached is not None and cached[0] == self._version \
                and cached[1] == self._stage_epoch:
            return cached[2]
        view = nx.MultiDiGraph()
        for node_id, host in enumerate(self._host_names):
            view.add_node(host, data=self._node_records[node_id])
        names = self._host_names
        store = self._edges
        for i in range(len(store)):
            view.add_edge(names[store.src[i]], names[store.dst[i]],
                          data=self._edge_at(i))
        self._nx_cache = (self._version, self._stage_epoch, view)
        return view

    def _intern(self, host: str) -> int:
        node_id = self._host_ids.get(host)
        if node_id is None:
            node_id = self._host_ids[host] = len(self._host_names)
            self._host_names.append(host)
            self._node_records.append(_NodeData())
            self._degrees.append(0)
            self._version += 1
            self._structure_version += 1
        return node_id

    def add_node(self, host: str, kind: NodeKind = NodeKind.REMOTE,
                 ip: str = "") -> None:
        """Add (or update) a host node."""
        existing = self._host_ids.get(host)
        if existing is not None:
            data = self._node_records[existing]
            # VICTIM/ORIGIN designations are sticky; MALICIOUS upgrades REMOTE.
            if data.kind is NodeKind.REMOTE and kind in (
                NodeKind.MALICIOUS,
                NodeKind.REDIRECTOR,
            ):
                data.kind = kind
            if ip and not data.ip:
                data.ip = ip
            return
        node_id = self._intern(host)
        record = self._node_records[node_id]
        record.kind = kind
        record.ip = ip

    def mark_malicious(self, host: str) -> None:
        """Designate a node malicious (it served an exploit payload)."""
        if host not in self._host_ids:
            self.add_node(host, kind=NodeKind.MALICIOUS)
            return
        data = self._node_records[self._host_ids[host]]
        if data.kind in (NodeKind.REMOTE, NodeKind.REDIRECTOR):
            data.kind = NodeKind.MALICIOUS

    def add_edge(self, source: str, target: str, data: EdgeData) -> None:
        """Add a typed, annotated edge, creating endpoints as needed.

        Object-API wrapper over :meth:`append_edge`; the record is
        unpacked into the columns (not retained), so later mutation of
        ``data`` does not write through.
        """
        self.append_edge(
            source,
            target,
            kind=_KIND_CODE[data.kind],
            timestamp=data.timestamp,
            stage=int(data.stage),
            method=data.method,
            uri_length=data.uri_length,
            status=data.status,
            payload_type=data.payload_type,
            payload_size=data.payload_size,
            redirect_kind=data.redirect_kind,
            cross_domain=data.cross_domain,
            referrer=data.referrer,
            user_agent=data.user_agent,
        )

    def append_edge(
        self,
        source: str,
        target: str,
        kind: int,
        timestamp: float,
        stage: int,
        method: str = "",
        uri_length: int = 0,
        status: int = 0,
        payload_type: PayloadType | None = None,
        payload_size: int = 0,
        redirect_kind: str = "",
        cross_domain: bool = False,
        referrer: str = "",
        user_agent: str = "",
    ) -> int:
        """Append one edge into the columns; returns its edge index.

        This is the hot-path entry the builder uses directly — no
        :class:`EdgeData` allocation per edge.  Counter maintenance is
        identical to the seed object path, so every derived feature
        stays bit-identical.
        """
        self.add_node(source)
        self.add_node(target)
        src = self._host_ids[source]
        dst = self._host_ids[target]
        index = self._edges.append(
            timestamp=timestamp,
            kind=kind,
            stage=stage,
            src=src,
            dst=dst,
            method=METHODS.code(method),
            uri_length=uri_length,
            status=status,
            payload=_PAYLOAD_CODE[payload_type] if payload_type is not None
            else -1,
            size=payload_size,
            redirect=REDIRECT_KINDS.code(redirect_kind),
            cross=cross_domain,
            referrer=referrer,
            user_agent=user_agent,
        )
        self._version += 1

        degree = self._degrees[src] + 1
        self._degrees[src] = degree
        if degree > self.counters.max_degree:
            self.counters.max_degree = degree
        degree = self._degrees[dst] + 1
        self._degrees[dst] = degree
        if degree > self.counters.max_degree:
            self.counters.max_degree = degree

        pair = (source, target)
        multiplicity = self._pair_multiplicity.get(pair, 0)
        self._pair_multiplicity[pair] = multiplicity + 1
        if multiplicity == 0:
            self.counters.distinct_pairs += 1
            self._structure_version += 1

        if timestamp < self._ts_min:
            self._ts_min = timestamp
        if timestamp > self._ts_max:
            self._ts_max = timestamp
        counters = self.counters
        if kind == KIND_REQUEST:
            counters.request_edges += 1
            if method == "GET":
                counters.gets += 1
            elif method == "POST":
                counters.posts += 1
            else:
                counters.other_methods += 1
            if referrer:
                counters.with_referrer += 1
            else:
                counters.without_referrer += 1
        elif kind == KIND_RESPONSE:
            counters.response_edges += 1
            klass = status // 100
            if klass in counters.status_classes:
                counters.status_classes[klass] += 1
        else:
            counters.redirect_edges += 1
        return index

    def set_edge_stage(self, index: int, stage: Stage | int) -> None:
        """Re-label one edge's stage (no ``version`` bump — stages are
        not feature inputs, matching the seed's in-place mutation)."""
        self._edges.set_stage(index, int(stage))
        self._stage_epoch += 1

    def node_data(self, host: str) -> _NodeData:
        """The ``alpha`` record for ``host``."""
        return self._node_records[self._host_ids[host]]

    def record_uri(self, host: str, uri: str) -> None:
        """Track a URI observed for ``host`` (URIs-per-host annotation)."""
        self.add_node(host)
        uris = self.node_data(host).uris
        if uri in uris:
            return
        if not uris:
            self.counters.uri_hosts += 1
        uris.add(uri)
        self.counters.total_uris += 1
        self.counters.total_uri_length += len(uri)
        self._version += 1

    def record_payload(self, host: str, ptype: PayloadType) -> None:
        """Track a payload exchanged with ``host``."""
        self.add_node(host)
        self.node_data(host).payloads.add(ptype)

    # --- views -----------------------------------------------------------

    def _edge_at(self, i: int) -> EdgeData:
        """Materialize the :class:`EdgeData` view of edge ``i``."""
        store = self._edges
        code = store.payload[i]
        return EdgeData(
            kind=_KIND_OF_CODE[store.kind[i]],
            timestamp=float(store.timestamp[i]),
            stage=_STAGES[store.stage[i]],
            method=METHODS.string(store.method[i]),
            uri_length=int(store.uri_length[i]),
            status=int(store.status[i]),
            payload_type=_PAYLOAD_TYPES[code] if code >= 0 else None,
            payload_size=int(store.size[i]),
            redirect_kind=REDIRECT_KINDS.string(store.redirect[i]),
            cross_domain=bool(store.cross[i]),
            referrer=store.referrer[i],
            user_agent=store.user_agent[i],
        )

    def edges(self, kind: EdgeKind | None = None) -> Iterator[tuple[str, str, EdgeData]]:
        """Iterate ``(source, target, EdgeData)``, optionally filtered.

        Yields in edge append order; records are materialized views
        over the columns (see :class:`EdgeData`).
        """
        store = self._edges
        names = self._host_names
        want = None if kind is None else _KIND_CODE[kind]
        for i in range(len(store)):
            if want is None or store.kind[i] == want:
                yield names[store.src[i]], names[store.dst[i]], \
                    self._edge_at(i)

    def request_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Phi`` — request edges."""
        return list(self.edges(EdgeKind.REQUEST))

    def response_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Psi`` — response edges."""
        return list(self.edges(EdgeKind.RESPONSE))

    def redirect_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Sigma`` — redirection edges."""
        return list(self.edges(EdgeKind.REDIRECT))

    def hosts(self) -> list[str]:
        """All node names, origin node included (insertion order)."""
        return list(self._host_names)

    def remote_hosts(self) -> list[str]:
        """All nodes other than the victim and the origin."""
        return [
            host
            for host in self._host_names
            if host not in (self.victim, self.origin)
        ]

    @property
    def order(self) -> int:
        """Number of nodes (feature f7)."""
        return len(self._host_names)

    @property
    def size(self) -> int:
        """Number of edges (feature f8)."""
        return len(self._edges)

    @property
    def has_known_origin(self) -> bool:
        """True when the enticement origin was recoverable (feature f1)."""
        return self.origin != EMPTY_ORIGIN

    def timestamps(self) -> list[float]:
        """All edge timestamps, ascending (sorted lazily, cached per
        version)."""
        cached = self._sorted_ts
        if cached is None or cached[0] != self._version:
            ordered = np.sort(self._edges.column("timestamp")).tolist()
            cached = self._sorted_ts = (self._version, ordered)
        return list(cached[1])

    def request_timestamps(self) -> np.ndarray:
        """Request-edge timestamps, ascending.  Treat as read-only."""
        cached = self._sorted_req_ts
        if cached is None or cached[0] != self._version:
            store = self._edges
            stamps = np.sort(
                store.column("timestamp")[store.column("kind")
                                          == KIND_REQUEST]
            )
            cached = self._sorted_req_ts = (self._version, stamps)
        return cached[1]

    @property
    def duration(self) -> float:
        """Conversation duration in seconds (graph-level annotation)."""
        if len(self._edges) < 2:
            return 0.0
        return self._ts_max - self._ts_min

    def stage_edges(self, stage: Stage) -> list[tuple[str, str, EdgeData]]:
        """Edges annotated with the given conversation stage."""
        store = self._edges
        names = self._host_names
        want = int(stage)
        return [
            (names[store.src[i]], names[store.dst[i]], self._edge_at(i))
            for i in np.nonzero(store.column("stage") == want)[0]
        ]

    def has_post_download_dynamics(self) -> bool:
        """True when at least one post-download edge exists."""
        return bool(
            np.any(self._edges.column("stage") == int(Stage.POST_DOWNLOAD))
        )

    def simple_graph(self, include_origin: bool = True) -> nx.DiGraph:
        """Collapse parallel edges into a simple digraph for analytics.

        Edge multiplicity is preserved as a ``weight`` attribute; graph
        analytics that are multiplicity-sensitive (degree, volume) read
        the multigraph instead.

        Nodes and adjacencies are inserted in sorted order, so the
        projection — and every float computed over it — is a canonical
        function of the graph's *content*, independent of the order in
        which the builder happened to insert nodes and edges.  The
        incremental and batch construction paths interleave insertions
        differently; this is what keeps their feature vectors
        bit-identical (see DESIGN.md §9).
        """
        simple = nx.DiGraph()
        for host in sorted(self._host_names):
            if not include_origin and host == self.origin:
                continue
            simple.add_node(host)
        for source, target in sorted(self._pair_multiplicity):
            if not include_origin and self.origin in (source, target):
                continue
            simple.add_edge(
                source, target, weight=self._pair_multiplicity[(source, target)]
            )
        return simple

    def copy(self) -> "WebConversationGraph":
        """Deep-enough copy for incremental what-if evaluation.

        Columns snapshot as array slice-copies (no per-edge object
        duplication); node records are duplicated so live-builder
        annotations do not leak into clones.
        """
        clone = WebConversationGraph.__new__(WebConversationGraph)
        clone.victim = self.victim
        clone.origin = self.origin
        clone._dnt = self._dnt
        clone._x_flash_version = self._x_flash_version
        clone._version = self._version
        clone._structure_version = self._structure_version
        clone.counters = self.counters.copy()
        clone._host_ids = dict(self._host_ids)
        clone._host_names = list(self._host_names)
        clone._degrees = list(self._degrees)
        clone._pair_multiplicity = dict(self._pair_multiplicity)
        clone._edges = self._edges.copy()
        clone._ts_min = self._ts_min
        clone._ts_max = self._ts_max
        clone._sorted_ts = None
        clone._sorted_req_ts = None
        clone._stage_epoch = 0
        clone._nx_cache = None
        clone._node_records = []
        for data in self._node_records:
            copied = _NodeData(kind=data.kind, ip=data.ip)
            copied.uris = set(data.uris)
            copied.payloads.counts = dict(data.payloads.counts)
            clone._node_records.append(copied)
        return clone

    def __repr__(self) -> str:
        return (
            f"WebConversationGraph(victim={self.victim!r}, "
            f"origin={self.origin!r}, order={self.order}, size={self.size})"
        )
