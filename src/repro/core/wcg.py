"""The Web Conversation Graph (WCG) abstraction (Section III-A).

A WCG is a directed graph capturing the interaction between a victim host
and one or more remote hosts.  Formally (paper notation) a WCG
``G_i = (Phi_i, Psi_i, Sigma_i, alpha, beta)`` where ``Phi`` are request
edges, ``Psi`` response edges, ``Sigma`` redirection edges, ``alpha`` node
attributes and ``beta`` edge attributes.  We realize it on a
``networkx.MultiDiGraph`` so that parallel edges of different kinds
between the same host pair coexist, and expose the annotated views that
feature extraction (``repro.features``) consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.core.payloads import PayloadSummary, PayloadType
from repro.core.stages import Stage

__all__ = ["NodeKind", "EdgeKind", "EdgeData", "WebConversationGraph"]

#: Node name used for the synthetic origin node when the enticement
#: source is unknown (referrer concealed), per Section III-B.
EMPTY_ORIGIN = "empty"


class NodeKind(enum.Enum):
    """Designation of a WCG node (Section III-A)."""

    ORIGIN = "origin"
    VICTIM = "victim"
    REMOTE = "remote"
    MALICIOUS = "malicious"
    REDIRECTOR = "redirector"


class EdgeKind(enum.Enum):
    """Relation an edge represents."""

    REQUEST = "req"
    RESPONSE = "res"
    REDIRECT = "redir"


@dataclass
class EdgeData:
    """Edge attributes ``beta`` (Section III-C, edge-level).

    ``method``/``uri_length`` are set on request edges;
    ``status``/``payload_type``/``payload_size`` on response edges;
    ``redirect_kind``/``cross_domain`` on redirect edges.
    """

    kind: EdgeKind
    timestamp: float
    stage: Stage = Stage.DOWNLOAD
    method: str = ""
    uri_length: int = 0
    status: int = 0
    payload_type: PayloadType | None = None
    payload_size: int = 0
    redirect_kind: str = ""
    cross_domain: bool = False
    referrer: str = ""
    user_agent: str = ""


@dataclass
class _NodeData:
    """Node attributes ``alpha`` (Section III-C, node-level)."""

    kind: NodeKind = NodeKind.REMOTE
    ip: str = ""
    uris: set[str] = field(default_factory=set)
    payloads: PayloadSummary = field(default_factory=PayloadSummary)


class WebConversationGraph:
    """An annotated WCG for one client conversation.

    Construction normally goes through
    :class:`repro.core.builder.WCGBuilder`; the mutation API here
    (``add_node`` / ``add_edge``) is what the builder and the incremental
    on-the-wire updater drive.
    """

    def __init__(self, victim: str, origin: str = ""):
        self._graph = nx.MultiDiGraph()
        self.victim = victim
        self.origin = origin or EMPTY_ORIGIN
        self.dnt = False
        self.x_flash_version: str = ""
        self.add_node(self.origin, kind=NodeKind.ORIGIN)
        self.add_node(victim, kind=NodeKind.VICTIM)

    # --- structure -------------------------------------------------------

    @property
    def graph(self) -> nx.MultiDiGraph:
        """The underlying annotated multigraph (read-mostly)."""
        return self._graph

    def add_node(self, host: str, kind: NodeKind = NodeKind.REMOTE,
                 ip: str = "") -> None:
        """Add (or update) a host node."""
        if host in self._graph:
            data: _NodeData = self._graph.nodes[host]["data"]
            # VICTIM/ORIGIN designations are sticky; MALICIOUS upgrades REMOTE.
            if data.kind is NodeKind.REMOTE and kind in (
                NodeKind.MALICIOUS,
                NodeKind.REDIRECTOR,
            ):
                data.kind = kind
            if ip and not data.ip:
                data.ip = ip
            return
        self._graph.add_node(host, data=_NodeData(kind=kind, ip=ip))

    def mark_malicious(self, host: str) -> None:
        """Designate a node malicious (it served an exploit payload)."""
        if host not in self._graph:
            self.add_node(host, kind=NodeKind.MALICIOUS)
            return
        data: _NodeData = self._graph.nodes[host]["data"]
        if data.kind in (NodeKind.REMOTE, NodeKind.REDIRECTOR):
            data.kind = NodeKind.MALICIOUS

    def add_edge(self, source: str, target: str, data: EdgeData) -> None:
        """Add a typed, annotated edge, creating endpoints as needed."""
        self.add_node(source)
        self.add_node(target)
        self._graph.add_edge(source, target, data=data)

    def node_data(self, host: str) -> _NodeData:
        """The ``alpha`` record for ``host``."""
        return self._graph.nodes[host]["data"]

    def record_uri(self, host: str, uri: str) -> None:
        """Track a URI observed for ``host`` (URIs-per-host annotation)."""
        self.add_node(host)
        self.node_data(host).uris.add(uri)

    def record_payload(self, host: str, ptype: PayloadType) -> None:
        """Track a payload exchanged with ``host``."""
        self.add_node(host)
        self.node_data(host).payloads.add(ptype)

    # --- views -----------------------------------------------------------

    def edges(self, kind: EdgeKind | None = None) -> Iterator[tuple[str, str, EdgeData]]:
        """Iterate ``(source, target, EdgeData)``, optionally filtered."""
        for source, target, attrs in self._graph.edges(data=True):
            data: EdgeData = attrs["data"]
            if kind is None or data.kind is kind:
                yield source, target, data

    def request_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Phi`` — request edges."""
        return list(self.edges(EdgeKind.REQUEST))

    def response_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Psi`` — response edges."""
        return list(self.edges(EdgeKind.RESPONSE))

    def redirect_edges(self) -> list[tuple[str, str, EdgeData]]:
        """``Sigma`` — redirection edges."""
        return list(self.edges(EdgeKind.REDIRECT))

    def hosts(self) -> list[str]:
        """All node names, origin node included."""
        return list(self._graph.nodes)

    def remote_hosts(self) -> list[str]:
        """All nodes other than the victim and the origin."""
        return [
            host
            for host in self._graph.nodes
            if host not in (self.victim, self.origin)
        ]

    @property
    def order(self) -> int:
        """Number of nodes (feature f7)."""
        return self._graph.number_of_nodes()

    @property
    def size(self) -> int:
        """Number of edges (feature f8)."""
        return self._graph.number_of_edges()

    @property
    def has_known_origin(self) -> bool:
        """True when the enticement origin was recoverable (feature f1)."""
        return self.origin != EMPTY_ORIGIN

    def timestamps(self) -> list[float]:
        """All edge timestamps, ascending."""
        return sorted(data.timestamp for _, _, data in self.edges())

    @property
    def duration(self) -> float:
        """Conversation duration in seconds (graph-level annotation)."""
        stamps = self.timestamps()
        if len(stamps) < 2:
            return 0.0
        return stamps[-1] - stamps[0]

    def stage_edges(self, stage: Stage) -> list[tuple[str, str, EdgeData]]:
        """Edges annotated with the given conversation stage."""
        return [
            (source, target, data)
            for source, target, data in self.edges()
            if data.stage is stage
        ]

    def has_post_download_dynamics(self) -> bool:
        """True when at least one post-download edge exists."""
        return any(
            data.stage is Stage.POST_DOWNLOAD for _, _, data in self.edges()
        )

    def simple_graph(self, include_origin: bool = True) -> nx.DiGraph:
        """Collapse parallel edges into a simple digraph for analytics.

        Edge multiplicity is preserved as a ``weight`` attribute; graph
        analytics that are multiplicity-sensitive (degree, volume) read
        the multigraph instead.
        """
        simple = nx.DiGraph()
        for host in self._graph.nodes:
            if not include_origin and host == self.origin:
                continue
            simple.add_node(host)
        for source, target, data in self.edges():
            if not include_origin and self.origin in (source, target):
                continue
            if simple.has_edge(source, target):
                simple[source][target]["weight"] += 1
            else:
                simple.add_edge(source, target, weight=1)
        return simple

    def copy(self) -> "WebConversationGraph":
        """Deep-enough copy for incremental what-if evaluation."""
        clone = WebConversationGraph.__new__(WebConversationGraph)
        clone._graph = nx.MultiDiGraph()
        clone.victim = self.victim
        clone.origin = self.origin
        clone.dnt = self.dnt
        clone.x_flash_version = self.x_flash_version
        for host, attrs in self._graph.nodes(data=True):
            data: _NodeData = attrs["data"]
            copied = _NodeData(kind=data.kind, ip=data.ip)
            copied.uris = set(data.uris)
            copied.payloads.counts = dict(data.payloads.counts)
            clone._graph.add_node(host, data=copied)
        for source, target, attrs in self._graph.edges(data=True):
            clone._graph.add_edge(source, target, data=attrs["data"])
        return clone

    def __repr__(self) -> str:
        return (
            f"WebConversationGraph(victim={self.victim!r}, "
            f"origin={self.origin!r}, order={self.order}, size={self.size})"
        )
