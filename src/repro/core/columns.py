"""Struct-of-arrays edge storage for the WCG (DESIGN.md §14).

The seed representation kept every edge as an :class:`EdgeData` python
object hanging off a ``networkx.MultiDiGraph`` attribute dict; each
feature extraction walked those objects graph by graph.  This module is
the columnar replacement: every numeric edge attribute lives in one
numpy column, grown by amortized doubling so the incremental live path
stays O(1) per edge, and feature extraction becomes array reductions
over column *slices* — mirroring the compiled-forest arena design in
``repro.learning.compiled``.

Layout (one row per edge, append order = ingest order):

==============  =========  ====================================
column          dtype      content
==============  =========  ====================================
``timestamp``   float64    edge timestamp (seconds)
``kind``        int8       :class:`EdgeKind` code (0/1/2)
``stage``       int8       :class:`Stage` value (0/1/2)
``src``/``dst`` int32      interned node ids (WCG host table)
``method``      int16      interned method string
``uri_length``  int64      request URI length
``status``      int16      response status code
``payload``     int16      :class:`PayloadType` code, -1 = None
``size``        int64      response payload size (bytes)
``redirect``    int16      interned redirect-kind string
``cross``       bool       redirect crossed domains
``has_ref``     bool       request carried a referrer
==============  =========  ====================================

Unbounded strings (referrer, user agent) stay in plain python lists —
they are carried for the object view only and never vectorized.  Small
recurring strings (methods, redirect kinds) are interned process-wide
through :class:`StringTable`.

Mutability contract: columns are append-only except for ``stage``,
which the builder re-labels in place through :meth:`EdgeColumnStore.
set_stage` (stage is not a feature input, so no version bump — the same
semantics the in-place ``EdgeData.stage`` mutation had).  Accessors
return numpy views of the live prefix; callers must treat them as
read-only snapshots that are invalidated by the next append.
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_registry

__all__ = ["EdgeColumnStore", "StringTable"]

#: Initial per-column capacity; doubles on exhaustion.
_INITIAL_CAPACITY = 8


class StringTable:
    """Bidirectional string interner: string <-> small int code.

    Used for the low-cardinality string columns (HTTP methods, redirect
    kinds).  Codes are dense and assigned in first-seen order, so a
    table is deterministic for a deterministic input stream.
    """

    __slots__ = ("_codes", "_strings")

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self._strings: list[str] = []

    def code(self, value: str) -> int:
        """Intern ``value``; returns its stable code."""
        code = self._codes.get(value)
        if code is None:
            code = self._codes[value] = len(self._strings)
            self._strings.append(value)
        return code

    def string(self, code: int) -> str:
        """The string behind ``code``."""
        return self._strings[code]

    def __len__(self) -> int:
        return len(self._strings)


#: Process-wide interners: method verbs and redirect kinds are tiny,
#: closed vocabularies — sharing one table across every WCG keeps codes
#: stable and snapshot copies trivially cheap (codes, not strings).
METHODS = StringTable()
REDIRECT_KINDS = StringTable()
# Pre-intern the empty string at code 0 so default rows need no lookup.
_EMPTY_METHOD = METHODS.code("")
_EMPTY_REDIRECT = REDIRECT_KINDS.code("")


class EdgeColumnStore:
    """Amortized-doubling struct-of-arrays store for WCG edges."""

    __slots__ = (
        "_n", "_capacity",
        "timestamp", "kind", "stage", "src", "dst", "method",
        "uri_length", "status", "payload", "size", "redirect",
        "cross", "has_ref", "referrer", "user_agent",
        "_c_reallocs",
    )

    #: (attribute, dtype) for every numpy-backed column.
    _NUMERIC: tuple[tuple[str, str], ...] = (
        ("timestamp", "f8"),
        ("kind", "i1"),
        ("stage", "i1"),
        ("src", "i4"),
        ("dst", "i4"),
        ("method", "i2"),
        ("uri_length", "i8"),
        ("status", "i2"),
        ("payload", "i2"),
        ("size", "i8"),
        ("redirect", "i2"),
        ("cross", "?"),
        ("has_ref", "?"),
    )

    def __init__(self, capacity: int = _INITIAL_CAPACITY):
        self._n = 0
        self._capacity = max(1, capacity)
        for name, dtype in self._NUMERIC:
            setattr(self, name, np.zeros(self._capacity, dtype=dtype))
        # Unbounded strings: object view only, never vectorized.
        self.referrer: list[str] = []
        self.user_agent: list[str] = []
        self._c_reallocs = get_registry().counter("wcg.column_reallocs")

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Current allocated rows (for the growth regression tests)."""
        return self._capacity

    def _grow(self) -> None:
        """Double every column; amortized O(1) per append."""
        self._capacity *= 2
        for name, _ in self._NUMERIC:
            old = getattr(self, name)
            grown = np.zeros(self._capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)
        self._c_reallocs.inc()

    def append(
        self,
        timestamp: float,
        kind: int,
        stage: int,
        src: int,
        dst: int,
        method: int = _EMPTY_METHOD,
        uri_length: int = 0,
        status: int = 0,
        payload: int = -1,
        size: int = 0,
        redirect: int = _EMPTY_REDIRECT,
        cross: bool = False,
        referrer: str = "",
        user_agent: str = "",
    ) -> int:
        """Append one edge row; returns its index."""
        if self._n >= self._capacity:
            self._grow()
        i = self._n
        self.timestamp[i] = timestamp
        self.kind[i] = kind
        self.stage[i] = stage
        self.src[i] = src
        self.dst[i] = dst
        self.method[i] = method
        self.uri_length[i] = uri_length
        self.status[i] = status
        self.payload[i] = payload
        self.size[i] = size
        self.redirect[i] = redirect
        self.cross[i] = cross
        self.has_ref[i] = bool(referrer)
        self.referrer.append(referrer)
        self.user_agent.append(user_agent)
        self._n = i + 1
        return i

    def set_stage(self, index: int, stage: int) -> None:
        """Re-label one edge's stage in place (no version semantics)."""
        self.stage[index] = stage

    def column(self, name: str) -> np.ndarray:
        """Live-prefix view of one numeric column (treat as read-only)."""
        return getattr(self, name)[: self._n]

    def copy(self) -> "EdgeColumnStore":
        """Compact snapshot: one slice-copy per column, no per-edge work."""
        clone = EdgeColumnStore.__new__(EdgeColumnStore)
        clone._n = self._n
        clone._capacity = max(1, self._n)
        for name, dtype in self._NUMERIC:
            col = np.zeros(clone._capacity, dtype=dtype)
            col[: self._n] = getattr(self, name)[: self._n]
            setattr(clone, name, col)
        clone.referrer = list(self.referrer)
        clone.user_agent = list(self.user_agent)
        clone._c_reallocs = self._c_reallocs
        return clone
