"""Redirection inference heuristics (Section III-B / III-D).

The paper pinpoints redirection footprints via ``Referer`` headers on the
client side, ``Location`` headers on the server side, and *custom*
redirections — HTML META refreshes, JavaScript navigation, and iframes —
which miscreants frequently conceal behind client-side obfuscation.  This
module implements those heuristics, including a deobfuscation pass that
recovers redirect targets hidden behind the obfuscation styles observed
in exploit-kit landing pages (string splitting/concatenation,
``String.fromCharCode`` encoding, percent/hex escapes, and ``atob``
base64 blobs).
"""

from __future__ import annotations

import base64
import binascii
import enum
import re
from dataclasses import dataclass
from urllib.parse import urljoin, urlsplit

from repro.core.model import HttpTransaction

__all__ = [
    "RedirectKind",
    "Redirect",
    "RedirectInferencer",
    "deobfuscate",
    "extract_content_redirects",
    "infer_redirects",
    "redirect_chains",
    "longest_chain_length",
]


class RedirectKind(enum.Enum):
    """Mechanism through which a redirection was effected."""

    HTTP_30X = "http_30x"
    META_REFRESH = "meta_refresh"
    JAVASCRIPT = "javascript"
    IFRAME = "iframe"
    REFERRER = "referrer"


@dataclass(frozen=True)
class Redirect:
    """One inferred redirection: ``source`` host led the client to
    ``target`` host via ``kind`` at ``timestamp``."""

    source: str
    target: str
    kind: RedirectKind
    timestamp: float
    target_url: str = ""

    @property
    def cross_domain(self) -> bool:
        """True when source and target registered domains differ."""
        return _registered_domain(self.source) != _registered_domain(self.target)


_TWO_LEVEL_TLDS = frozenset({"co.uk", "com.br", "com.cn", "co.jp", "com.au"})


def _registered_domain(host: str) -> str:
    """Crude eTLD+1 extraction good enough for cross-domain judgement."""
    parts = host.lower().strip(".").split(".")
    if len(parts) <= 2:
        return ".".join(parts)
    if ".".join(parts[-2:]) in _TWO_LEVEL_TLDS:
        return ".".join(parts[-3:])
    return ".".join(parts[-2:])


def _host_of(url: str, base_host: str = "") -> str:
    """Hostname of ``url`` (resolving relative URLs against base_host)."""
    parsed = urlsplit(url)
    if parsed.netloc:
        return parsed.netloc.split(":", 1)[0].lower()
    return base_host.lower()


# --- deobfuscation -------------------------------------------------------

_FROMCHARCODE = re.compile(
    r"String\.fromCharCode\(\s*([0-9,\s]+?)\s*\)", re.IGNORECASE
)
_ATOB = re.compile(r"atob\(\s*['\"]([A-Za-z0-9+/=]+)['\"]\s*\)")
_CONCAT = re.compile(r"['\"]([^'\"]*)['\"]\s*\+\s*['\"]([^'\"]*)['\"]")
_HEX_ESCAPE = re.compile(r"\\x([0-9a-fA-F]{2})")
_UNICODE_ESCAPE = re.compile(r"\\u([0-9a-fA-F]{4})")
_PCT_ESCAPE = re.compile(r"%([0-9a-fA-F]{2})")
_UNESCAPE_CALL = re.compile(r"unescape\(\s*['\"]([^'\"]+)['\"]\s*\)")
_ARRAY_JOIN = re.compile(
    r"\[\s*((?:['\"][^'\"]*['\"]\s*,\s*)+['\"][^'\"]*['\"])\s*\]"
    r"\s*\.\s*join\(\s*['\"]{2}\s*\)"
)
_REVERSE_JOIN = re.compile(
    r"['\"]([^'\"]+)['\"]\s*\.split\(['\"]{2}\)\.reverse\(\)\.join\(['\"]{2}\)"
)
_VAR_ASSIGN = re.compile(r"var\s+(\w+)\s*=\s*['\"]([^'\"]*)['\"]\s*;")


def deobfuscate(text: str, max_rounds: int = 8) -> str:
    """Iteratively undo common exploit-kit string obfuscations.

    Applies rewrite rules until a fixed point (or ``max_rounds``):
    ``String.fromCharCode`` decoding, ``atob`` base64 decoding,
    ``unescape``/percent decoding, hex and unicode escape decoding,
    ``[..].join('')`` folding, ``'..'.split('').reverse().join('')``
    reversal, and literal string concatenation folding.
    """

    def _fold_fromcharcode(match: re.Match[str]) -> str:
        try:
            codes = [int(tok) for tok in match.group(1).split(",") if tok.strip()]
            return '"' + "".join(chr(c) for c in codes if 0 <= c < 0x110000) + '"'
        except ValueError:
            return match.group(0)

    def _fold_atob(match: re.Match[str]) -> str:
        try:
            decoded = base64.b64decode(match.group(1), validate=True)
            return '"' + decoded.decode("utf-8", errors="replace") + '"'
        except (binascii.Error, ValueError):
            return match.group(0)

    def _fold_join(match: re.Match[str]) -> str:
        pieces = re.findall(r"['\"]([^'\"]*)['\"]", match.group(1))
        return '"' + "".join(pieces) + '"'

    def _fold_reverse(match: re.Match[str]) -> str:
        return '"' + match.group(1)[::-1] + '"'

    current = text
    for _ in range(max_rounds):
        previous = current
        current = _FROMCHARCODE.sub(_fold_fromcharcode, current)
        current = _ATOB.sub(_fold_atob, current)
        current = _ARRAY_JOIN.sub(_fold_join, current)
        current = _REVERSE_JOIN.sub(_fold_reverse, current)
        current = _UNESCAPE_CALL.sub(
            lambda m: '"' + _PCT_ESCAPE.sub(
                lambda h: chr(int(h.group(1), 16)), m.group(1)
            ) + '"',
            current,
        )
        current = _HEX_ESCAPE.sub(lambda m: chr(int(m.group(1), 16)), current)
        current = _UNICODE_ESCAPE.sub(lambda m: chr(int(m.group(1), 16)), current)
        current = _CONCAT.sub(lambda m: '"' + m.group(1) + m.group(2) + '"', current)
        # Single-assignment propagation: `var u = "X"; ... location = u`
        # becomes `... location = "X"`.
        for name, value in _VAR_ASSIGN.findall(current):
            current = re.sub(
                rf"(?<![\w'\"]){re.escape(name)}(?![\w'\"])",
                '"' + value.replace("\\", "\\\\") + '"',
                current,
            )
        if current == previous:
            break
    return current


# --- content redirect mining ---------------------------------------------

_META_REFRESH = re.compile(
    r"<meta[^>]+http-equiv\s*=\s*['\"]?refresh['\"]?[^>]*"
    r"content\s*=\s*['\"][^'\"]*url\s*=\s*([^'\">\s]+)",
    re.IGNORECASE,
)
_IFRAME_SRC = re.compile(
    r"<iframe[^>]+src\s*=\s*['\"]?(https?://[^'\">\s]+)", re.IGNORECASE
)
_JS_LOCATION = re.compile(
    r"(?:window\.|document\.|top\.|self\.)?location(?:\.href|\.replace|\.assign)?"
    r"\s*(?:=|\()\s*['\"](https?://[^'\"]+)['\"]",
    re.IGNORECASE,
)
_WINDOW_OPEN = re.compile(
    r"window\.open\(\s*['\"](https?://[^'\"]+)['\"]", re.IGNORECASE
)


def extract_content_redirects(body: str) -> list[tuple[RedirectKind, str]]:
    """Mine redirect targets out of an HTML/JS body.

    The body is deobfuscated first, then scanned for META refreshes,
    iframe injections, and JavaScript navigation.  Returns
    ``(kind, target_url)`` pairs in document order of first occurrence.

    Results are memoized per body: the streaming detector re-infers
    redirects over a growing window, and re-deobfuscating every body on
    each growth step dominated its runtime.
    """
    cached = _CONTENT_CACHE.get(body)
    if cached is not None:
        return list(cached)
    text = deobfuscate(body)
    found: list[tuple[int, RedirectKind, str]] = []
    for pattern, kind in (
        (_META_REFRESH, RedirectKind.META_REFRESH),
        (_IFRAME_SRC, RedirectKind.IFRAME),
        (_JS_LOCATION, RedirectKind.JAVASCRIPT),
        (_WINDOW_OPEN, RedirectKind.JAVASCRIPT),
    ):
        for match in pattern.finditer(text):
            found.append((match.start(), kind, match.group(1).strip()))
    found.sort(key=lambda item: item[0])
    seen: set[str] = set()
    results: list[tuple[RedirectKind, str]] = []
    for _, kind, url in found:
        if url not in seen:
            seen.add(url)
            results.append((kind, url))
    if len(_CONTENT_CACHE) >= _CONTENT_CACHE_CAP:
        _CONTENT_CACHE.clear()  # simple bound; bodies repeat within runs
    _CONTENT_CACHE[body] = tuple(results)
    return results


_TEXTUAL_TYPES = ("text/html", "text/javascript", "application/javascript",
                  "application/x-javascript", "application/xhtml")

#: Memo for extract_content_redirects (body -> results).
_CONTENT_CACHE: dict[str, tuple] = {}
_CONTENT_CACHE_CAP = 4096


class RedirectInferencer:
    """Incremental redirect inference over a growing transaction stream.

    Combines three evidence sources, deduplicated on
    ``(source, target, kind)``:

    1. **HTTP 30x**: a response with a ``Location`` header redirects from
       the responding host to the target host.
    2. **Content**: META refresh / iframe / JS navigation mined from
       textual response bodies (after deobfuscation).
    3. **Referrer corroboration**: a request whose ``Referer`` names a
       different host that the client previously visited — evidence of a
       hop that left no 30x/content footprint.

    Each :meth:`observe` is O(new transaction); the streaming clue
    detector relies on this to avoid rescanning its whole window per
    update.
    """

    def __init__(self) -> None:
        self.redirects: list[Redirect] = []
        self._seen: set[tuple[str, str, RedirectKind]] = set()
        self._visited_hosts: set[str] = set()
        self._content_targets: set[str] = set()

    def _emit(self, source: str, target: str, kind: RedirectKind,
              ts: float, url: str = "") -> list[Redirect]:
        if not source or not target or source == target:
            return []
        key = (source, target, kind)
        if key in self._seen:
            return []
        self._seen.add(key)
        redirect = Redirect(source, target, kind, ts, url)
        self.redirects.append(redirect)
        return [redirect]

    def observe(self, txn: HttpTransaction) -> list[Redirect]:
        """Ingest one transaction; returns the redirects it revealed."""
        fresh: list[Redirect] = []
        server = txn.server
        response = txn.response
        if response is not None and response.is_redirect:
            absolute = urljoin(f"http://{server}/", response.location)
            target = _host_of(absolute, server)
            fresh += self._emit(server, target, RedirectKind.HTTP_30X,
                                response.timestamp, absolute)
            self._content_targets.add(target)
        if response is not None and response.body:
            content_type = response.content_type.lower()
            if any(content_type.startswith(t) for t in _TEXTUAL_TYPES):
                body = response.body.decode("utf-8", errors="replace")
                for kind, url in extract_content_redirects(body):
                    target = _host_of(url, server)
                    fresh += self._emit(server, target, kind,
                                        response.timestamp, url)
                    self._content_targets.add(target)
        ref_host = txn.request.referrer_host
        if (
            ref_host
            and ref_host != server
            and ref_host in self._visited_hosts
            and server not in self._content_targets
        ):
            fresh += self._emit(ref_host, server, RedirectKind.REFERRER,
                                txn.timestamp)
        self._visited_hosts.add(server)
        return fresh


def infer_redirects(transactions: list[HttpTransaction]) -> list[Redirect]:
    """Infer all redirections in an ordered transaction stream.

    Batch convenience over :class:`RedirectInferencer` — identical
    semantics, one pass.
    """
    inferencer = RedirectInferencer()
    for txn in transactions:
        inferencer.observe(txn)
    return inferencer.redirects


def redirect_chains(redirects: list[Redirect]) -> list[list[Redirect]]:
    """Assemble individual redirects into maximal chains.

    A chain follows ``target`` -> next redirect whose ``source`` matches,
    in timestamp order.  Each redirect belongs to at most one chain;
    chains are returned in order of their first hop.
    """
    ordered = sorted(redirects, key=lambda r: r.timestamp)
    used = [False] * len(ordered)
    chains: list[list[Redirect]] = []
    for start in range(len(ordered)):
        if used[start]:
            continue
        chain = [ordered[start]]
        used[start] = True
        cursor = ordered[start]
        extended = True
        while extended:
            extended = False
            for index in range(len(ordered)):
                candidate = ordered[index]
                if used[index]:
                    continue
                if (
                    candidate.source == cursor.target
                    and candidate.timestamp >= cursor.timestamp
                ):
                    chain.append(candidate)
                    used[index] = True
                    cursor = candidate
                    extended = True
                    break
        chains.append(chain)
    return chains


def longest_chain_length(redirects: list[Redirect]) -> int:
    """Number of hops in the longest assembled chain (0 when none)."""
    chains = redirect_chains(redirects)
    return max((len(chain) for chain in chains), default=0)
