"""Core WCG abstraction: domain model, graph, construction, annotations."""

from repro.core.builder import WCGBuilder, build_wcg
from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
    TraceLabel,
)
from repro.core.payloads import PayloadClass, PayloadType, classify, is_exploit_type
from repro.core.redirects import (
    Redirect,
    RedirectInferencer,
    RedirectKind,
    deobfuscate,
    infer_redirects,
    longest_chain_length,
    redirect_chains,
)
from repro.core.sessions import SessionCluster, extract_session_id, group_sessions
from repro.core.stages import Stage, assign_stages
from repro.core.wcg import EdgeData, EdgeKind, NodeKind, WebConversationGraph

__all__ = [
    "EdgeData",
    "EdgeKind",
    "Headers",
    "HttpMethod",
    "HttpRequest",
    "HttpResponse",
    "HttpTransaction",
    "NodeKind",
    "PayloadClass",
    "PayloadType",
    "Redirect",
    "RedirectInferencer",
    "RedirectKind",
    "SessionCluster",
    "Stage",
    "Trace",
    "TraceLabel",
    "WCGBuilder",
    "WebConversationGraph",
    "assign_stages",
    "build_wcg",
    "classify",
    "deobfuscate",
    "extract_session_id",
    "group_sessions",
    "infer_redirects",
    "is_exploit_type",
    "longest_chain_length",
    "redirect_chains",
    "build_wcg",
]
