"""Domain model: HTTP transactions and the hosts that exchange them.

These dataclasses are the lingua franca of the library.  The network
substrate (``repro.net``) produces them from raw packets, the synthetic
trace generators (``repro.synthesis``) produce them directly, and the WCG
builder (``repro.core.builder``) consumes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.core.payloads import PayloadType, classify

__all__ = [
    "HttpMethod",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpTransaction",
    "Trace",
    "TraceLabel",
]


class HttpMethod(enum.Enum):
    """HTTP request methods; ``OTHER`` covers the long tail (f28)."""

    GET = "GET"
    POST = "POST"
    HEAD = "HEAD"
    PUT = "PUT"
    DELETE = "DELETE"
    OPTIONS = "OPTIONS"
    CONNECT = "CONNECT"
    OTHER = "OTHER"

    @classmethod
    def of(cls, verb: str) -> "HttpMethod":
        """Parse a request verb, mapping unknown verbs to ``OTHER``."""
        try:
            return cls(verb.upper())
        except ValueError:
            return cls.OTHER


class Headers:
    """Case-insensitive, order-preserving HTTP header multimap."""

    __slots__ = ("_items",)

    def __init__(self, items: list[tuple[str, str]] | dict[str, str] | None = None):
        if isinstance(items, dict):
            self._items: list[tuple[str, str]] = list(items.items())
        else:
            self._items = list(items or [])

    def get(self, name: str, default: str = "") -> str:
        """First value for ``name`` (case-insensitive), else ``default``."""
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        """All values for ``name`` in original order."""
        lowered = name.lower()
        return [value for key, value in self._items if key.lower() == lowered]

    def set(self, name: str, value: str) -> None:
        """Replace all occurrences of ``name`` with a single value."""
        lowered = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]
        self._items.append((name, value))

    def add(self, name: str, value: str) -> None:
        """Append a header without removing existing occurrences."""
        self._items.append((name, value))

    def remove(self, name: str) -> None:
        """Delete all occurrences of ``name``."""
        lowered = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and any(
            key.lower() == name.lower() for key, _ in self._items
        )

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    def copy(self) -> "Headers":
        """Shallow copy of this header map."""
        return Headers(list(self._items))

    def items(self) -> list[tuple[str, str]]:
        """All ``(name, value)`` pairs in original order."""
        return list(self._items)


@dataclass
class HttpRequest:
    """A single HTTP request as observed on the wire.

    ``host`` is the logical server name (from the ``Host`` header or the
    request URI); ``client`` is the requesting host.  ``timestamp`` is a
    simulated epoch time in seconds.
    """

    method: HttpMethod
    uri: str
    host: str
    client: str
    timestamp: float
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def referrer(self) -> str:
        """Value of the ``Referer`` header (empty when absent/redacted)."""
        return self.headers.get("Referer")

    @property
    def referrer_host(self) -> str:
        """Hostname component of the referrer, or empty string."""
        ref = self.referrer
        if not ref:
            return ""
        host = urlsplit(ref).netloc
        return host.split(":", 1)[0].lower()

    @property
    def user_agent(self) -> str:
        """Value of the ``User-Agent`` header."""
        return self.headers.get("User-Agent")

    @property
    def uri_length(self) -> int:
        """Length of the request URI (edge attribute, Section III-C)."""
        return len(self.uri)

    @property
    def full_url(self) -> str:
        """Absolute URL of the request."""
        if self.uri.startswith("http://") or self.uri.startswith("https://"):
            return self.uri
        return f"http://{self.host}{self.uri}"

    @property
    def dnt(self) -> bool:
        """True when the Do-Not-Track header is enabled (graph-level attr)."""
        return self.headers.get("DNT") == "1"


@dataclass
class HttpResponse:
    """A single HTTP response paired with a request."""

    status: int
    timestamp: float
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def content_type(self) -> str:
        """Declared ``Content-Type`` header value."""
        return self.headers.get("Content-Type")

    @property
    def location(self) -> str:
        """``Location`` header value (redirect target), if any."""
        return self.headers.get("Location")

    @property
    def body_size(self) -> int:
        """Payload size in bytes.

        Uses ``Content-Length`` when the body was elided (synthetic traces
        carry sizes without materializing bodies), else actual body length.
        """
        if not self.body:
            declared = self.headers.get("Content-Length")
            if declared.isdigit():
                return int(declared)
        return len(self.body)

    @property
    def is_redirect(self) -> bool:
        """True for 30x responses carrying a ``Location`` header."""
        return 300 <= self.status < 400 and bool(self.location)


@dataclass
class HttpTransaction:
    """A request/response pair — the unit the detector consumes.

    Attributes:
        request: the client request.
        response: the matching server response (``None`` when the server
            never answered, e.g. a timed-out C&C probe).
        payload_type: classified payload type of the response body.
    """

    request: HttpRequest
    response: HttpResponse | None = None
    _payload_type: PayloadType | None = field(default=None, repr=False)

    @property
    def payload_type(self) -> PayloadType:
        """Classified payload type for this transaction's response."""
        if self._payload_type is None:
            if self.response is None:
                self._payload_type = PayloadType.EMPTY
            else:
                self._payload_type = classify(
                    uri=self.request.uri,
                    content_type=self.response.content_type,
                    body=self.response.body,
                )
        return self._payload_type

    @payload_type.setter
    def payload_type(self, value: PayloadType) -> None:
        self._payload_type = value

    @property
    def timestamp(self) -> float:
        """Request timestamp — the transaction's position on the timeline."""
        return self.request.timestamp

    @property
    def duration(self) -> float:
        """Seconds between request and response (0 when unanswered)."""
        if self.response is None:
            return 0.0
        return max(0.0, self.response.timestamp - self.request.timestamp)

    @property
    def server(self) -> str:
        """The contacted server host name."""
        return self.request.host

    @property
    def client(self) -> str:
        """The requesting client host name."""
        return self.request.client

    @property
    def status(self) -> int:
        """Response status code, or 0 when unanswered."""
        return self.response.status if self.response is not None else 0

    @property
    def payload_size(self) -> int:
        """Response payload size in bytes, or 0 when unanswered."""
        return self.response.body_size if self.response is not None else 0


class TraceLabel(enum.Enum):
    """Ground-truth label attached to a trace."""

    BENIGN = "benign"
    INFECTION = "infection"


@dataclass
class Trace:
    """An ordered HTTP transaction capture — our analogue of one PCAP.

    Attributes:
        transactions: transactions ordered by request timestamp.
        label: ground-truth label, if known.
        family: exploit-kit family name for infections (``""`` otherwise).
        origin: the enticement origin (referrer of the first transaction,
            e.g. ``"google.com"``), or ``""`` when unknown/concealed.
        meta: free-form provenance metadata (scenario name, seed, ...).
    """

    transactions: list[HttpTransaction]
    label: TraceLabel | None = None
    family: str = ""
    origin: str = ""
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.transactions = sorted(self.transactions, key=lambda t: t.timestamp)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    @property
    def hosts(self) -> set[str]:
        """All distinct hosts (clients and servers) in the trace."""
        names: set[str] = set()
        for txn in self.transactions:
            names.add(txn.client)
            names.add(txn.server)
        return names

    @property
    def duration(self) -> float:
        """Wall-clock span of the trace in seconds."""
        if not self.transactions:
            return 0.0
        first = self.transactions[0].timestamp
        last = max(
            (
                txn.response.timestamp if txn.response else txn.timestamp
                for txn in self.transactions
            ),
            default=first,
        )
        return max(0.0, last - first)

    @property
    def is_infection(self) -> bool:
        """True when the trace is labelled as an infection."""
        return self.label is TraceLabel.INFECTION
