"""Conversation-stage assignment (Section III-C, edge-level annotation).

Each request/response pair in a WCG belongs to one of three stages:

* **PRE_DOWNLOAD (0)** — the redirection run-up.  Per the paper: a GET
  request, no known exploit payload downloaded to the victim prior to it,
  and a 30x response code.  The *last* 30x marks the end of this stage.
* **DOWNLOAD (1)** — everything between the redirection run-up and the
  last 20x response whose content is a known exploit payload type.
* **POST_DOWNLOAD (2)** — POST requests to nodes from which no known
  exploit payload was downloaded, answered with 200 or 40x, after the
  download stage completed.
"""

from __future__ import annotations

import enum

from repro.core.model import HttpMethod, HttpTransaction
from repro.core.payloads import is_exploit_type

__all__ = ["Stage", "assign_stages"]


class Stage(enum.IntEnum):
    """Conversation stage of an edge (values match the paper's 0/1/2)."""

    PRE_DOWNLOAD = 0
    DOWNLOAD = 1
    POST_DOWNLOAD = 2


def assign_stages(transactions: list[HttpTransaction]) -> list[Stage]:
    """Assign a :class:`Stage` to each transaction, in input order.

    Implements the rules quoted in the module docstring.  The algorithm
    runs three sweeps over the timestamp-ordered stream:

    1. find the boundary timestamps — the last qualifying 30x response
       (end of pre-download) and the last exploit-payload 20x response
       (end of download);
    2. mark pre-download pairs (GET + 30x before any exploit download);
    3. mark post-download pairs (POST to a non-payload-serving host with
       a 200/40x answer, after the download boundary); everything else is
       the download stage.
    """
    if not transactions:
        return []
    order = sorted(range(len(transactions)), key=lambda i: transactions[i].timestamp)

    # Hosts that served a known exploit payload, with first-serve time.
    first_exploit_ts: float | None = None
    last_exploit_ts: float | None = None
    exploit_hosts: set[str] = set()
    for index in order:
        txn = transactions[index]
        if txn.response is None:
            continue
        if 200 <= txn.status < 300 and is_exploit_type(txn.payload_type):
            exploit_hosts.add(txn.server)
            if first_exploit_ts is None:
                first_exploit_ts = txn.response.timestamp
            last_exploit_ts = txn.response.timestamp

    # End of the pre-download stage: the last qualifying 30x that precedes
    # the first exploit download (or the last 30x at all when no exploit
    # payload was ever delivered).
    last_30x_ts: float | None = None
    for index in order:
        txn = transactions[index]
        if txn.request.method is not HttpMethod.GET:
            continue
        if not 300 <= txn.status < 400:
            continue
        if first_exploit_ts is not None and txn.timestamp >= first_exploit_ts:
            continue
        last_30x_ts = txn.response.timestamp if txn.response else txn.timestamp

    stages: list[Stage] = [Stage.DOWNLOAD] * len(transactions)
    for index in order:
        txn = transactions[index]
        is_post_method = txn.request.method is HttpMethod.POST
        response_ts = txn.response.timestamp if txn.response else txn.timestamp

        # Pre-download: GET + 30x, before any exploit payload landed.
        if (
            txn.request.method is HttpMethod.GET
            and 300 <= txn.status < 400
            and (first_exploit_ts is None or txn.timestamp < first_exploit_ts)
        ):
            stages[index] = Stage.PRE_DOWNLOAD
            continue

        # Also pre-download: plain 20x page fetches that happen while the
        # redirection run-up is still in progress (timestamp before the
        # last qualifying 30x) — these are the landing-page hops.
        if (
            last_30x_ts is not None
            and response_ts <= last_30x_ts
            and not is_post_method
        ):
            stages[index] = Stage.PRE_DOWNLOAD
            continue

        # Post-download: POST to a host that served no exploit payload,
        # answered 200 or 40x, after the download stage completed.  A
        # post-download stage presupposes a download: streams that never
        # delivered an exploit payload have no post-download edges.
        if (
            is_post_method
            and txn.server not in exploit_hosts
            and (txn.status == 200 or 400 <= txn.status < 500 or txn.status == 0)
            and last_exploit_ts is not None
            and txn.timestamp >= last_exploit_ts
        ):
            stages[index] = Stage.POST_DOWNLOAD
            continue

        stages[index] = Stage.DOWNLOAD
    return stages
