"""Conversation-stage assignment (Section III-C, edge-level annotation).

Each request/response pair in a WCG belongs to one of three stages:

* **PRE_DOWNLOAD (0)** — the redirection run-up.  Per the paper: a GET
  request, no known exploit payload downloaded to the victim prior to it,
  and a 30x response code.  The *last* 30x marks the end of this stage.
* **DOWNLOAD (1)** — everything between the redirection run-up and the
  last 20x response whose content is a known exploit payload type.
* **POST_DOWNLOAD (2)** — POST requests to nodes from which no known
  exploit payload was downloaded, answered with 200 or 40x, after the
  download stage completed.

The assignment is *resumable*: :class:`StageAssigner` ingests one
transaction at a time and reports exactly which already-assigned stages
a new arrival invalidated.  The stage of a transaction is a pure
function of the transaction itself plus four running boundary values —
the first/last exploit-payload response timestamps, the last qualifying
30x response timestamp, and the set of exploit-serving hosts — so when
a new transaction moves a boundary, only the transactions whose
qualifying predicate straddles the old and new boundary values need
re-labelling.  Those candidates are found with :mod:`bisect` over small
per-rule sorted indexes, keeping the per-add cost O(log n + relabels)
instead of the three full sweeps the batch algorithm runs.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass

from repro.core.model import HttpMethod, HttpTransaction
from repro.core.payloads import is_exploit_type

__all__ = ["Stage", "StageAssigner", "assign_stages"]

#: Sentinel seq bounds so ``(ts, seq)`` window bisects are inclusive.
_SEQ_LO = -1
_SEQ_HI = 2**62


class Stage(enum.IntEnum):
    """Conversation stage of an edge (values match the paper's 0/1/2)."""

    PRE_DOWNLOAD = 0
    DOWNLOAD = 1
    POST_DOWNLOAD = 2


@dataclass(frozen=True)
class _TxnFacts:
    """The per-transaction inputs of the stage rules (immutable)."""

    ts: float
    resp_ts: float
    method: HttpMethod
    status: int
    server: str
    is_exploit: bool


def _facts_of(txn: HttpTransaction) -> _TxnFacts:
    response = txn.response
    return _TxnFacts(
        ts=txn.timestamp,
        resp_ts=response.timestamp if response is not None else txn.timestamp,
        method=txn.request.method,
        status=txn.status,
        server=txn.server,
        is_exploit=(
            response is not None
            and 200 <= txn.status < 300
            and is_exploit_type(txn.payload_type)
        ),
    )


class StageAssigner:
    """Incremental stage assignment over a growing transaction stream.

    Transactions are identified by their feed order (``seq``); the
    logical conversation order is ``(timestamp, seq)``, matching the
    stable timestamp sort of the batch algorithm, so out-of-order
    arrivals are handled exactly.  :meth:`add` returns every
    ``(seq, stage)`` whose assignment changed — always including the new
    transaction's own — which the WCG builder uses to re-label the
    affected edges in place.
    """

    def __init__(self) -> None:
        self._facts: list[_TxnFacts] = []
        self._stages: list[Stage] = []
        # Exploit 20x responses in (ts, seq) order; values are response
        # timestamps.  first/last element give the two exploit boundaries.
        self._exploit_keys: list[tuple[float, int]] = []
        self._exploit_resp: list[float] = []
        self._exploit_hosts: set[str] = set()
        # GET+30x transactions (rule-1 / last-30x candidates).
        self._r30_keys: list[tuple[float, int]] = []
        self._r30_resp: list[float] = []
        # POSTs whose status shape can ever qualify for POST_DOWNLOAD.
        self._post_keys: list[tuple[float, int]] = []
        self._posts_by_host: dict[str, list[int]] = {}
        # Non-POST transactions keyed by response timestamp (rule-2).
        self._resp_keys: list[tuple[float, int]] = []

    # -- boundary views -----------------------------------------------------

    @property
    def transaction_count(self) -> int:
        """Number of transactions ingested so far."""
        return len(self._facts)

    def current_stage(self, seq: int) -> Stage:
        """The stage currently assigned to transaction ``seq``."""
        return self._stages[seq]

    def stages(self) -> list[Stage]:
        """All current stages, in feed (``seq``) order."""
        return list(self._stages)

    def _first_exploit_ts(self) -> float | None:
        return self._exploit_resp[0] if self._exploit_resp else None

    def _last_exploit_ts(self) -> float | None:
        return self._exploit_resp[-1] if self._exploit_resp else None

    def _last_30x_ts(self) -> float | None:
        """Last qualifying 30x: the newest GET+30x preceding the first
        exploit download (all of them when no exploit landed yet)."""
        first_exploit = self._first_exploit_ts()
        if first_exploit is None:
            cut = len(self._r30_keys)
        else:
            cut = bisect_left(self._r30_keys, (first_exploit, _SEQ_LO))
        return self._r30_resp[cut - 1] if cut else None

    # -- the pure stage rule ------------------------------------------------

    def _stage_of(self, facts: _TxnFacts) -> Stage:
        first_exploit = self._first_exploit_ts()
        is_post = facts.method is HttpMethod.POST

        # Pre-download: GET + 30x, before any exploit payload landed.
        if (
            facts.method is HttpMethod.GET
            and 300 <= facts.status < 400
            and (first_exploit is None or facts.ts < first_exploit)
        ):
            return Stage.PRE_DOWNLOAD

        # Also pre-download: plain 20x page fetches that happen while the
        # redirection run-up is still in progress (response before the
        # last qualifying 30x) — these are the landing-page hops.
        last_30x = self._last_30x_ts()
        if last_30x is not None and facts.resp_ts <= last_30x and not is_post:
            return Stage.PRE_DOWNLOAD

        # Post-download: POST to a host that served no exploit payload,
        # answered 200 or 40x, after the download stage completed.  A
        # post-download stage presupposes a download: streams that never
        # delivered an exploit payload have no post-download edges.
        last_exploit = self._last_exploit_ts()
        if (
            is_post
            and facts.server not in self._exploit_hosts
            and (facts.status == 200 or 400 <= facts.status < 500
                 or facts.status == 0)
            and last_exploit is not None
            and facts.ts >= last_exploit
        ):
            return Stage.POST_DOWNLOAD

        return Stage.DOWNLOAD

    # -- incremental feed ---------------------------------------------------

    @staticmethod
    def _window(keys: list[tuple[float, int]], lo: float | None,
                hi: float | None) -> list[int]:
        """Seqs of entries with key value in ``[lo, hi]`` (None = open)."""
        start = 0 if lo is None else bisect_left(keys, (lo, _SEQ_LO))
        stop = len(keys) if hi is None else bisect_right(keys, (hi, _SEQ_HI))
        return [seq for _, seq in keys[start:stop]]

    def add(self, txn: HttpTransaction) -> list[tuple[int, Stage]]:
        """Ingest one transaction; returns every changed ``(seq, stage)``.

        The returned list always contains the new transaction's own
        assignment; earlier transactions appear only when a moved
        boundary actually changed their stage.
        """
        seq = len(self._facts)
        facts = _facts_of(txn)

        old_first = self._first_exploit_ts()
        old_last = self._last_exploit_ts()
        old_30x = self._last_30x_ts()

        key = (facts.ts, seq)
        if facts.is_exploit:
            at = bisect_right(self._exploit_keys, key)
            self._exploit_keys.insert(at, key)
            self._exploit_resp.insert(at, facts.resp_ts)
        if facts.method is HttpMethod.GET and 300 <= facts.status < 400:
            at = bisect_right(self._r30_keys, key)
            self._r30_keys.insert(at, key)
            self._r30_resp.insert(at, facts.resp_ts)
        if facts.method is HttpMethod.POST:
            if (facts.status == 200 or 400 <= facts.status < 500
                    or facts.status == 0):
                insort(self._post_keys, key)
                self._posts_by_host.setdefault(facts.server, []).append(seq)
        else:
            insort(self._resp_keys, (facts.resp_ts, seq))

        affected: set[int] = set()
        new_first = self._first_exploit_ts()
        if new_first != old_first:
            # Rule 1 flips only for GET+30x with ts between the old and
            # new first-exploit boundary (None behaves as +infinity).
            if old_first is None or new_first is None:
                lo, hi = (new_first if old_first is None else old_first), None
            else:
                lo, hi = min(old_first, new_first), max(old_first, new_first)
            affected.update(self._window(self._r30_keys, lo, hi))
        new_30x = self._last_30x_ts()
        if new_30x != old_30x:
            # Rule 2 flips only for non-POSTs whose response timestamp
            # lies between the boundaries (None behaves as -infinity).
            if old_30x is None or new_30x is None:
                lo, hi = None, (new_30x if old_30x is None else old_30x)
            else:
                lo, hi = min(old_30x, new_30x), max(old_30x, new_30x)
            affected.update(self._window(self._resp_keys, lo, hi))
        new_last = self._last_exploit_ts()
        if new_last != old_last:
            # Rule 3 flips only for candidate POSTs between the moved
            # last-exploit boundary values (None behaves as +infinity).
            if old_last is None or new_last is None:
                lo, hi = (new_last if old_last is None else old_last), None
            else:
                lo, hi = min(old_last, new_last), max(old_last, new_last)
            affected.update(self._window(self._post_keys, lo, hi))
        if facts.is_exploit and facts.server not in self._exploit_hosts:
            self._exploit_hosts.add(facts.server)
            affected.update(self._posts_by_host.get(facts.server, ()))

        self._facts.append(facts)
        self._stages.append(Stage.DOWNLOAD)
        affected.discard(seq)

        changes: list[tuple[int, Stage]] = []
        for other in sorted(affected):
            stage = self._stage_of(self._facts[other])
            if stage is not self._stages[other]:
                self._stages[other] = stage
                changes.append((other, stage))
        own = self._stage_of(facts)
        self._stages[seq] = own
        changes.append((seq, own))
        return changes


def assign_stages(transactions: list[HttpTransaction]) -> list[Stage]:
    """Assign a :class:`Stage` to each transaction, in input order.

    Feed-once wrapper over :class:`StageAssigner` — the batch and the
    streaming path share one implementation so they cannot drift.
    Transactions are fed in stable timestamp order, mirroring the sort
    the original three-sweep batch algorithm performed.
    """
    if not transactions:
        return []
    order = sorted(range(len(transactions)),
                   key=lambda i: transactions[i].timestamp)
    assigner = StageAssigner()
    for index in order:
        assigner.add(transactions[index])
    stages: list[Stage] = [Stage.DOWNLOAD] * len(transactions)
    for position, index in enumerate(order):
        stages[index] = assigner.current_stage(position)
    return stages
