"""Payload taxonomy used throughout the WCG analytics.

The paper (Section III-C, "Payload summary") distinguishes *known exploit
payload types* (``.jar``, ``.exe``, ``.pdf``, ``.xap``, ``.swf``),
*commonly exchanged payloads* (images, HTML, JavaScript, archives, text)
and *ransomware payloads*, which "come with variable file extensions"; the
authors match against 45 distinct crypto-locker extensions compiled from
industry reports [10].  This module encodes that taxonomy and the helpers
the rest of the library uses to classify a payload from its URI, declared
content type, or magic bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from urllib.parse import urlsplit

__all__ = [
    "PayloadClass",
    "PayloadType",
    "EXPLOIT_EXTENSIONS",
    "RANSOMWARE_EXTENSIONS",
    "COMMON_EXTENSIONS",
    "classify_extension",
    "classify_uri",
    "classify_content_type",
    "classify",
    "is_exploit_type",
    "is_downloadable",
    "PayloadSummary",
]


class PayloadClass(enum.Enum):
    """Coarse class of a payload, per the paper's node-level summary."""

    EXPLOIT = "exploit"
    RANSOMWARE = "ransomware"
    COMMON = "common"
    UNKNOWN = "unknown"


class PayloadType(enum.Enum):
    """Concrete payload type attached to response edges in a WCG."""

    # Known exploit payload types (Section III-C).
    JAR = "jar"
    EXE = "exe"
    PDF = "pdf"
    XAP = "xap"  # Silverlight
    SWF = "swf"  # Flash
    DMG = "dmg"  # macOS executable image (live case study, Section VI-D)
    # Ransomware / crypto-locker payloads (45 extensions collapse here).
    CRYPT = "crypt"
    # Commonly exchanged payloads.
    HTML = "html"
    JAVASCRIPT = "js"
    CSS = "css"
    IMAGE = "image"
    ARCHIVE = "archive"
    TEXT = "text"
    JSON = "json"
    XML = "xml"
    FONT = "font"
    VIDEO = "video"
    AUDIO = "audio"
    OCTET = "octet"
    EMPTY = "empty"

    @property
    def payload_class(self) -> PayloadClass:
        """Return the coarse :class:`PayloadClass` for this type."""
        if self in _EXPLOIT_TYPES:
            return PayloadClass.EXPLOIT
        if self is PayloadType.CRYPT:
            return PayloadClass.RANSOMWARE
        if self in (PayloadType.OCTET, PayloadType.EMPTY):
            return PayloadClass.UNKNOWN
        return PayloadClass.COMMON


_EXPLOIT_TYPES = frozenset(
    {
        PayloadType.JAR,
        PayloadType.EXE,
        PayloadType.PDF,
        PayloadType.XAP,
        PayloadType.SWF,
        PayloadType.DMG,
    }
)

#: Known exploit payload file extensions (Section III-C).
EXPLOIT_EXTENSIONS: dict[str, PayloadType] = {
    "jar": PayloadType.JAR,
    "exe": PayloadType.EXE,
    "msi": PayloadType.EXE,
    "scr": PayloadType.EXE,
    "pdf": PayloadType.PDF,
    "xap": PayloadType.XAP,
    "swf": PayloadType.SWF,
    "dmg": PayloadType.DMG,
}

#: The 45 crypto-locker extensions the paper compiled from industry
#: reports on ransomware [10].  All map to ``PayloadType.CRYPT``.
RANSOMWARE_EXTENSIONS: frozenset[str] = frozenset(
    {
        "crypt", "cryp1", "crypz", "crypto", "encrypted", "enc", "locked",
        "locky", "zepto", "odin", "thor", "aesir", "zzzzz", "osiris",
        "cerber", "cerber2", "cerber3", "crjoker", "crinf", "ecc", "ezz",
        "exx", "r5a", "rdm", "rrk", "xrnt", "xtbl", "vault", "cbf",
        "keybtc@inbox_com", "lechiffre", "magic", "ctbl", "ctb2", "kraken",
        "darkness", "nochance", "oshit", "kb15", "fun", "gws", "btc",
        "aaa", "abc", "ccc",
    }
)

#: Commonly exchanged payload extensions.
COMMON_EXTENSIONS: dict[str, PayloadType] = {
    "html": PayloadType.HTML,
    "htm": PayloadType.HTML,
    "php": PayloadType.HTML,
    "asp": PayloadType.HTML,
    "aspx": PayloadType.HTML,
    "jsp": PayloadType.HTML,
    "js": PayloadType.JAVASCRIPT,
    "css": PayloadType.CSS,
    "png": PayloadType.IMAGE,
    "jpg": PayloadType.IMAGE,
    "jpeg": PayloadType.IMAGE,
    "gif": PayloadType.IMAGE,
    "ico": PayloadType.IMAGE,
    "svg": PayloadType.IMAGE,
    "webp": PayloadType.IMAGE,
    "zip": PayloadType.ARCHIVE,
    "gz": PayloadType.ARCHIVE,
    "rar": PayloadType.ARCHIVE,
    "7z": PayloadType.ARCHIVE,
    "tar": PayloadType.ARCHIVE,
    "txt": PayloadType.TEXT,
    "csv": PayloadType.TEXT,
    "json": PayloadType.JSON,
    "xml": PayloadType.XML,
    "woff": PayloadType.FONT,
    "woff2": PayloadType.FONT,
    "ttf": PayloadType.FONT,
    "mp4": PayloadType.VIDEO,
    "webm": PayloadType.VIDEO,
    "flv": PayloadType.VIDEO,
    "ts": PayloadType.VIDEO,
    "m3u8": PayloadType.VIDEO,
    "mp3": PayloadType.AUDIO,
    "doc": PayloadType.OCTET,
    "docx": PayloadType.OCTET,
    "xls": PayloadType.OCTET,
    "xlsx": PayloadType.OCTET,
    "bin": PayloadType.OCTET,
}

#: Content-Type prefixes mapped to payload types, used when a URI carries
#: no informative extension.
_CONTENT_TYPE_MAP: tuple[tuple[str, PayloadType], ...] = (
    ("application/java-archive", PayloadType.JAR),
    ("application/x-java-archive", PayloadType.JAR),
    ("application/x-msdownload", PayloadType.EXE),
    ("application/x-msdos-program", PayloadType.EXE),
    ("application/exe", PayloadType.EXE),
    ("application/pdf", PayloadType.PDF),
    ("application/x-silverlight-app", PayloadType.XAP),
    ("application/x-shockwave-flash", PayloadType.SWF),
    ("application/x-apple-diskimage", PayloadType.DMG),
    ("text/html", PayloadType.HTML),
    ("application/xhtml", PayloadType.HTML),
    ("text/javascript", PayloadType.JAVASCRIPT),
    ("application/javascript", PayloadType.JAVASCRIPT),
    ("application/x-javascript", PayloadType.JAVASCRIPT),
    ("text/css", PayloadType.CSS),
    ("image/", PayloadType.IMAGE),
    ("application/zip", PayloadType.ARCHIVE),
    ("application/x-gzip", PayloadType.ARCHIVE),
    ("application/x-rar", PayloadType.ARCHIVE),
    ("application/json", PayloadType.JSON),
    ("text/xml", PayloadType.XML),
    ("application/xml", PayloadType.XML),
    ("text/plain", PayloadType.TEXT),
    ("font/", PayloadType.FONT),
    ("video/", PayloadType.VIDEO),
    ("audio/", PayloadType.AUDIO),
    ("application/octet-stream", PayloadType.OCTET),
)

#: Magic byte prefixes for the payload sniffing fallback.
_MAGIC_BYTES: tuple[tuple[bytes, PayloadType], ...] = (
    (b"MZ", PayloadType.EXE),
    (b"%PDF", PayloadType.PDF),
    (b"CWS", PayloadType.SWF),
    (b"FWS", PayloadType.SWF),
    (b"ZWS", PayloadType.SWF),
    (b"PK\x03\x04", PayloadType.ARCHIVE),  # may be JAR/XAP, see classify()
    (b"\x89PNG", PayloadType.IMAGE),
    (b"\xff\xd8\xff", PayloadType.IMAGE),
    (b"GIF8", PayloadType.IMAGE),
    (b"<!DOCTYPE", PayloadType.HTML),
    (b"<html", PayloadType.HTML),
)


def _extension_of(uri: str) -> str:
    """Return the lower-cased final extension of a URI path, or ``""``."""
    path = urlsplit(uri).path
    name = path.rsplit("/", 1)[-1]
    if "." not in name:
        return ""
    return name.rsplit(".", 1)[-1].lower()


def classify_extension(extension: str) -> PayloadType | None:
    """Classify a bare file extension; ``None`` when unrecognized."""
    ext = extension.lower().lstrip(".")
    if ext in EXPLOIT_EXTENSIONS:
        return EXPLOIT_EXTENSIONS[ext]
    if ext in RANSOMWARE_EXTENSIONS:
        return PayloadType.CRYPT
    return COMMON_EXTENSIONS.get(ext)


def classify_uri(uri: str) -> PayloadType | None:
    """Classify a payload from the extension in its URI, if any."""
    ext = _extension_of(uri)
    if not ext:
        return None
    return classify_extension(ext)


def classify_content_type(content_type: str) -> PayloadType | None:
    """Classify a payload from its declared ``Content-Type`` header."""
    value = content_type.split(";", 1)[0].strip().lower()
    if not value:
        return None
    for prefix, ptype in _CONTENT_TYPE_MAP:
        if value.startswith(prefix):
            return ptype
    return None


def classify_magic(body: bytes) -> PayloadType | None:
    """Classify a payload by sniffing its leading magic bytes."""
    for magic, ptype in _MAGIC_BYTES:
        if body.startswith(magic):
            return ptype
    return None


def classify(
    uri: str = "",
    content_type: str = "",
    body: bytes = b"",
) -> PayloadType:
    """Best-effort payload classification combining all evidence.

    Precedence follows the paper's heuristics: an explicit exploit or
    ransomware extension in the URI dominates (exploit kits frequently
    mislabel ``Content-Type``); the declared content type comes next;
    magic-byte sniffing is the last resort.  An unclassifiable payload is
    :attr:`PayloadType.OCTET` when a body is present, else
    :attr:`PayloadType.EMPTY`.
    """
    by_uri = classify_uri(uri) if uri else None
    if by_uri is not None and by_uri.payload_class in (
        PayloadClass.EXPLOIT,
        PayloadClass.RANSOMWARE,
    ):
        return by_uri
    by_ct = classify_content_type(content_type) if content_type else None
    if by_ct is not None and by_ct is not PayloadType.OCTET:
        # A zip-like content type with a .jar/.xap URI is the archive
        # container of an exploit; prefer the URI's verdict.
        if by_ct is PayloadType.ARCHIVE and by_uri in (
            PayloadType.JAR,
            PayloadType.XAP,
        ):
            return by_uri
        return by_ct
    if by_uri is not None:
        return by_uri
    if body:
        by_magic = classify_magic(body)
        if by_magic is not None:
            return by_magic
        return PayloadType.OCTET
    if by_ct is PayloadType.OCTET:
        return PayloadType.OCTET
    return PayloadType.EMPTY


def is_exploit_type(ptype: PayloadType) -> bool:
    """True when ``ptype`` is a known exploit or ransomware payload type."""
    return ptype.payload_class in (PayloadClass.EXPLOIT, PayloadClass.RANSOMWARE)


def is_downloadable(ptype: PayloadType) -> bool:
    """True when ``ptype`` represents a file download rather than page
    furniture (HTML/CSS/JS/images/fonts are furniture)."""
    return ptype in (
        PayloadType.JAR,
        PayloadType.EXE,
        PayloadType.PDF,
        PayloadType.XAP,
        PayloadType.SWF,
        PayloadType.DMG,
        PayloadType.CRYPT,
        PayloadType.ARCHIVE,
        PayloadType.OCTET,
    )


@dataclass
class PayloadSummary:
    """Per-node payload count summary (Section III-C, node-level).

    Attributes map payload type value → count of payloads of that type
    that originate from or are received by the node.
    """

    counts: dict[str, int]

    def __init__(self) -> None:
        self.counts = {}

    def add(self, ptype: PayloadType) -> None:
        """Record one payload of type ``ptype``."""
        self.counts[ptype.value] = self.counts.get(ptype.value, 0) + 1

    def count(self, ptype: PayloadType) -> int:
        """Count of payloads recorded for ``ptype``."""
        return self.counts.get(ptype.value, 0)

    @property
    def total(self) -> int:
        """Total payloads recorded across all types."""
        return sum(self.counts.values())

    @property
    def exploit_total(self) -> int:
        """Total exploit + ransomware payloads recorded."""
        return sum(
            count
            for value, count in self.counts.items()
            if is_exploit_type(PayloadType(value))
        )
