"""Dataset container and train/test utilities for WCG classification."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LearningError

__all__ = ["LabeledDataset", "dataset_from_graphs", "train_test_split"]


@dataclass
class LabeledDataset:
    """A design matrix with labels and feature names."""

    X: np.ndarray
    y: np.ndarray
    feature_names: list[str]

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y)
        if len(self.X) != len(self.y):
            raise LearningError("X and y length mismatch")
        if self.X.ndim != 2 or self.X.shape[1] != len(self.feature_names):
            raise LearningError(
                "X column count must match feature_names length"
            )

    def __len__(self) -> int:
        return len(self.y)

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return self.X.shape[1]

    @property
    def positives(self) -> int:
        """Count of infection (label 1) samples."""
        return int(np.sum(self.y == 1))

    @property
    def negatives(self) -> int:
        """Count of benign (label 0) samples."""
        return int(np.sum(self.y == 0))

    def select(self, indices: list[int]) -> "LabeledDataset":
        """Column-subset view (for feature-group ablations)."""
        return LabeledDataset(
            X=self.X[:, indices],
            y=self.y,
            feature_names=[self.feature_names[i] for i in indices],
        )

    def subset(self, rows: np.ndarray) -> "LabeledDataset":
        """Row-subset view."""
        return LabeledDataset(
            X=self.X[rows], y=self.y[rows], feature_names=self.feature_names
        )


def dataset_from_graphs(
    graphs: list, labels: list[float] | np.ndarray
) -> LabeledDataset:
    """A :class:`LabeledDataset` from pre-built WCGs, one matrix pass.

    Rides :func:`repro.features.extractor.extract_matrix_batch`, so the
    whole design matrix is assembled vectorized (with topology shared
    across repeated conversation shapes) instead of graph-by-graph —
    rows are byte-identical to per-graph extraction.
    """
    from repro.features.extractor import extract_matrix_batch
    from repro.features.registry import feature_names

    labels = np.asarray(labels)
    if len(graphs) != len(labels):
        raise LearningError("graphs and labels length mismatch")
    return LabeledDataset(
        X=extract_matrix_batch(list(graphs)),
        y=labels,
        feature_names=feature_names(),
    )


def train_test_split(
    dataset: LabeledDataset,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[LabeledDataset, LabeledDataset]:
    """Stratified random split into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise LearningError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_rows: list[int] = []
    for cls in np.unique(dataset.y):
        indices = np.where(dataset.y == cls)[0]
        rng.shuffle(indices)
        # Cap the take so the train partition keeps at least one sample
        # of every class — a 1–2 sample class must not vanish from it.
        take = min(
            max(1, int(round(len(indices) * test_fraction))),
            len(indices) - 1,
        )
        test_rows.extend(int(i) for i in indices[:take])
    test_mask = np.zeros(len(dataset), dtype=bool)
    test_mask[test_rows] = True
    return dataset.subset(~test_mask), dataset.subset(test_mask)
