"""Entropy/MDL discretization (Fayyad & Irani, 1993).

The paper ranks features with the *gain ratio* metric, which it most
likely computed in Weka — whose attribute evaluators discretize numeric
attributes with the Fayyad-Irani MDL method before computing information
measures.  ``repro.learning.ranking`` uses a single best binary split;
this module provides the full recursive MDL discretization as the
higher-fidelity alternative (``rank_features(criterion="mdl")``).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mdl_cut_points", "discretize", "mdl_gain_ratio"]


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    fractions = counts[counts > 0] / total
    return float(-np.sum(fractions * np.log2(fractions)))


def _class_counts(y: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(y, minlength=n_classes).astype(float)


def _best_cut(sorted_col: np.ndarray, sorted_y: np.ndarray,
              n_classes: int) -> tuple[int, float] | None:
    """Best boundary index by information gain; None if no valid cut."""
    n = len(sorted_y)
    boundaries = np.nonzero(np.diff(sorted_col) > 0)[0]
    if boundaries.size == 0:
        return None
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), sorted_y] = 1.0
    cum = np.cumsum(onehot, axis=0)
    totals = cum[-1]
    left = cum[boundaries]
    right = totals - left
    left_sizes = (boundaries + 1).astype(float)
    right_sizes = n - left_sizes

    def _ent(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        fractions = counts / sizes[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(fractions > 0,
                             fractions * np.log2(fractions), 0.0)
        return -terms.sum(axis=1)

    weighted = (left_sizes * _ent(left, left_sizes)
                + right_sizes * _ent(right, right_sizes)) / n
    best = int(np.argmin(weighted))
    parent = _entropy(totals)
    gain = parent - float(weighted[best])
    if gain <= 0:
        return None
    return int(boundaries[best]), gain


def _mdl_accepts(sorted_y: np.ndarray, cut: int, gain: float,
                 n_classes: int) -> bool:
    """Fayyad-Irani MDL stopping criterion."""
    n = len(sorted_y)
    left, right = sorted_y[:cut + 1], sorted_y[cut + 1:]
    k = len(np.unique(sorted_y))
    k1 = len(np.unique(left))
    k2 = len(np.unique(right))
    ent = _entropy(_class_counts(sorted_y, n_classes))
    ent1 = _entropy(_class_counts(left, n_classes))
    ent2 = _entropy(_class_counts(right, n_classes))
    delta = math.log2(3**k - 2) - (k * ent - k1 * ent1 - k2 * ent2)
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


def mdl_cut_points(column: np.ndarray, y: np.ndarray) -> list[float]:
    """Recursive-partition MDL discretization; sorted cut thresholds.

    The partition runs on an explicit work stack rather than Python
    recursion (popping left-segment first keeps the original preorder
    cut sequence), so adversarial columns accepting thousands of nested
    cuts cannot hit the interpreter recursion limit — consistent with
    the tree growers, which are iterative for the same reason.
    """
    column = np.asarray(column, dtype=np.float64)
    y = np.asarray(y)
    classes, encoded = np.unique(y, return_inverse=True)
    n_classes = len(classes)
    order = np.argsort(column, kind="stable")
    sorted_col = column[order]
    sorted_y = encoded[order]
    cuts: list[float] = []

    stack: list[tuple[int, int]] = [(0, len(sorted_y))]
    while stack:
        lo, hi = stack.pop()
        segment_col = sorted_col[lo:hi]
        segment_y = sorted_y[lo:hi]
        if len(segment_y) < 4 or len(np.unique(segment_y)) < 2:
            continue
        found = _best_cut(segment_col, segment_y, n_classes)
        if found is None:
            continue
        cut, gain = found
        if not _mdl_accepts(segment_y, cut, gain, n_classes):
            continue
        threshold = (segment_col[cut] + segment_col[cut + 1]) / 2.0
        cuts.append(float(threshold))
        stack.append((lo + cut + 1, hi))
        stack.append((lo, lo + cut + 1))
    return sorted(cuts)


def discretize(column: np.ndarray, cuts: list[float]) -> np.ndarray:
    """Map a numeric column to bin indices given cut thresholds."""
    return np.searchsorted(np.asarray(cuts), np.asarray(column),
                           side="right")


def mdl_gain_ratio(column: np.ndarray, y: np.ndarray) -> float:
    """Gain ratio of the MDL-discretized column (Weka-style).

    Returns 0 for columns the MDL criterion refuses to cut at all —
    Weka's convention for "no information".
    """
    column = np.asarray(column, dtype=np.float64)
    y = np.asarray(y)
    if len(y) == 0:
        return 0.0
    cuts = mdl_cut_points(column, y)
    if not cuts:
        return 0.0
    bins = discretize(column, cuts)
    classes, encoded = np.unique(y, return_inverse=True)
    n_classes = len(classes)
    parent = _entropy(_class_counts(encoded, n_classes))
    n = len(y)
    weighted = 0.0
    split_info = 0.0
    for value in np.unique(bins):
        mask = bins == value
        weight = mask.sum() / n
        weighted += weight * _entropy(_class_counts(encoded[mask],
                                                    n_classes))
        split_info -= weight * math.log2(weight)
    gain = parent - weighted
    if split_info <= 0:
        return 0.0
    return max(0.0, gain / split_info)
