"""Learning substrate: CART trees, ERF, metrics, CV, gain-ratio ranking.

Implemented from scratch (scikit-learn is unavailable offline) with the
paper's exact configuration as defaults: 20 trees, ``log2(F)+1`` features
per split, probability-averaging vote (Section V-A).
"""

from repro.learning.compiled import CompiledForest, compile_forest
from repro.learning.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.learning.dataset import LabeledDataset, train_test_split
from repro.learning.forest import (
    EnsembleRandomForest,
    default_engine,
    default_max_features,
)
from repro.learning.metrics import (
    ConfusionMatrix,
    auc,
    confusion,
    evaluate_scores,
    roc_auc,
    roc_curve,
)
from repro.learning.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_forest,
    save_forest,
)
from repro.learning.grower import (
    ColumnRanks,
    compute_column_ranks,
    grow_tree_presorted,
)
from repro.learning.ranking import RankedFeature, gain_ratio, rank_features
from repro.learning.tree import DecisionTreeClassifier, default_tree_engine

__all__ = [
    "ColumnRanks",
    "CompiledForest",
    "ConfusionMatrix",
    "CrossValResult",
    "DecisionTreeClassifier",
    "EnsembleRandomForest",
    "LabeledDataset",
    "RankedFeature",
    "auc",
    "compile_forest",
    "compute_column_ranks",
    "confusion",
    "cross_validate",
    "default_engine",
    "default_max_features",
    "default_tree_engine",
    "grow_tree_presorted",
    "evaluate_scores",
    "forest_from_dict",
    "forest_to_dict",
    "load_forest",
    "save_forest",
    "gain_ratio",
    "rank_features",
    "roc_auc",
    "roc_curve",
    "stratified_kfold",
    "train_test_split",
]
