"""Model persistence: save/load trained classifiers as JSON.

A deployed DynaMiner trains offline (Stage 1) and classifies on the
wire (Stage 2), usually in a different process or on a different box —
so the trained ERF must serialize.  The format is plain JSON (no
pickle: model files routinely cross trust boundaries) and versioned for
forward compatibility.
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest
from repro.learning.tree import DecisionTreeClassifier, _Node

__all__ = ["forest_to_dict", "forest_from_dict", "save_forest",
           "load_forest"]

_FORMAT_VERSION = 1


def _node_to_dict(node: _Node) -> dict:
    if node.is_leaf:
        return {"proba": [float(p) for p in node.proba]}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: dict) -> _Node:
    if "proba" in data:
        return _Node(proba=np.array(data["proba"], dtype=np.float64))
    return _Node(
        feature=int(data["feature"]),
        threshold=float(data["threshold"]),
        left=_node_from_dict(data["left"]),
        right=_node_from_dict(data["right"]),
    )


def _tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    if tree._root is None:
        raise LearningError("cannot serialize an unfitted tree")
    return {
        "classes": [float(c) for c in tree._classes],
        "n_features": tree.n_features_,
        "root": _node_to_dict(tree._root),
    }


def _tree_from_dict(data: dict) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier()
    tree._classes = np.array(data["classes"])
    tree._n_classes = len(tree._classes)
    tree.n_features_ = int(data["n_features"])
    tree._root = _node_from_dict(data["root"])
    return tree


def forest_to_dict(forest: EnsembleRandomForest) -> dict:
    """Serialize a fitted forest to a JSON-compatible dict."""
    if not forest.trees_:
        raise LearningError("cannot serialize an unfitted forest")
    return {
        "format_version": _FORMAT_VERSION,
        "model": "EnsembleRandomForest",
        "n_trees": forest.n_trees,
        "voting": forest.voting,
        "classes": [float(c) for c in forest._classes],
        "trees": [_tree_to_dict(t) for t in forest.trees_],
    }


def forest_from_dict(data: dict) -> EnsembleRandomForest:
    """Rebuild a forest from :func:`forest_to_dict` output."""
    if data.get("model") != "EnsembleRandomForest":
        raise LearningError(f"not a forest payload: {data.get('model')!r}")
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise LearningError(f"unsupported model format version: {version}")
    forest = EnsembleRandomForest(
        n_trees=int(data["n_trees"]), voting=str(data["voting"])
    )
    forest._classes = np.array(data["classes"])
    forest.trees_ = [_tree_from_dict(t) for t in data["trees"]]
    return forest


def save_forest(forest: EnsembleRandomForest, path: str) -> None:
    """Write a fitted forest to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(forest_to_dict(forest), handle)


def load_forest(path: str) -> EnsembleRandomForest:
    """Load a forest previously written by :func:`save_forest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return forest_from_dict(json.load(handle))
