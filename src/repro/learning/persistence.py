"""Model persistence: save/load trained classifiers as JSON.

A deployed DynaMiner trains offline (Stage 1) and classifies on the
wire (Stage 2), usually in a different process or on a different box —
so the trained ERF must serialize.  The format is plain JSON (no
pickle: model files routinely cross trust boundaries) and versioned for
forward compatibility.

Format version 2 stores each tree as a *flat* preorder node list with
child indices (see :func:`repro.learning.tree.flatten_nodes`).  The
version-1 nested encoding mirrored the tree shape, so a fully-grown
tree (default ``max_depth=None``) could exceed the recursion limit of
both this module's walkers and the stdlib ``json`` encoder/decoder;
version-1 payloads are still readable.
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest
from repro.learning.tree import (
    DecisionTreeClassifier,
    _Node,
    flatten_nodes,
    unflatten_nodes,
)

__all__ = ["forest_to_dict", "forest_from_dict", "save_forest",
           "load_forest"]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _node_from_dict(data: dict) -> _Node:
    """Decode the version-1 nested encoding with an explicit stack."""
    root = _Node()
    stack = [(data, root)]
    while stack:
        payload, node = stack.pop()
        if "proba" in payload:
            node.proba = np.array(payload["proba"], dtype=np.float64)
        else:
            node.feature = int(payload["feature"])
            node.threshold = float(payload["threshold"])
            node.left = _Node()
            node.right = _Node()
            stack.append((payload["right"], node.right))
            stack.append((payload["left"], node.left))
    return root


def _tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    if tree._root is None:
        raise LearningError("cannot serialize an unfitted tree")
    return {
        "classes": [float(c) for c in tree._classes],
        "n_features": tree.n_features_,
        "nodes": flatten_nodes(tree._root),
    }


def _tree_from_dict(data: dict) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier()
    tree._classes = np.array(data["classes"])
    tree._n_classes = len(tree._classes)
    tree.n_features_ = int(data["n_features"])
    if "nodes" in data:
        tree._root = unflatten_nodes(data["nodes"])
    else:  # version-1 nested encoding
        tree._root = _node_from_dict(data["root"])
    return tree


def forest_to_dict(forest: EnsembleRandomForest) -> dict:
    """Serialize a fitted forest to a JSON-compatible dict."""
    if not forest.trees_:
        raise LearningError("cannot serialize an unfitted forest")
    return {
        "format_version": _FORMAT_VERSION,
        "model": "EnsembleRandomForest",
        "n_trees": forest.n_trees,
        "voting": forest.voting,
        "max_features": forest.max_features,
        "max_depth": forest.max_depth,
        "min_samples_split": forest.min_samples_split,
        "min_samples_leaf": forest.min_samples_leaf,
        "criterion": forest.criterion,
        "bootstrap": forest.bootstrap,
        "random_state": forest.random_state,
        "classes": [float(c) for c in forest._classes],
        "trees": [_tree_to_dict(t) for t in forest.trees_],
    }


def forest_from_dict(data: dict) -> EnsembleRandomForest:
    """Rebuild a forest from :func:`forest_to_dict` output."""
    if data.get("model") != "EnsembleRandomForest":
        raise LearningError(f"not a forest payload: {data.get('model')!r}")
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise LearningError(f"unsupported model format version: {version}")
    n_trees = int(data["n_trees"])
    trees = data["trees"]
    if len(trees) != n_trees:
        raise LearningError(
            f"payload declares {n_trees} trees but carries {len(trees)}"
        )
    max_features = data.get("max_features")
    max_depth = data.get("max_depth")
    random_state = data.get("random_state")
    forest = EnsembleRandomForest(
        n_trees=n_trees,
        max_features=None if max_features is None else int(max_features),
        max_depth=None if max_depth is None else int(max_depth),
        min_samples_split=int(data.get("min_samples_split", 2)),
        min_samples_leaf=int(data.get("min_samples_leaf", 1)),
        criterion=str(data.get("criterion", "gini")),
        voting=str(data["voting"]),
        bootstrap=bool(data.get("bootstrap", True)),
        random_state=None if random_state is None else int(random_state),
    )
    forest._classes = np.array(data["classes"])
    forest.trees_ = [_tree_from_dict(t) for t in trees]
    # A loaded model is about to serve the wire: build the vectorized
    # inference arena now (both v1 and v2 payloads) rather than on the
    # first live classification.
    if forest.engine == "compiled":
        forest.compile()
    return forest


def save_forest(forest: EnsembleRandomForest, path: str) -> None:
    """Write a fitted forest to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(forest_to_dict(forest), handle)


def load_forest(path: str) -> EnsembleRandomForest:
    """Load a forest previously written by :func:`save_forest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return forest_from_dict(json.load(handle))
