"""Presorted-partition tree growth: the exact vectorized training engine.

The legacy grower (``DecisionTreeClassifier`` with ``engine="legacy"``)
re-argsorts every candidate feature column at every tree node with a
*comparison* sort (float64 timsort), allocates a fresh
``(n_samples, n_classes)`` one-hot matrix per feature per node, and
evaluates the split gain at **every** band position — the last
object-walk hot path left in the stack after inference went
struct-of-arrays (DESIGN.md §10) and extraction went columnar (§14).

This module replaces all three costs:

* **Presort once.** Each feature column is stable-argsorted **once**
  (per tree, or once per *forest* when the caller passes
  ``column_ranks``) and collapsed into dense order-isomorphic integer
  *rank codes* (:func:`compute_column_ranks`).  Equal values share a
  code, so every comparison the split scan needs — ordering,
  distinct-value boundaries — is answered by the codes alone.
* **Linear-time per-node ordering.** A node's sorted view of a
  candidate column is recovered from the rank codes by numpy's radix
  kernel (``np.argsort(..., kind="stable")`` on small unsigned ints) —
  counting passes, no per-node comparison sorts, vectorized across all
  ``max_features`` candidates in one call.
* **Sparse boundary scan.** Candidate split positions exist only
  between *distinct* consecutive values; the gain arithmetic runs on
  the flat array of those boundaries instead of on every position, and
  per-class cumulative counts come from ``np.add.accumulate`` over the
  sorted label codes into preallocated buffers (no one-hot matrices).

Byte-identity contract: the gain arithmetic — dtype, operation order,
strict-``>`` tie-breaks across candidate features, first-max tie-breaks
across split positions, and the threshold-midpoint clamp — is kept
operation-for-operation identical to ``tree._best_split``, and the RNG
draw for ``max_features`` candidate sampling happens in the same
preorder (node, left subtree, right subtree) position.  The engine
therefore grows **byte-identical trees** to the legacy grower (proven
by the differential suite in ``tests/learning/test_grower.py``).

Two equivalence arguments carry the design:

* *Stable restriction.* The legacy grower stable-argsorts the node's
  rows, so equal values order by relative row position — and a stable
  sort keyed on rank codes of the node's rows (kept in ascending row
  order, exactly the legacy ``indices`` array) reproduces that order.
  Rank ties collapse value ties exactly (including ``-0.0 == 0.0`` and
  the NaN tail, which merge into their neighbouring tie class): no
  boundary can land inside a tie class, so within-class order is never
  observable.
* *Boundary completeness.* ``code[p+1] > code[p]`` iff the float
  values differ (the codes are order-isomorphic), which matches the
  legacy ``diff > 0`` filter bit-for-bit; the split threshold and the
  ``column <= threshold`` partition are evaluated on the original
  float64 values.

The split-scan building blocks (:func:`presort_columns`,
:func:`restrict_sorted`, :func:`class_cumulative_counts`) are shared
with the gain-ratio ranking fast path (:mod:`repro.learning.ranking`).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.learning.tree import _CRITERIA, _Node

__all__ = [
    "presort_columns",
    "restrict_sorted",
    "partition_sorted",
    "class_cumulative_counts",
    "ColumnRanks",
    "compute_column_ranks",
    "grow_tree_presorted",
]

_NEG_INF = float("-inf")


def presort_columns(X: np.ndarray) -> np.ndarray:
    """Stable argsort of every feature column, computed once.

    Returns an ``(n_samples, n_features)`` integer array whose column
    ``f`` lists the row indices of ``X`` in ascending order of feature
    ``f`` (ties by row position — the same order
    ``np.argsort(column, kind="stable")`` produces).
    """
    return np.argsort(X, axis=0, kind="stable")


def restrict_sorted(sorted_idx: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Restrict presorted index columns to the rows flagged in ``keep``.

    ``keep`` is a boolean mask over the full row space.  Because each
    column of ``sorted_idx`` permutes the same row set, every column
    keeps the same number of entries, and the stable selection
    preserves each column's sorted order — equivalent to (but much
    cheaper than) re-argsorting each restricted column.
    """
    n_keep = int(np.count_nonzero(keep))
    mt = keep[sorted_idx].T  # (n_features, n) selection mask
    return sorted_idx.T[mt].reshape(-1, n_keep).T


def partition_sorted(
    sorted_idx: np.ndarray, goes_left: np.ndarray, n_left: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable two-way partition of presorted index columns.

    Splits every column of ``sorted_idx`` into the rows flagged in
    ``goes_left`` and the rest, preserving each column's sorted order.
    ``n_left`` is the number of flagged rows present in the columns
    (each column contains the same row set, so it is shared).
    """
    mt = goes_left[sorted_idx].T
    idx_t = sorted_idx.T
    left = idx_t[mt].reshape(-1, n_left).T
    right = idx_t[~mt].reshape(-1, sorted_idx.shape[0] - n_left).T
    return left, right


def class_cumulative_counts(
    codes: np.ndarray, n_classes: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Cumulative per-class counts along sorted label codes.

    Returns a ``(len(codes), n_classes)`` float64 array whose row ``p``
    counts each class among ``codes[: p + 1]`` — exactly the values the
    one-hot + ``cumsum`` idiom produced (counts are integers, which
    float64 represents exactly), without materializing the one-hot
    matrix.  ``out`` supplies a reusable buffer (only the leading
    ``len(codes)`` rows are written and returned).
    """
    n = len(codes)
    cum = np.empty((n, n_classes)) if out is None else out[:n]
    for c in range(n_classes):
        np.cumsum(codes == c, dtype=np.float64, out=cum[:, c])
    return cum


class ColumnRanks(NamedTuple):
    """Per-matrix presort product: rank codes plus their decode table.

    ``codes`` is a C-contiguous ``(n_features, n_samples)`` unsigned-int
    array of dense order-isomorphic ranks; ``values`` maps
    ``values[f, code]`` back to the float64 the code stands for (the
    first occurrence in feature ``f``'s sorted order).  ``codes`` is
    row-aligned with the matrix — a bootstrap restricts it by gathering
    columns (``codes[:, sample]``) while ``values`` carries over as is.
    """

    codes: np.ndarray
    values: np.ndarray


def compute_column_ranks(X: np.ndarray) -> ColumnRanks:
    """Dense order-isomorphic rank codes for every feature column.

    ``codes[f, i] < codes[f, j]`` iff ``X[i, f]`` sorts strictly before
    ``X[j, f]``, and equal values (including ``-0.0 == 0.0``) share a
    code.  NaNs collapse into the last tie class of the column's sorted
    tail, which is exactly the "no boundary here" behaviour the legacy
    ``diff > 0`` filter produces.

    The codes are what the presort engine orders per node with radix
    passes; computing them costs one stable float argsort per column,
    so callers fitting many trees on one matrix (the forest) should
    compute them once and gather them through each bootstrap.  uint16
    codes are capped below 2**15 so a code always has headroom for the
    engine's (rank << 1 | label) composite without overflow.
    """
    XT = np.ascontiguousarray(X.T)
    n_features, n_samples = XT.shape
    order = np.argsort(XT, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(XT, order, axis=1)
    codes_sorted = np.zeros((n_features, n_samples), dtype=np.uint32)
    if n_samples > 1:
        np.cumsum(
            sorted_vals[:, 1:] > sorted_vals[:, :-1],
            axis=1,
            dtype=np.uint32,
            out=codes_sorted[:, 1:],
        )
    max_code = int(codes_sorted[:, -1].max()) if n_samples else 0
    if n_samples and max_code < 2**15:
        # Two radix passes instead of four on every per-node ordering,
        # with a spare bit for the composite label sort.
        codes_sorted = codes_sorted.astype(np.uint16)
    # Decode table: the first sorted occurrence of each tie class.  A
    # class is a single float value (equal floats share bits), except
    # the two threshold-neutral collapses: -0.0/0.0 (either endpoint
    # yields bit-identical midpoint, and the clamp cannot fire on a
    # signed zero), and the NaN tail merged into the last real class
    # (whose first occurrence is that real value; an all-NaN column
    # has no boundaries, so its table entry is never read).
    values = np.zeros((n_features, max_code + 1))
    if n_samples:
        first = np.empty((n_features, n_samples), dtype=bool)
        first[:, 0] = True
        np.not_equal(
            codes_sorted[:, 1:], codes_sorted[:, :-1], out=first[:, 1:]
        )
        fi, pi = first.nonzero()
        values[fi, codes_sorted[fi, pi]] = sorted_vals[fi, pi]
    ranks = np.empty_like(codes_sorted)
    np.put_along_axis(ranks, order, codes_sorted, axis=1)
    return ColumnRanks(ranks, values)


def _reduce_classes(stacked: np.ndarray) -> np.ndarray:
    """Sum a ``(C, B)`` array over classes, matching legacy bit-order.

    The legacy scan sums ``(B, C)`` arrays over their *inner* axis,
    which numpy reduces strictly left-to-right for fewer than eight
    elements but with an unrolled multi-accumulator loop beyond that.
    An axis-0 ``add.reduce`` is always strictly sequential, so it is
    bit-identical only below that cutoff; wider class counts take the
    transposed path through the same inner-axis kernel.
    """
    if stacked.shape[0] < 8:
        return np.add.reduce(stacked, axis=0)
    return stacked.T.sum(axis=1)


def grow_tree_presorted(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    *,
    max_depth: int | None,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features: int | None,
    criterion: str,
    rng: np.random.Generator,
    column_ranks: np.ndarray | None = None,
) -> _Node:
    """Grow a CART tree with the presorted-partition engine.

    ``X`` must be float64 and ``y`` integer class codes in
    ``[0, n_classes)``.  ``column_ranks`` optionally supplies the
    :func:`compute_column_ranks` output for ``X`` (the forest computes
    it once per matrix and gathers it through each bootstrap); when
    omitted it is computed here.  Returns the root
    :class:`~repro.learning.tree._Node` of a tree byte-identical to
    what ``DecisionTreeClassifier._grow`` produces for the same inputs
    and RNG state.
    """
    n_samples, n_features = X.shape
    k = max_features or n_features
    k = min(k, n_features)
    impurity = _CRITERIA[criterion]
    is_gini = criterion == "gini"
    subsample = k < n_features
    # min_samples_leaf <= 0 behaves exactly like 1 in the legacy filter
    # (a boundary split always leaves one sample on each side).
    min_leaf = max(min_samples_leaf, 1)
    C = n_classes

    XT = np.ascontiguousarray(X.T)
    if column_ranks is None:
        column_ranks = compute_column_ranks(X)
    elif column_ranks.codes.shape != (n_features, n_samples):
        raise ValueError(
            "column_ranks codes shape "
            f"{column_ranks.codes.shape} does not match X {X.shape}"
        )
    ranks = np.ascontiguousarray(column_ranks.codes)
    rank_values = column_ranks.values
    code_dtype = np.uint8 if C <= 255 else np.intp
    y_codes = np.ascontiguousarray(y, dtype=code_dtype)
    root_counts = np.bincount(y, minlength=C).astype(float)
    idx_dtype = np.int32 if n_samples < 2**31 else np.intp
    all_features = None if subsample else np.arange(n_features)

    # Reusable per-node scratch, sliced to each node's sample count:
    # per-class cumulative prefix counts (uint32 — exact integers, half
    # the write traffic of float64; converted exactly where consumed)
    # and the equality buffer feeding the accumulate kernel (the
    # one-hot matrices' replacement).  ``sizes`` is the prefix-length
    # ladder: for binary labels class 0's prefix count is derived by
    # subtraction instead of a second accumulate pass.
    count_dtype = np.uint16 if n_samples < 2**16 else np.uint32
    cum = np.empty((C, k, n_samples), dtype=count_dtype)
    eq = np.empty((k, n_samples), dtype=bool) if C > 2 else None
    sizes = np.arange(1, n_samples + 1, dtype=count_dtype)
    ar_k = np.arange(k)[:, None]

    root = _Node()
    # Each entry owns its row-id array (ascending original order — the
    # exact legacy ``indices`` protocol) and exact class counts
    # (carried down by subtraction — no per-node bincount); popping
    # right-last keeps the preorder (and hence the RNG draw order) of
    # the legacy grower.
    stack: list[tuple[np.ndarray, np.ndarray, int, _Node]] = [
        (np.arange(n_samples, dtype=idx_dtype), root_counts, 0, root)
    ]
    while stack:
        rows, counts, depth, node = stack.pop()
        n_node = rows.shape[0]
        if (
            n_node < min_samples_split
            or (max_depth is not None and depth >= max_depth)
            or np.count_nonzero(counts) == 1
        ):
            node.proba = counts / counts.sum()
            continue
        # The legacy grower draws candidates before discovering there is
        # no valid split, so the draw must precede the band check too.
        candidates = (
            rng.choice(n_features, size=k, replace=False)
            if subsample
            else all_features
        )
        # Positions p with both children >= min_leaf form the band
        # [lo, hi); outside it the legacy scan filters positions away.
        lo = min_leaf - 1
        hi = n_node - min_leaf
        if hi <= lo:
            node.proba = counts / counts.sum()
            continue

        # Per-candidate sorted view of the node, recovered from the
        # rank codes by radix passes (linear time, no comparison sort).
        # Candidate split positions (the ``bd`` mask over the band) are
        # those whose next sorted rank is strictly larger — rank differs
        # iff the float value differs, the legacy diff > 0 filter.
        if subsample:
            keys = ranks[candidates[:, None], rows]
        else:
            keys = ranks[:, rows]
        node_codes = y_codes[rows]
        cm = cum[:, :, :n_node]
        if C == 2:
            # Composite value sort: (rank << 1 | label) orders by rank
            # with the label riding in the low bit, so a single radix
            # *value* sort replaces argsort plus the sorted-key and
            # sorted-label gathers (the uint16 rank cap keeps the shift
            # in range).  Within a rank tie class the order differs
            # from the legacy stable sort, but no boundary lands inside
            # a tie class, so the prefix counts at boundaries — the
            # only observable — are identical.  Class 1's prefix counts
            # accumulate straight off the label bits; class 0 is the
            # prefix-length ladder minus them (exact unsigned ints).
            comp = np.left_shift(keys, 1)
            np.bitwise_or(comp, node_codes, out=comp)
            comp.sort(axis=1, kind="stable")
            np.add.accumulate(
                comp & 1, axis=1, dtype=count_dtype, out=cm[1]
            )
            np.subtract(sizes[:n_node], cm[1], out=cm[0])
            # Strip the label bit back off: boundaries (and the winner
            # decode below) compare ranks, not composites.
            sorted_keys = np.right_shift(comp, 1)
            bd = sorted_keys[:, lo + 1 : hi + 1] > sorted_keys[:, lo:hi]
        else:
            order = np.argsort(keys, axis=1, kind="stable")
            sorted_keys = keys[ar_k, order]
            sorted_codes = node_codes[order]
            eqv = eq[:, :n_node]
            for c in range(C):
                np.equal(sorted_codes, c, out=eqv)
                np.add.accumulate(eqv, axis=1, dtype=count_dtype, out=cm[c])
            bd = sorted_keys[:, lo + 1 : hi + 1] > sorted_keys[:, lo:hi]
        # Everything downstream runs on the flat (feature-major,
        # position-ascending) boundary list.
        flat = bd.ravel().nonzero()[0]
        if flat.size == 0:
            node.proba = counts / counts.sum()
            continue
        P = hi - lo
        jf, pf = np.divmod(flat, P)
        pos = pf if lo == 0 else pf + lo

        # -- gain arithmetic, operation-for-operation _best_split ------
        # The legacy scan evaluates these expressions at the same
        # boundary positions; all ops are elementwise over boundaries
        # (the only reduction is over the class axis, whose length and
        # summation order match — see _reduce_classes), so every gain is
        # bit-identical.
        if is_gini:
            # _gini(counts) with the wrapper peeled off: same dtype,
            # same operations, same sequential class-axis reduction.
            fr = counts / n_node
            parent_impurity = float(1.0 - (fr * fr).sum())
        else:
            parent_impurity = impurity(counts)
        # int + 1.0 promotes to float64 in one pass; the positions are
        # far below 2**53, so the value equals (pos + 1) cast exactly.
        left_sizes = pos + 1.0
        right_sizes = n_node - left_sizes
        # (C, B) prefix class counts — small integers, exact in float64.
        left_counts_b = cm[:, jf, pos].astype(np.float64)
        right_counts_b = counts[:, None] - left_counts_b
        if is_gini:
            lf = left_counts_b / left_sizes
            left_imp = 1.0 - _reduce_classes(np.multiply(lf, lf))
            rf = right_counts_b / right_sizes
            right_imp = 1.0 - _reduce_classes(np.multiply(rf, rf))
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                lf = left_counts_b / left_sizes
                left_imp = -_reduce_classes(
                    np.where(lf > 0, lf * np.log2(lf), 0.0)
                )
                rf = right_counts_b / right_sizes
                right_imp = -_reduce_classes(
                    np.where(rf > 0, rf * np.log2(rf), 0.0)
                )
        weighted = (
            left_sizes * left_imp + right_sizes * right_imp
        ) / n_node
        gains = parent_impurity - weighted

        # Winner selection.  The legacy scan takes the first max inside
        # each candidate's position range, then compares candidates with
        # strict ``>`` in draw order against a 1e-12 floor.  Because the
        # flat boundary list is ordered by (candidate, position), that
        # two-level rule selects exactly the *first occurrence of the
        # global maximum* — one argmax call (candidates with no boundary
        # are simply absent, matching the legacy None-split skip).
        a = int(gains.argmax())
        if not gains[a] > 1e-12:
            node.proba = counts / counts.sum()
            continue
        best_j = int(jf[a])
        best_p = int(pos[a])

        # Decode the winning boundary's endpoint values from the rank
        # table (first sorted occurrence of each tie class — bit-equal
        # to the legacy endpoint reads; see compute_column_ranks).
        feature = int(candidates[best_j])
        v_lo = rank_values[feature, sorted_keys[best_j, best_p]]
        v_hi = rank_values[feature, sorted_keys[best_j, best_p + 1]]
        threshold = (v_lo + v_hi) / 2.0
        # Adjacent floats can make the midpoint round up to the upper
        # value; clamp so `<= threshold` keeps the split non-degenerate.
        if threshold >= v_hi:
            threshold = v_lo
        node.feature = feature
        node.threshold = float(threshold)
        node.left = _Node()
        node.right = _Node()

        # Partition exactly like the legacy recursion: the float column
        # against the threshold over the node's rows (NaNs compare
        # False and go right), children keeping ascending row order.
        col_vals = XT[feature][rows]
        mask = col_vals <= threshold
        left_rows = rows[mask]
        right_rows = rows[~mask]
        left_counts = cm[:, best_j, best_p].astype(np.float64)
        # Right first so the left child pops (and draws RNG) first.
        stack.append(
            (right_rows, counts - left_counts, depth + 1, node.right)
        )
        stack.append((left_rows, left_counts, depth + 1, node.left))
    return root
