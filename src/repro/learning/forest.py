"""Ensemble Random Forest with probability averaging (Section V-A).

The paper's classifier: bootstrap-sampled CART trees with per-split
random feature subsets, combined by **averaging probabilistic
predictions** rather than majority vote ("which reduces variance").  The
paper's tuned hyper-parameters are the defaults here:
``n_trees = 20`` and ``max_features = log2(n_features) + 1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import LearningError, NotFittedError
from repro.learning.tree import DecisionTreeClassifier
from repro.parallel import parallel_map

__all__ = ["EnsembleRandomForest", "default_max_features"]


def default_max_features(n_features: int) -> int:
    """The paper's ``N_f = log2(NumFeatures) + 1`` rule."""
    return max(1, int(math.log2(max(2, n_features))) + 1)


def _bootstrap_sample(
    X: np.ndarray, y: np.ndarray, n_classes: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    n_samples = len(y)
    sample = rng.integers(0, n_samples, size=n_samples)
    Xb, yb = X[sample], y[sample]
    # Guard: a bootstrap may drop a class entirely on tiny datasets;
    # resample until both classes are present.
    attempts = 0
    while len(np.unique(yb)) < n_classes and attempts < 32:
        sample = rng.integers(0, n_samples, size=n_samples)
        Xb, yb = X[sample], y[sample]
        attempts += 1
    return Xb, yb


def _fit_tree(job: tuple) -> DecisionTreeClassifier:
    """Pool worker: bootstrap-sample and fit one tree.

    Every random input (the bootstrap seed and the tree's split seed) is
    pre-drawn by :meth:`EnsembleRandomForest.fit` and carried in the job
    tuple, so the result depends only on the job — never on which worker
    runs it or in what order.
    """
    X, y, n_classes, params, bootstrap, bootstrap_seed, tree_seed = job
    if bootstrap:
        Xb, yb = _bootstrap_sample(X, y, n_classes, bootstrap_seed)
    else:
        Xb, yb = X, y
    return DecisionTreeClassifier(random_state=tree_seed, **params).fit(Xb, yb)


class EnsembleRandomForest:
    """Probability-averaging random forest.

    Args:
        n_trees: ensemble size (paper-tuned ``N_t = 20``).
        max_features: features per split; ``None`` applies the paper's
            ``log2(F) + 1`` rule at fit time.
        max_depth / min_samples_split / min_samples_leaf / criterion:
            forwarded to each :class:`DecisionTreeClassifier`.
        voting: ``"average"`` (the paper's ERF) or ``"majority"``
            (kept for the ablation bench).
        random_state: master seed; tree seeds and bootstrap draws derive
            from it.
        n_jobs: default process count for :meth:`fit` (``None`` = serial,
            ``-1`` = all cores).  Any value yields byte-identical trees.
    """

    def __init__(
        self,
        n_trees: int = 20,
        max_features: int | None = None,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        voting: str = "average",
        bootstrap: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = None,
    ):
        if n_trees < 1:
            raise LearningError("n_trees must be >= 1")
        if voting not in ("average", "majority"):
            raise LearningError(f"unknown voting mode {voting!r}")
        self.n_trees = n_trees
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.voting = voting
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.trees_: list[DecisionTreeClassifier] = []
        self._classes: np.ndarray | None = None

    def fit(
        self, X: np.ndarray, y: np.ndarray, n_jobs: int | None = None
    ) -> "EnsembleRandomForest":
        """Fit the ensemble; returns self.

        Args:
            n_jobs: per-tree fitting processes (overrides the
                constructor's ``n_jobs``).  Both the bootstrap seed and
                the split seed of tree *i* are drawn up front from the
                master ``random_state``, so every ``n_jobs`` value —
                serial included — grows byte-identical trees.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y):
            raise LearningError("X and y length mismatch")
        if len(X) == 0:
            raise LearningError("cannot fit on an empty dataset")
        self._classes = np.unique(y)
        n_features = X.shape[1]
        k = (
            self.max_features
            if self.max_features is not None
            else default_max_features(n_features)
        )
        rng = np.random.default_rng(self.random_state)
        seeds = rng.integers(0, 2**31 - 1, size=(self.n_trees, 2))
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": k,
            "criterion": self.criterion,
        }
        jobs = [
            (X, y, len(self._classes), params, self.bootstrap,
             int(seeds[index, 0]), int(seeds[index, 1]))
            for index in range(self.n_trees)
        ]
        effective = n_jobs if n_jobs is not None else self.n_jobs
        self.trees_ = parallel_map(_fit_tree, jobs, n_jobs=effective)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise NotFittedError("fit() must be called before predict")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix.

        ``"average"`` voting returns the mean of per-tree probabilistic
        predictions; ``"majority"`` returns hard-vote fractions.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        n_classes = len(self._classes)
        if self.voting == "average":
            total = np.zeros((len(X), n_classes))
            for tree in self.trees_:
                # Trees may have seen fewer classes in a degenerate
                # bootstrap; align columns via the tree's own classes.
                proba = tree.predict_proba(X)
                cols = np.searchsorted(self._classes, tree._classes)
                total[:, cols] += proba
            # Normalize by the trees actually present: a payload loaded
            # from disk may carry fewer trees than n_trees claims.
            return total / len(self.trees_)
        votes = np.zeros((len(X), n_classes))
        for tree in self.trees_:
            predicted = tree.predict(X)
            cols = np.searchsorted(self._classes, predicted)
            votes[np.arange(len(X)), cols] += 1
        return votes / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        proba = self.predict_proba(X)
        return self._classes[np.argmax(proba, axis=1)]

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Probability of the infection class (label 1).

        The score swept to draw the ROC curve (Figure 10).  The column
        is resolved from the fitted classes: a forest that never saw
        class 1 (e.g. trained on benign-only data) scores every sample
        0.0 rather than returning its only column — which is class 0 —
        as the infection probability.
        """
        proba = self.predict_proba(X)
        positive = np.flatnonzero(self._classes == 1)
        if positive.size:
            return proba[:, positive[0]]
        if len(self._classes) > 1:
            # Non-0/1 labelling: keep the largest-label convention.
            return proba[:, -1]
        return np.zeros(len(proba))

    def feature_importances(self) -> np.ndarray:
        """Mean split-frequency importances across trees."""
        self._check_fitted()
        stacked = np.vstack([t.feature_importances() for t in self.trees_])
        return stacked.mean(axis=0)
