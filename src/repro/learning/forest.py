"""Ensemble Random Forest with probability averaging (Section V-A).

The paper's classifier: bootstrap-sampled CART trees with per-split
random feature subsets, combined by **averaging probabilistic
predictions** rather than majority vote ("which reduces variance").  The
paper's tuned hyper-parameters are the defaults here:
``n_trees = 20`` and ``max_features = log2(n_features) + 1``.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.exceptions import LearningError, NotFittedError
from repro.learning.tree import (
    _TREE_ENGINES,
    DecisionTreeClassifier,
    default_tree_engine,
)
from repro.obs import get_registry
from repro.parallel import parallel_map

__all__ = ["EnsembleRandomForest", "default_max_features", "default_engine"]

_ENGINES = ("compiled", "object")


def default_engine() -> str:
    """Inference engine used when the constructor is not told otherwise.

    ``"compiled"`` (the default) runs predictions through the
    struct-of-arrays arena of :mod:`repro.learning.compiled`;
    ``"object"`` walks the linked ``_Node`` trees.  Both produce
    byte-identical output — the env override (``REPRO_FOREST_ENGINE``)
    exists for A/B benchmarking, not behaviour.
    """
    return os.environ.get("REPRO_FOREST_ENGINE", "compiled")


def default_max_features(n_features: int) -> int:
    """The paper's ``N_f = log2(NumFeatures) + 1`` rule."""
    return max(1, int(math.log2(max(2, n_features))) + 1)


def _bootstrap_indices(y: np.ndarray, n_classes: int, seed: int) -> np.ndarray:
    """Bootstrap row indices, resampled until every class is present.

    A bootstrap may drop a class entirely on tiny datasets; the retry
    loop draws the exact sequence the original sampler drew, so the
    accepted sample — and every tree grown from it — is unchanged.
    """
    rng = np.random.default_rng(seed)
    n_samples = len(y)
    sample = rng.integers(0, n_samples, size=n_samples)
    attempts = 0
    while len(np.unique(y[sample])) < n_classes and attempts < 32:
        sample = rng.integers(0, n_samples, size=n_samples)
        attempts += 1
    return sample


def _bootstrap_sample(
    X: np.ndarray, y: np.ndarray, n_classes: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    sample = _bootstrap_indices(y, n_classes, seed)
    return X[sample], y[sample]


#: Per-worker fit context installed by :func:`_init_fit_context`.  The
#: training matrix (and its presorted rank codes) cross the process
#: pool once per worker through the pool initializer instead of being
#: pickled into every per-tree job.
_FIT_CONTEXT: tuple | None = None


def _init_fit_context(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    params: dict,
    bootstrap: bool,
    tree_engine: str,
    ranks,
) -> None:
    global _FIT_CONTEXT
    _FIT_CONTEXT = (X, y, n_classes, params, bootstrap, tree_engine, ranks)


def _clear_fit_context() -> None:
    global _FIT_CONTEXT
    _FIT_CONTEXT = None


def _fit_tree(job: tuple) -> DecisionTreeClassifier:
    """Pool worker: bootstrap-sample and fit one tree.

    The shared inputs live in the worker's :data:`_FIT_CONTEXT`; the job
    carries only this tree's pre-drawn seeds, so the result depends only
    on the job — never on which worker runs it or in what order — and
    the matrix is never serialized per tree.
    """
    bootstrap_seed, tree_seed = job
    X, y, n_classes, params, bootstrap, tree_engine, ranks = _FIT_CONTEXT
    if bootstrap:
        sample = _bootstrap_indices(y, n_classes, bootstrap_seed)
        Xb, yb = X[sample], y[sample]
        if ranks is not None:
            # The rank codes are row-aligned with X: the bootstrap
            # restriction is a column gather, far cheaper than the
            # per-column argsorts they replace.
            ranks = ranks._replace(codes=ranks.codes[:, sample])
    else:
        Xb, yb = X, y
    tree = DecisionTreeClassifier(
        random_state=tree_seed, engine=tree_engine, **params
    )
    return tree.fit(Xb, yb, column_ranks=ranks)


class EnsembleRandomForest:
    """Probability-averaging random forest.

    Args:
        n_trees: ensemble size (paper-tuned ``N_t = 20``).
        max_features: features per split; ``None`` applies the paper's
            ``log2(F) + 1`` rule at fit time.
        max_depth / min_samples_split / min_samples_leaf / criterion:
            forwarded to each :class:`DecisionTreeClassifier`.
        voting: ``"average"`` (the paper's ERF) or ``"majority"``
            (kept for the ablation bench).
        random_state: master seed; tree seeds and bootstrap draws derive
            from it.
        n_jobs: default process count for :meth:`fit` (``None`` = serial,
            ``-1`` = all cores).  Any value yields byte-identical trees.
        engine: ``"compiled"`` (vectorized arena, the default) or
            ``"object"`` (linked-node walk); ``None`` reads
            :func:`default_engine`.  Output is byte-identical either
            way; the compiled arena is rebuilt automatically on
            :meth:`fit` and on load.
        tree_engine: training engine for each tree — ``"presort"``
            (presorted-partition growth, the default) or ``"legacy"``;
            ``None`` reads
            :func:`repro.learning.tree.default_tree_engine`.  Both grow
            byte-identical trees; with ``"presort"`` the forest
            presorts the matrix once and every bootstrap reuses it.
    """

    def __init__(
        self,
        n_trees: int = 20,
        max_features: int | None = None,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        voting: str = "average",
        bootstrap: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = None,
        engine: str | None = None,
        tree_engine: str | None = None,
    ):
        if n_trees < 1:
            raise LearningError("n_trees must be >= 1")
        if voting not in ("average", "majority"):
            raise LearningError(f"unknown voting mode {voting!r}")
        if engine is None:
            engine = default_engine()
        if engine not in _ENGINES:
            raise LearningError(f"unknown inference engine {engine!r}")
        if tree_engine is None:
            tree_engine = default_tree_engine()
        if tree_engine not in _TREE_ENGINES:
            raise LearningError(f"unknown tree engine {tree_engine!r}")
        self.n_trees = n_trees
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.voting = voting
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.engine = engine
        self.tree_engine = tree_engine
        self.trees_: list[DecisionTreeClassifier] = []
        self._classes: np.ndarray | None = None
        #: Compiled struct-of-arrays arena (repro.learning.compiled);
        #: rebuilt on fit/load, dropped from pickles and rebuilt lazily.
        self._compiled = None
        #: Per-tree forest-class column alignment, cached because the
        #: tree set only changes on fit/load (satellite of ISSUE 4).
        self._tree_cols: list[np.ndarray] | None = None

    def fit(
        self, X: np.ndarray, y: np.ndarray, n_jobs: int | None = None
    ) -> "EnsembleRandomForest":
        """Fit the ensemble; returns self.

        Args:
            n_jobs: per-tree fitting processes (overrides the
                constructor's ``n_jobs``).  Both the bootstrap seed and
                the split seed of tree *i* are drawn up front from the
                master ``random_state``, so every ``n_jobs`` value —
                serial included — grows byte-identical trees.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y):
            raise LearningError("X and y length mismatch")
        if len(X) == 0:
            raise LearningError("cannot fit on an empty dataset")
        self._classes = np.unique(y)
        n_features = X.shape[1]
        k = (
            self.max_features
            if self.max_features is not None
            else default_max_features(n_features)
        )
        rng = np.random.default_rng(self.random_state)
        seeds = rng.integers(0, 2**31 - 1, size=(self.n_trees, 2))
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": k,
            "criterion": self.criterion,
        }
        ranks = None
        if self.tree_engine == "presort":
            # Presort the matrix once; every bootstrap restricts the
            # rank codes by a column gather inside the worker.
            from repro.learning.grower import compute_column_ranks

            ranks = compute_column_ranks(X)
        jobs = [
            (int(seeds[index, 0]), int(seeds[index, 1]))
            for index in range(self.n_trees)
        ]
        effective = n_jobs if n_jobs is not None else self.n_jobs
        try:
            self.trees_ = parallel_map(
                _fit_tree,
                jobs,
                n_jobs=effective,
                initializer=_init_fit_context,
                initargs=(X, y, len(self._classes), params,
                          self.bootstrap, self.tree_engine, ranks),
            )
        finally:
            # The serial path installs the context in this process.
            _clear_fit_context()
        # Refit invalidates the previous arena and column cache.
        self._tree_cols = None
        self._compiled = None
        if self.engine == "compiled":
            self.compile()
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise NotFittedError("fit() must be called before predict")

    # -- compiled-engine plumbing -------------------------------------------

    def _tree_columns(self) -> list[np.ndarray]:
        """Forest-class column of each tree's local classes, cached.

        A tree fitted on a degenerate bootstrap may have seen fewer
        classes than the forest; this alignment scatters its output
        into the right columns.  The tree set only changes on fit/load,
        so the ``searchsorted`` runs once, not on every predict call.
        """
        if self._tree_cols is None or len(self._tree_cols) != len(self.trees_):
            self._tree_cols = [
                np.searchsorted(self._classes, tree._classes)
                for tree in self.trees_
            ]
        return self._tree_cols

    def compile(self):
        """(Re)build the vectorized inference arena; returns it.

        Called automatically at the end of :meth:`fit` and by the
        persistence loader; call manually after mutating ``trees_`` in
        place (tests do) to resynchronize.
        """
        from repro.learning.compiled import compile_forest

        self._check_fitted()
        self._tree_cols = None
        get_registry().counter("forest.arena_rebuilds").inc()
        self._compiled = compile_forest(self)
        return self._compiled

    def _compiled_forest(self):
        """The current arena, compiled on first use and guarded against
        a swapped-out tree list (stale arenas must never score)."""
        compiled = self._compiled
        if compiled is None or compiled.n_trees != len(self.trees_):
            compiled = self.compile()
        return compiled

    # -- pickling -------------------------------------------------------------
    # Process pools ship forests between workers; the arena and column
    # cache are derived data, so drop them to keep payloads lean — both
    # rebuild lazily on first predict.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_compiled"] = None
        state["_tree_cols"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Forests pickled before the training-engine knob existed.
        self.__dict__.setdefault("tree_engine", default_tree_engine())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix.

        ``"average"`` voting returns the mean of per-tree probabilistic
        predictions; ``"majority"`` returns hard-vote fractions.  Both
        engines produce byte-identical matrices.
        """
        self._check_fitted()
        registry = get_registry()
        if registry.enabled:
            registry.counter("forest.rows_scored." + self.engine).inc(len(X))
            registry.histogram("forest.batch_rows").observe(len(X))
        if self.engine == "compiled":
            compiled = self._compiled_forest()
            if self.voting == "average":
                return compiled.predict_proba(X)
            return compiled.vote_fractions(X)
        X = np.asarray(X, dtype=np.float64)
        n_classes = len(self._classes)
        columns = self._tree_columns()
        if self.voting == "average":
            total = np.zeros((len(X), n_classes))
            for index, tree in enumerate(self.trees_):
                # Trees may have seen fewer classes in a degenerate
                # bootstrap; align columns via the cached mapping.
                total[:, columns[index]] += tree.predict_proba(X)
            # Normalize by the trees actually present: a payload loaded
            # from disk may carry fewer trees than n_trees claims.
            return total / len(self.trees_)
        votes = np.zeros((len(X), n_classes))
        row_index = np.arange(len(X))
        for index, tree in enumerate(self.trees_):
            # Leaf argmax indices map through the cached alignment —
            # no per-sample label searchsorted, no (n, C) proba matrix.
            votes[row_index, columns[index][tree._predict_indices(X)]] += 1
        return votes / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        proba = self.predict_proba(X)
        return self._classes[np.argmax(proba, axis=1)]

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Probability of the infection class (label 1).

        The score swept to draw the ROC curve (Figure 10).  The column
        is resolved from the fitted classes: a forest that never saw
        class 1 (e.g. trained on benign-only data) scores every sample
        0.0 rather than returning its only column — which is class 0 —
        as the infection probability.
        """
        proba = self.predict_proba(X)
        positive = np.flatnonzero(self._classes == 1)
        if positive.size:
            return proba[:, positive[0]]
        if len(self._classes) > 1:
            # Non-0/1 labelling: keep the largest-label convention.
            return proba[:, -1]
        return np.zeros(len(proba))

    def explain_row(self, x: np.ndarray) -> dict:
        """Per-tree decision-path explanation of one feature row.

        Returns a dict of plain-Python values (pickles cleanly inside
        alert provenance):

        * ``tree_votes`` — each tree's predicted class label;
        * ``tree_scores`` — each tree's infection-class probability
          (0.0 when the forest never saw class 1, mirroring
          :meth:`decision_scores`);
        * ``vote_tally`` — ``(benign votes, infectious votes)``;
        * ``feature_path_counts`` — how many split nodes across all
          trees tested each feature on this row's paths.

        Always runs on the compiled arena (one vectorized pass, see
        :meth:`CompiledForest.explain <repro.learning.compiled.
        CompiledForest.explain>`) regardless of the configured
        inference engine, and bypasses the ``forest.rows_scored``
        instrumentation — explanation must not perturb the scoring
        metrics.  With ``engine="object"`` the arena is compiled on
        first use (one visible ``forest.arena_rebuilds`` tick).
        """
        self._check_fitted()
        compiled = self._compiled_forest()
        leaves, counts = compiled.explain(x)
        vote_columns = compiled.leaf_vote[leaves]
        # Infection-class column resolution, as in decision_scores.
        positive = np.flatnonzero(self._classes == 1)
        if positive.size:
            column = int(positive[0])
        elif len(self._classes) > 1:
            column = len(self._classes) - 1
        else:
            column = None
        if column is None:
            scores = np.zeros(len(leaves))
            infectious = 0
        else:
            scores = compiled.leaf_proba[leaves, column]
            infectious = int((vote_columns == column).sum())
        return {
            "tree_votes": tuple(
                int(label) for label in self._classes[vote_columns]
            ),
            "tree_scores": tuple(float(score) for score in scores),
            "vote_tally": (len(self.trees_) - infectious, infectious),
            "feature_path_counts": tuple(int(c) for c in counts),
        }

    def feature_importances(self) -> np.ndarray:
        """Mean split-frequency importances across trees."""
        self._check_fitted()
        stacked = np.vstack([t.feature_importances() for t in self.trees_])
        return stacked.mean(axis=0)
