"""Classification metrics: confusion counts, TPR/FPR/F-score, ROC/AUC.

These regenerate the numbers the paper reports: Table III columns
(TPR, FPR, F-score, ROC Area), Table V cells, and the Figure 10 ROC
curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LearningError

try:  # numpy >= 2.0
    from numpy import trapezoid as _trapezoid
except ImportError:  # numpy 1.x (declared floor is numpy>=1.24)
    from numpy import trapz as _trapezoid

__all__ = ["ConfusionMatrix", "confusion", "roc_curve", "auc", "roc_auc",
           "evaluate_scores"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts plus derived rates.

    Positive class = infection (label 1).
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def tpr(self) -> float:
        """True positive rate (recall / detection rate)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def fpr(self) -> float:
        """False positive rate."""
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        """Positive predictive value."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def f_score(self) -> float:
        """F1 score."""
        p, r = self.precision, self.tpr
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        """Overall accuracy."""
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def total(self) -> int:
        """Total samples."""
        return self.tp + self.fp + self.tn + self.fn


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Binary confusion matrix (positive label = 1)."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise LearningError("y_true and y_pred shape mismatch")
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return ConfusionMatrix(tp=tp, fp=fp, tn=tn, fn=fn)


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points ``(fpr, tpr, thresholds)``.

    Thresholds descend; the first point is ``(0, 0)`` at threshold
    ``+inf`` and the last ``(1, 1)``.
    """
    y_true = np.asarray(y_true).astype(int)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise LearningError("y_true and scores shape mismatch")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    # Collapse ties: evaluate only at distinct score boundaries.
    distinct = np.where(np.diff(sorted_scores))[0]
    boundaries = np.concatenate([distinct, [len(sorted_true) - 1]])
    tps = np.cumsum(sorted_true)[boundaries]
    fps = (boundaries + 1) - tps
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    tpr = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps, dtype=float)
    tpr = np.concatenate([[0.0], tpr])
    fpr = np.concatenate([[0.0], fpr])
    thresholds = np.concatenate([[np.inf], sorted_scores[boundaries]])
    return fpr, tpr, thresholds


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Trapezoidal area under a curve given by points ``(x, y)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) < 2:
        return 0.0
    return float(_trapezoid(y, x))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)


def evaluate_scores(
    y_true: np.ndarray, scores: np.ndarray, threshold: float = 0.5
) -> dict[str, float]:
    """One-stop evaluation: TPR/FPR/F-score/accuracy/ROC-area.

    Matches the Table III column set for a given decision threshold.
    """
    predictions = (np.asarray(scores) >= threshold).astype(int)
    matrix = confusion(y_true, predictions)
    return {
        "tpr": matrix.tpr,
        "fpr": matrix.fpr,
        "f_score": matrix.f_score,
        "accuracy": matrix.accuracy,
        "roc_area": roc_auc(y_true, scores),
        "precision": matrix.precision,
    }
