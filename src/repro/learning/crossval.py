"""Stratified k-fold cross-validation (the paper evaluates with 10-fold)."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest
from repro.learning.metrics import evaluate_scores
from repro.parallel import parallel_map

__all__ = ["stratified_kfold", "cross_validate", "CrossValResult"]


def stratified_kfold(
    y: np.ndarray, k: int = 10, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class stratification.

    Each class's indices are shuffled deterministically and dealt
    round-robin across the ``k`` folds, so every fold preserves the class
    ratio to within one sample.
    """
    y = np.asarray(y)
    if k < 2:
        raise LearningError("k must be >= 2")
    classes = np.unique(y)
    smallest = min(int(np.sum(y == c)) for c in classes)
    if smallest < k:
        raise LearningError(
            f"smallest class has {smallest} samples; cannot make {k} folds"
        )
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for cls in classes:
        indices = np.where(y == cls)[0]
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    all_indices = np.arange(len(y))
    for fold in folds:
        test_idx = np.array(sorted(fold))
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_idx] = False
        yield all_indices[train_mask], test_idx


@dataclass
class CrossValResult:
    """Aggregated cross-validation metrics (mean ± std per metric)."""

    per_fold: list[dict[str, float]] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` across folds."""
        return float(np.mean([fold[metric] for fold in self.per_fold]))

    def std(self, metric: str) -> float:
        """Standard deviation of ``metric`` across folds."""
        return float(np.std([fold[metric] for fold in self.per_fold]))

    def summary(self) -> dict[str, float]:
        """Mean of every recorded metric."""
        if not self.per_fold:
            return {}
        return {key: self.mean(key) for key in self.per_fold[0]}


def _run_fold(job: tuple) -> dict[str, float]:
    """Pool worker: fit on one fold's train split, score its test split."""
    X, y, train_idx, test_idx, factory, threshold = job
    model = factory()
    model.fit(X[train_idx], y[train_idx])
    scores = model.decision_scores(X[test_idx])
    return evaluate_scores(y[test_idx], scores, threshold=threshold)


def cross_validate(
    X: np.ndarray,
    y: np.ndarray,
    model_factory: Callable[[], EnsembleRandomForest] | None = None,
    k: int = 10,
    seed: int = 0,
    threshold: float = 0.5,
    feature_indices: list[int] | None = None,
    n_jobs: int | None = None,
) -> CrossValResult:
    """Run stratified k-fold CV and collect Table III-style metrics.

    Args:
        model_factory: builds a fresh classifier per fold (defaults to a
            paper-configured :class:`EnsembleRandomForest`).
        feature_indices: optional column subset (the Table III ablation
            trains on feature groups).
        n_jobs: folds run in a process pool (``None`` = serial, ``-1`` =
            all cores).  Fold membership and every model seed derive from
            ``seed`` alone, so the metrics are byte-identical for any
            value; with ``n_jobs > 1`` the factory must be picklable —
            a module-level callable or ``functools.partial``, not a
            lambda or closure.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if feature_indices is not None:
        X = X[:, feature_indices]
    factory = model_factory or partial(
        EnsembleRandomForest, n_trees=20, random_state=seed
    )
    jobs = [
        (X, y, train_idx, test_idx, factory, threshold)
        for train_idx, test_idx in stratified_kfold(y, k=k, seed=seed)
    ]
    result = CrossValResult()
    result.per_fold = parallel_map(_run_fold, jobs, n_jobs=n_jobs)
    return result
