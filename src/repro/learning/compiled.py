"""Compiled-forest inference engine: flat arrays, vectorized traversal.

The on-the-wire stage queries the ERF on every meaningful WCG update
(Section VI), so classifier latency sits directly on the live detection
path.  Walking linked ``_Node`` objects costs O(rows x trees x depth)
Python iterations per call; this module compiles a fitted forest into a
struct-of-arrays *arena* — one flat node table shared by all trees —
and traverses it level-wise with vectorized index stepping, so a batch
costs O(depth) numpy operations regardless of how many rows or trees it
covers.

Layout (a natural extension of the model-format-v2 flat node list):

* every tree is flattened preorder (:func:`repro.learning.tree.flatten_nodes`)
  and appended to the arena; child indices are rebased by the tree's
  node offset, so they index straight into the arena;
* ``feature[i] == -1`` marks a leaf; ``gather_feature`` clamps leaves
  to column 0 so the traversal can gather unconditionally;
* children pack into one array addressed ``child[2*i + go_left]``
  (``child[2*i]`` = right, ``child[2*i + 1]`` = left), turning the
  step into a single gather instead of two gathers plus a ``where``;
  leaves self-loop (both slots point back at the leaf) so finished
  (row, tree) lanes idle while deeper lanes keep descending;
* ``leaf_proba[i]`` holds the leaf's class-probability row *already
  scattered* into forest-class columns (the per-tree
  ``searchsorted(forest_classes, tree_classes)`` alignment is baked in
  at compile time, so inference never recomputes it);
* ``leaf_vote[i]`` holds the forest-class column the leaf's argmax
  lands on (ties to the lowest class label), precomputed for the
  majority-voting mode;
* ``depth`` is the deepest root-to-leaf path, measured at compile time,
  so the traversal runs a fixed iteration count with no per-level
  termination scan.

Equivalence contract: every public method is **byte-identical** to the
object-tree path.  The traversal applies the same IEEE comparison
(``x <= threshold`` goes left; NaN compares false and goes right), and
probability averaging accumulates per tree, in tree order, exactly like
``EnsembleRandomForest.predict_proba`` — adding a pre-scattered row is
bytewise the same as scattering then adding, because leaf probabilities
are non-negative (no ``-0.0 + 0.0`` sign flips) and ``x + 0.0 == x``
for every such ``x``.  ``tests/learning/test_compiled.py`` pins the
contract on random, degenerate, and adversarial inputs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LearningError
from repro.learning.tree import DecisionTreeClassifier, flatten_nodes

__all__ = ["CompiledForest", "compile_forest", "compile_tree_arrays"]


def compile_tree_arrays(
    tree: DecisionTreeClassifier,
    columns: np.ndarray,
    n_classes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Flat struct-of-arrays form of one fitted tree.

    Args:
        tree: the fitted object tree.
        columns: forest-class column of each tree-local class (the
            cached ``searchsorted`` alignment from the forest).
        n_classes: width of the forest's class axis.

    Returns ``(feature, threshold, child, leaf_proba, leaf_vote, depth)``
    with tree-local node indices (the arena rebases ``child``).
    """
    if tree._root is None:
        raise LearningError("cannot compile an unfitted tree")
    nodes = flatten_nodes(tree._root)
    count = len(nodes)
    feature = np.full(count, -1, dtype=np.intp)
    threshold = np.zeros(count, dtype=np.float64)
    # child[2*i] = right, child[2*i + 1] = left; leaves self-loop.
    child = np.repeat(np.arange(count, dtype=np.intp), 2)
    leaf_proba = np.zeros((count, n_classes), dtype=np.float64)
    leaf_vote = np.zeros(count, dtype=np.intp)
    # Preorder puts every parent before its children, so one forward
    # sweep settles node depths.
    level = np.zeros(count, dtype=np.intp)
    depth = 0
    for index, node in enumerate(nodes):
        proba = node.get("proba")
        if proba is None:
            feature[index] = node["feature"]
            threshold[index] = node["threshold"]
            child[2 * index] = node["right"]
            child[2 * index + 1] = node["left"]
            level[node["left"]] = level[node["right"]] = level[index] + 1
        else:
            leaf_proba[index, columns] = proba
            # argmax ties resolve to the first index — the lowest
            # tree-local class, hence the lowest class label.
            leaf_vote[index] = columns[int(np.argmax(proba))]
            if level[index] > depth:
                depth = int(level[index])
    return feature, threshold, child, leaf_proba, leaf_vote, depth


class CompiledForest:
    """Arena of every tree in a fitted forest, traversed level-wise.

    Instances are immutable snapshots of the forest they were compiled
    from; refitting or mutating ``trees_`` requires recompilation (the
    forest does this automatically on ``fit`` and on load).
    """

    def __init__(
        self,
        classes: np.ndarray,
        n_features: int,
        trees: list[tuple],
    ):
        if not trees:
            raise LearningError("cannot compile an empty forest")
        self.classes = np.asarray(classes)
        self.n_features = int(n_features)
        self.n_trees = len(trees)
        offsets = np.zeros(self.n_trees, dtype=np.intp)
        total = 0
        for index, (feature, *_rest) in enumerate(trees):
            offsets[index] = total
            total += len(feature)
        self.roots = offsets
        self.node_count = total
        self.feature = np.concatenate([t[0] for t in trees])
        self.threshold = np.concatenate([t[1] for t in trees])
        # Rebase child indices (self-loops included) into the arena.
        self.child = np.concatenate(
            [t[2] + offsets[i] for i, t in enumerate(trees)]
        )
        self.leaf_proba = np.vstack([t[3] for t in trees])
        # Vote columns index classes, not nodes — no rebasing.
        self.leaf_vote = np.concatenate([t[4] for t in trees])
        self.depth = max(t[5] for t in trees)
        #: Leaf lanes gather column 0; the comparison outcome is
        #: irrelevant because both child slots self-loop.
        self.gather_feature = np.maximum(self.feature, 0)

    # -- traversal -----------------------------------------------------------

    def _leaves(self, X: np.ndarray) -> np.ndarray:
        """Leaf arena index per (row, tree): level-wise index stepping.

        Each iteration advances every (row, tree) lane one level:
        gather the lane's split feature and threshold, compare, and
        step through the packed child table.  Lanes parked on a leaf
        self-loop, so running exactly ``depth`` iterations (the arena's
        deepest path, measured at compile time) lands every lane on its
        leaf — O(depth) numpy operations for the whole batch, with no
        per-level termination scan.  NaN feature values compare False
        and step right, identical to the object walk's
        ``row[feature] <= threshold`` branch.
        """
        rows = X.shape[0]
        pos = np.repeat(self.roots[None, :], rows, axis=0)
        if rows == 0 or self.depth == 0:
            return pos
        flat = np.ascontiguousarray(X).reshape(-1)
        row_offset = (np.arange(rows, dtype=np.intp)
                      * self.n_features)[:, None]
        gather_feature = self.gather_feature
        threshold, child = self.threshold, self.child
        for _ in range(self.depth):
            values = flat.take(row_offset + gather_feature.take(pos))
            go_left = values <= threshold.take(pos)
            pos = child.take((pos << 1) + go_left)
        return pos

    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise LearningError(
                f"expected shape (*, {self.n_features}), got {X.shape}"
            )
        return X

    # -- prediction ----------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability-averaged class matrix (the paper's ERF vote).

        Accumulates per tree in tree order so the result is bytewise
        what the object path's scatter-and-add produces.
        """
        X = self._validate(X)
        pos = self._leaves(X)
        total = np.zeros((len(X), len(self.classes)))
        for index in range(self.n_trees):
            total += self.leaf_proba[pos[:, index]]
        return total / self.n_trees

    def explain(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decision-path explanation of one row, in one vectorized pass.

        Returns ``(leaves, counts)``: the leaf arena index each tree
        lands on (so callers can read per-tree votes from
        ``leaf_vote`` and per-tree probabilities from ``leaf_proba``),
        and the number of split nodes across all trees that tested
        each feature on the row's root-to-leaf paths — the
        per-feature decision-path usage counts of alert provenance.

        Same level-wise stepping as :meth:`_leaves`, with one extra
        ``bincount`` over the still-interior lanes per level; lanes
        parked on leaves (``feature == -1``) are masked out of the
        tally and the walk exits early once every lane has parked.
        """
        row = np.asarray(x, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.n_features:
            raise LearningError(
                f"expected {self.n_features} features, got {row.shape[0]}"
            )
        pos = self.roots.copy()
        counts = np.zeros(self.n_features, dtype=np.int64)
        threshold, child = self.threshold, self.child
        for _ in range(self.depth):
            features = self.feature.take(pos)
            interior = features >= 0
            if not interior.any():
                break
            counts += np.bincount(features[interior],
                                  minlength=self.n_features)
            values = row.take(np.maximum(features, 0))
            go_left = values <= threshold.take(pos)
            pos = child.take((pos << 1) + go_left)
        return pos, counts

    def vote_fractions(self, X: np.ndarray) -> np.ndarray:
        """Hard-vote fractions (the ``voting="majority"`` ablation).

        Per-leaf argmax columns are precomputed with ties resolved to
        the lowest class label.
        """
        X = self._validate(X)
        pos = self._leaves(X)
        votes = np.zeros((len(X), len(self.classes)))
        row_index = np.arange(len(X))
        for index in range(self.n_trees):
            votes[row_index, self.leaf_vote[pos[:, index]]] += 1.0
        return votes / self.n_trees


def compile_forest(forest) -> CompiledForest:
    """Compile a fitted :class:`EnsembleRandomForest` into an arena.

    Uses the forest's cached per-tree class-column alignment, so the
    compiled leaves carry rows already scattered to forest-class
    columns.
    """
    if not forest.trees_:
        raise LearningError("cannot compile an unfitted forest")
    n_classes = len(forest._classes)
    n_features = forest.trees_[0].n_features_
    columns = forest._tree_columns()
    trees = [
        compile_tree_arrays(tree, columns[index], n_classes)
        for index, tree in enumerate(forest.trees_)
    ]
    return CompiledForest(forest._classes, n_features, trees)
