"""CART decision tree (from scratch; sklearn is unavailable offline).

Binary classification tree over numeric features with Gini or entropy
impurity, random feature subsetting per split (the random-forest
ingredient), and probabilistic leaf predictions (class frequency at the
leaf) — the ERF in the paper averages these probabilities across trees
rather than majority-voting (Section V-A).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import LearningError, NotFittedError

if TYPE_CHECKING:  # grower imports from this module; keep one-way at runtime
    from repro.learning.grower import ColumnRanks

__all__ = [
    "DecisionTreeClassifier",
    "default_tree_engine",
    "flatten_nodes",
    "unflatten_nodes",
]

_TREE_ENGINES = ("presort", "legacy")


def default_tree_engine() -> str:
    """Training engine used when the constructor is not told otherwise.

    ``"presort"`` (the default) grows trees through the
    presorted-partition engine of :mod:`repro.learning.grower` — each
    feature column argsorted once (per tree, or per forest) into rank
    codes, per-node order recovered by linear-time radix passes;
    ``"legacy"`` keeps the original per-node argsort grower.  Both grow
    **byte-identical** trees — the env override (``REPRO_TREE_ENGINE``)
    exists for A/B benchmarking and as a fallback escape hatch, not
    behaviour.
    """
    return os.environ.get("REPRO_TREE_ENGINE", "presort")


@dataclass
class _Node:
    """One tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    proba: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    fractions = counts / total
    return float(1.0 - np.sum(fractions**2))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    fractions = counts / total
    nonzero = fractions[fractions > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


_CRITERIA = {"gini": _gini, "entropy": _entropy}


def flatten_nodes(root: _Node) -> list[dict]:
    """Flatten a node chain to a preorder list with child indices.

    The nested ``_Node`` structure nests as deep as the tree, so both
    ``pickle`` and ``json`` blow the interpreter recursion limit on
    fully-grown trees; this flat encoding (leaves carry ``proba``,
    internal nodes carry ``left``/``right`` list indices) has constant
    nesting depth whatever the tree shape.
    """
    nodes: list[dict] = []
    stack: list[tuple[_Node, int, str]] = [(root, -1, "")]
    while stack:
        node, parent_pos, side = stack.pop()
        pos = len(nodes)
        if parent_pos >= 0:
            nodes[parent_pos][side] = pos
        if node.is_leaf:
            nodes.append({"proba": [float(p) for p in node.proba]})
        else:
            nodes.append({
                "feature": int(node.feature),
                "threshold": float(node.threshold),
                "left": -1,
                "right": -1,
            })
            stack.append((node.right, pos, "right"))
            stack.append((node.left, pos, "left"))
    return nodes


def unflatten_nodes(nodes: list[dict]) -> _Node:
    """Rebuild a node chain from :func:`flatten_nodes` output."""
    if not nodes:
        raise LearningError("empty node list")
    built = [
        _Node(proba=np.array(data["proba"], dtype=np.float64))
        if "proba" in data
        else _Node(feature=int(data["feature"]),
                   threshold=float(data["threshold"]))
        for data in nodes
    ]
    for data, node in zip(nodes, built):
        if "proba" not in data:
            node.left = built[data["left"]]
            node.right = built[data["right"]]
    return built[0]


class DecisionTreeClassifier:
    """A CART classifier supporting per-split feature subsetting.

    Args:
        max_depth: depth cap (``None`` = unbounded).
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples in each child of a split.
        max_features: features examined per split (``None`` = all).
        criterion: ``"gini"`` or ``"entropy"``.
        random_state: seed for the per-split feature subsampling.
        engine: ``"presort"`` (presorted-partition growth, the default)
            or ``"legacy"`` (per-node argsort); ``None`` reads
            :func:`default_tree_engine`.  The grown tree is
            byte-identical either way.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        criterion: str = "gini",
        random_state: int | None = None,
        engine: str | None = None,
    ):
        if criterion not in _CRITERIA:
            raise LearningError(f"unknown criterion {criterion!r}")
        if engine is None:
            engine = default_tree_engine()
        if engine not in _TREE_ENGINES:
            raise LearningError(f"unknown tree engine {engine!r}")
        self.engine = engine
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.random_state = random_state
        self._root: _Node | None = None
        self._n_classes = 0
        self._classes: np.ndarray | None = None
        self.n_features_: int = 0

    # -- fitting -----------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        column_ranks: "ColumnRanks | None" = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``; returns self.

        ``column_ranks`` optionally supplies a precomputed
        :class:`repro.learning.grower.ColumnRanks` whose codes align
        with ``X``'s rows, letting a caller fitting many trees on
        bootstraps of one matrix (the forest) pay the per-column float
        argsort once instead of per tree.  The legacy engine ignores it
        (it derives nothing from presorted structure).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise LearningError("X must be 2-dimensional")
        if len(X) != len(y):
            raise LearningError(
                f"X has {len(X)} rows but y has {len(y)} labels"
            )
        if len(X) == 0:
            raise LearningError("cannot fit on an empty dataset")
        self._classes, encoded = np.unique(y, return_inverse=True)
        self._n_classes = len(self._classes)
        self.n_features_ = X.shape[1]
        self._impurity = _CRITERIA[self.criterion]
        self._rng = np.random.default_rng(self.random_state)
        if self.engine == "presort":
            # Imported here: grower imports _Node/_CRITERIA from this
            # module, so the dependency must stay one-way at import time.
            from repro.learning.grower import grow_tree_presorted

            self._root = grow_tree_presorted(
                X,
                encoded,
                self._n_classes,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                rng=self._rng,
                column_ranks=column_ranks,
            )
        else:
            self._root = self._grow(X, encoded, depth=0)
        return self

    def _leaf_proba(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self._n_classes).astype(np.float64)
        return counts / counts.sum()

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        """Grow a (sub)tree with an explicit work stack (legacy engine).

        Iterative rather than recursive so the default ``max_depth=None``
        can grow trees deeper than the interpreter recursion limit.  The
        stack pops in the recursive preorder (node, left subtree, right
        subtree), so the per-split RNG draws — and hence the grown tree —
        are identical to what the recursive formulation produced.

        This is the reference grower the presorted-partition engine
        (:mod:`repro.learning.grower`, the default) is differentially
        tested against; its arithmetic is the byte-identity contract and
        must not drift.
        """
        root = _Node()
        stack: list[tuple[np.ndarray, np.ndarray, int, _Node]] = [
            (X, y, depth, root)
        ]
        while stack:
            X_part, y_part, node_depth, node = stack.pop()
            n_samples = len(y_part)
            if (
                n_samples < self.min_samples_split
                or (self.max_depth is not None
                    and node_depth >= self.max_depth)
                or len(np.unique(y_part)) == 1
            ):
                node.proba = self._leaf_proba(y_part)
                continue
            split = self._best_split(X_part, y_part)
            if split is None:
                node.proba = self._leaf_proba(y_part)
                continue
            feature, threshold = split
            mask = X_part[:, feature] <= threshold
            if not mask.any() or mask.all():
                # Degenerate split (can only stem from float pathology).
                node.proba = self._leaf_proba(y_part)
                continue
            node.feature = feature
            node.threshold = threshold
            node.left = _Node()
            node.right = _Node()
            # Right first so the left child pops (and draws RNG) first.
            stack.append(
                (X_part[~mask], y_part[~mask], node_depth + 1, node.right)
            )
            stack.append(
                (X_part[mask], y_part[mask], node_depth + 1, node.left)
            )
        return root

    # -- pickling ------------------------------------------------------------
    # Process pools ship fitted trees between workers; the nested _Node
    # chain would recurse in pickle as deep as the tree, so the state
    # swaps it for the flat encoding.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_impurity", None)  # module-level fn, rebound on restore
        if state.get("_root") is not None:
            state["_root"] = flatten_nodes(state["_root"])
        return state

    def __setstate__(self, state: dict) -> None:
        root = state.pop("_root", None)
        self.__dict__.update(state)
        self._root = unflatten_nodes(root) if root is not None else None
        self._impurity = _CRITERIA[self.criterion]

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n_samples, n_features = X.shape
        k = self.max_features or n_features
        k = min(k, n_features)
        candidates = (
            self._rng.choice(n_features, size=k, replace=False)
            if k < n_features
            else np.arange(n_features)
        )
        parent_counts = np.bincount(y, minlength=self._n_classes).astype(float)
        parent_impurity = self._impurity(parent_counts)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_y = y[order]
            # One-hot cumulative class counts along the sorted column.
            onehot = np.zeros((n_samples, self._n_classes))
            onehot[np.arange(n_samples), sorted_y] = 1.0
            cum = np.cumsum(onehot, axis=0)
            # Valid split positions: between distinct consecutive values.
            diffs = np.nonzero(np.diff(sorted_col) > 0)[0]
            if diffs.size == 0:
                continue
            positions = diffs[
                (diffs + 1 >= min_leaf) & (n_samples - diffs - 1 >= min_leaf)
            ]
            if positions.size == 0:
                continue
            left_counts = cum[positions]
            right_counts = parent_counts - left_counts
            left_sizes = (positions + 1).astype(float)
            right_sizes = n_samples - left_sizes
            # Vectorized impurity for all positions.
            if self.criterion == "gini":
                left_imp = 1.0 - np.sum(
                    (left_counts / left_sizes[:, None]) ** 2, axis=1
                )
                right_imp = 1.0 - np.sum(
                    (right_counts / right_sizes[:, None]) ** 2, axis=1
                )
            else:
                left_frac = left_counts / left_sizes[:, None]
                right_frac = right_counts / right_sizes[:, None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    left_imp = -np.nansum(
                        np.where(left_frac > 0,
                                 left_frac * np.log2(left_frac), 0.0),
                        axis=1,
                    )
                    right_imp = -np.nansum(
                        np.where(right_frac > 0,
                                 right_frac * np.log2(right_frac), 0.0),
                        axis=1,
                    )
            weighted = (
                left_sizes * left_imp + right_sizes * right_imp
            ) / n_samples
            gains = parent_impurity - weighted
            top = int(np.argmax(gains))
            if gains[top] > best_gain:
                best_gain = float(gains[top])
                position = positions[top]
                threshold = (
                    sorted_col[position] + sorted_col[position + 1]
                ) / 2.0
                # Adjacent floats can make the midpoint round up to the
                # upper value; clamp so `<= threshold` keeps the split
                # non-degenerate.
                if threshold >= sorted_col[position + 1]:
                    threshold = sorted_col[position]
                best = (int(feature), float(threshold))
        return best

    # -- prediction ----------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix, one row per sample."""
        if self._root is None:
            raise NotFittedError("fit() must be called before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise LearningError(
                f"expected shape (*, {self.n_features_}), got {X.shape}"
            )
        out = np.empty((len(X), self._n_classes))
        for index, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[index] = node.proba
        return out

    def _predict_indices(self, X: np.ndarray) -> np.ndarray:
        """Tree-local class index of each row's leaf argmax.

        Walks each row to its leaf and argmaxes the leaf vector in
        place — no ``(n, n_classes)`` probability matrix is
        materialized, which matters when the forest's majority-voting
        branch calls this per tree.  Ties resolve to the first index,
        i.e. the lowest class label (``_classes`` is sorted).
        """
        if self._root is None:
            raise NotFittedError("fit() must be called before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise LearningError(
                f"expected shape (*, {self.n_features_}), got {X.shape}"
            )
        out = np.empty(len(X), dtype=np.intp)
        for index, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[index] = node.proba.argmax()
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (ties break to the lowest label)."""
        return self._classes[self._predict_indices(X)]

    @property
    def depth(self) -> int:
        """Depth of the grown tree (0 for a single leaf)."""
        if self._root is None:
            raise NotFittedError("fit() must be called first")
        deepest = 0
        stack = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    @property
    def node_count(self) -> int:
        """Total nodes in the grown tree."""
        if self._root is None:
            raise NotFittedError("fit() must be called first")
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.append(node.left)
                stack.append(node.right)
        return count

    def feature_importances(self) -> np.ndarray:
        """Split-frequency importances (how often each feature splits)."""
        if self._root is None:
            raise NotFittedError("fit() must be called first")
        importances = np.zeros(self.n_features_)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            importances[node.feature] += 1
            stack.append(node.left)
            stack.append(node.right)
        total = importances.sum()
        return importances / total if total else importances
