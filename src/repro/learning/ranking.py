"""Gain-ratio feature ranking with k-fold averaging (Table IV).

The paper ranks features by the *gain ratio* metric under 10-fold cross
validation and reports, per feature, the gain ratio (mean ± std across
folds) and the average rank (mean ± std).  For continuous features we
use the standard binary-discretization gain ratio: information gain of
the best threshold split, normalized by that split's intrinsic (split)
information — the same criterion Weka's ``GainRatioAttributeEval``
applies after MDL discretization collapses to a single cut point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learning.crossval import stratified_kfold

__all__ = ["gain_ratio", "RankedFeature", "rank_features"]


def _entropy_of(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    fractions = counts / counts.sum()
    return float(-np.sum(fractions * np.log2(fractions)))


def gain_ratio(column: np.ndarray, y: np.ndarray) -> float:
    """Gain ratio of the best binary threshold split on ``column``.

    Returns 0 for constant columns or splits with no information gain.
    """
    column = np.asarray(column, dtype=np.float64)
    y = np.asarray(y)
    n = len(y)
    if n == 0:
        return 0.0
    order = np.argsort(column, kind="stable")
    sorted_col = column[order]
    sorted_y = y[order]
    boundaries = np.nonzero(np.diff(sorted_col) > 0)[0]
    if boundaries.size == 0:
        return 0.0
    classes, encoded = np.unique(sorted_y, return_inverse=True)
    n_classes = len(classes)
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), encoded] = 1.0
    cum = np.cumsum(onehot, axis=0)
    totals = cum[-1]
    parent_entropy = _entropy_of(sorted_y)

    left_counts = cum[boundaries]
    right_counts = totals - left_counts
    left_sizes = (boundaries + 1).astype(float)
    right_sizes = n - left_sizes

    def _split_entropy(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        fractions = counts / sizes[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(fractions > 0, fractions * np.log2(fractions), 0.0)
        return -terms.sum(axis=1)

    weighted = (
        left_sizes * _split_entropy(left_counts, left_sizes)
        + right_sizes * _split_entropy(right_counts, right_sizes)
    ) / n
    gains = parent_entropy - weighted
    left_frac = left_sizes / n
    right_frac = right_sizes / n
    split_info = -(
        left_frac * np.log2(left_frac) + right_frac * np.log2(right_frac)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(split_info > 0, gains / split_info, 0.0)
    best = float(np.max(ratios))
    return max(0.0, best)


@dataclass(frozen=True)
class RankedFeature:
    """One Table IV row."""

    name: str
    gain_ratio_mean: float
    gain_ratio_std: float
    rank_mean: float
    rank_std: float


def rank_features(
    X: np.ndarray,
    y: np.ndarray,
    names: list[str],
    k: int = 10,
    seed: int = 0,
    criterion: str = "binary",
) -> list[RankedFeature]:
    """Rank all feature columns by gain ratio under k-fold CV.

    Per fold, gain ratios are computed on the training portion and
    features ranked (1 = best).  Returns features ordered by mean rank,
    each carrying ``mean ± std`` for both the gain ratio and the rank —
    exactly the Table IV columns.

    ``criterion`` selects the discretization: ``"binary"`` (single best
    threshold; fast) or ``"mdl"`` (full Fayyad-Irani recursion, the
    Weka-faithful variant — see :mod:`repro.learning.discretize`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    n_features = X.shape[1]
    if len(names) != n_features:
        raise ValueError("names length must match feature count")
    if criterion == "binary":
        measure = gain_ratio
    elif criterion == "mdl":
        from repro.learning.discretize import mdl_gain_ratio
        measure = mdl_gain_ratio
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    ratios = np.zeros((k, n_features))
    ranks = np.zeros((k, n_features))
    for fold_index, (train_idx, _) in enumerate(
        stratified_kfold(y, k=k, seed=seed)
    ):
        fold_ratios = np.array(
            [measure(X[train_idx, j], y[train_idx]) for j in range(n_features)]
        )
        ratios[fold_index] = fold_ratios
        # Rank 1 = highest gain ratio; ties broken by column order.
        order = np.argsort(-fold_ratios, kind="stable")
        fold_ranks = np.empty(n_features)
        fold_ranks[order] = np.arange(1, n_features + 1)
        ranks[fold_index] = fold_ranks
    results = [
        RankedFeature(
            name=names[j],
            gain_ratio_mean=float(ratios[:, j].mean()),
            gain_ratio_std=float(ratios[:, j].std()),
            rank_mean=float(ranks[:, j].mean()),
            rank_std=float(ranks[:, j].std()),
        )
        for j in range(n_features)
    ]
    results.sort(key=lambda r: r.rank_mean)
    return results
