"""Gain-ratio feature ranking with k-fold averaging (Table IV).

The paper ranks features by the *gain ratio* metric under 10-fold cross
validation and reports, per feature, the gain ratio (mean ± std across
folds) and the average rank (mean ± std).  For continuous features we
use the standard binary-discretization gain ratio: information gain of
the best threshold split, normalized by that split's intrinsic (split)
information — the same criterion Weka's ``GainRatioAttributeEval``
applies after MDL discretization collapses to a single cut point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learning.crossval import stratified_kfold
from repro.learning.grower import (
    class_cumulative_counts,
    presort_columns,
    restrict_sorted,
)

__all__ = ["gain_ratio", "RankedFeature", "rank_features"]


def _entropy_of(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    fractions = counts / counts.sum()
    return float(-np.sum(fractions * np.log2(fractions)))


def _split_entropy(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    fractions = counts / sizes[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(fractions > 0, fractions * np.log2(fractions), 0.0)
    return -terms.sum(axis=1)


def _ratios_from_boundaries(
    sorted_col: np.ndarray,
    cum: np.ndarray,
    parent_entropy: float,
) -> float:
    """Best gain ratio given a sorted column and its cumulative counts.

    The split-scan arithmetic shared by :func:`gain_ratio` and the
    presorted CV fast path — kept in one place so the two are identical
    by construction.
    """
    n = len(sorted_col)
    boundaries = np.nonzero(np.diff(sorted_col) > 0)[0]
    if boundaries.size == 0:
        return 0.0
    totals = cum[-1]
    left_counts = cum[boundaries]
    right_counts = totals - left_counts
    left_sizes = (boundaries + 1).astype(float)
    right_sizes = n - left_sizes
    weighted = (
        left_sizes * _split_entropy(left_counts, left_sizes)
        + right_sizes * _split_entropy(right_counts, right_sizes)
    ) / n
    gains = parent_entropy - weighted
    left_frac = left_sizes / n
    right_frac = right_sizes / n
    split_info = -(
        left_frac * np.log2(left_frac) + right_frac * np.log2(right_frac)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(split_info > 0, gains / split_info, 0.0)
    best = float(np.max(ratios))
    return max(0.0, best)


def gain_ratio(column: np.ndarray, y: np.ndarray) -> float:
    """Gain ratio of the best binary threshold split on ``column``.

    Returns 0 for constant columns or splits with no information gain.
    """
    column = np.asarray(column, dtype=np.float64)
    y = np.asarray(y)
    n = len(y)
    if n == 0:
        return 0.0
    order = np.argsort(column, kind="stable")
    sorted_col = column[order]
    sorted_y = y[order]
    if not np.any(np.diff(sorted_col) > 0):
        return 0.0
    classes, encoded = np.unique(sorted_y, return_inverse=True)
    cum = class_cumulative_counts(encoded, len(classes))
    return _ratios_from_boundaries(sorted_col, cum, _entropy_of(sorted_y))


def _fold_gain_ratios(
    X: np.ndarray,
    sorted_idx: np.ndarray,
    y: np.ndarray,
    train_idx: np.ndarray,
) -> np.ndarray:
    """Gain ratios of every column on one CV train fold.

    Rides the grower's presorted split-scan kernel: the full matrix is
    argsorted once per :func:`rank_features` call, each fold restricts
    the presorted index columns with a linear stable pass
    (:func:`restrict_sorted`), and cumulative class counts come from
    :func:`class_cumulative_counts` — no per-fold per-column re-argsort.
    Within-tie row order may differ from a direct argsort of the fold's
    column, but the scan only reads cumulative counts at tie-class
    boundaries, so every ratio is bit-identical to
    ``gain_ratio(X[train_idx, j], y[train_idx])``.
    """
    n, n_features = X.shape
    out = np.zeros(n_features)
    keep = np.zeros(n, dtype=bool)
    keep[train_idx] = True
    sub = restrict_sorted(sorted_idx, keep)
    m = sub.shape[0]
    if m == 0:
        return out
    y_train = y[keep]
    classes, enc_train = np.unique(y_train, return_inverse=True)
    n_classes = len(classes)
    enc_row = np.zeros(n, dtype=enc_train.dtype)
    enc_row[keep] = enc_train
    parent_entropy = _entropy_of(y_train)
    cum_buf = np.empty((m, n_classes))
    for j in range(n_features):
        ids = sub[:, j]
        sorted_col = X[ids, j]
        if not np.any(np.diff(sorted_col) > 0):
            continue
        cum = class_cumulative_counts(enc_row[ids], n_classes, out=cum_buf)
        out[j] = _ratios_from_boundaries(sorted_col, cum, parent_entropy)
    return out


@dataclass(frozen=True)
class RankedFeature:
    """One Table IV row."""

    name: str
    gain_ratio_mean: float
    gain_ratio_std: float
    rank_mean: float
    rank_std: float


def rank_features(
    X: np.ndarray,
    y: np.ndarray,
    names: list[str],
    k: int = 10,
    seed: int = 0,
    criterion: str = "binary",
) -> list[RankedFeature]:
    """Rank all feature columns by gain ratio under k-fold CV.

    Per fold, gain ratios are computed on the training portion and
    features ranked (1 = best).  Returns features ordered by mean rank,
    each carrying ``mean ± std`` for both the gain ratio and the rank —
    exactly the Table IV columns.

    ``criterion`` selects the discretization: ``"binary"`` (single best
    threshold; fast) or ``"mdl"`` (full Fayyad-Irani recursion, the
    Weka-faithful variant — see :mod:`repro.learning.discretize`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    n_features = X.shape[1]
    if len(names) != n_features:
        raise ValueError("names length must match feature count")
    if criterion == "binary":
        measure = None
        sorted_idx = presort_columns(X)
    elif criterion == "mdl":
        from repro.learning.discretize import mdl_gain_ratio
        measure = mdl_gain_ratio
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    ratios = np.zeros((k, n_features))
    ranks = np.zeros((k, n_features))
    for fold_index, (train_idx, _) in enumerate(
        stratified_kfold(y, k=k, seed=seed)
    ):
        if measure is None:
            fold_ratios = _fold_gain_ratios(X, sorted_idx, y, train_idx)
        else:
            fold_ratios = np.array(
                [measure(X[train_idx, j], y[train_idx])
                 for j in range(n_features)]
            )
        ratios[fold_index] = fold_ratios
        # Rank 1 = highest gain ratio; ties broken by column order.
        order = np.argsort(-fold_ratios, kind="stable")
        fold_ranks = np.empty(n_features)
        fold_ranks[order] = np.arange(1, n_features + 1)
        ranks[fold_index] = fold_ranks
    results = [
        RankedFeature(
            name=names[j],
            gain_ratio_mean=float(ratios[:, j].mean()),
            gain_ratio_std=float(ratios[:, j].std()),
            rank_mean=float(ranks[:, j].mean()),
            rank_std=float(ranks[:, j].std()),
        )
        for j in range(n_features)
    ]
    results.sort(key=lambda r: r.rank_mean)
    return results
