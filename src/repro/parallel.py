"""Process-pool execution layer for the offline analytics pipeline.

Stage 1 — feature extraction, ensemble fitting, cross-validation — is
embarrassingly parallel at three grains: per trace, per tree, per fold.
This module provides the one shared primitive (:func:`parallel_map`)
those call sites use, plus the ``n_jobs`` convention resolver.

Determinism contract: callers draw **all** randomness up front (per-item
seeds derived from the master ``random_state``) and ship it with each
work item, so the execution schedule cannot perturb the random streams
and any ``n_jobs`` value produces byte-identical results.

Work items and results cross process boundaries, so both must be
picklable — module-level worker functions, no lambdas or closures.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

from repro.exceptions import ReproError

__all__ = ["resolve_n_jobs", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Effective worker count: ``None`` → 1 (serial), ``-1`` → all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ReproError("n_jobs must be >= 1, or -1 for all cores")
    return n_jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_jobs: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[_R]:
    """Ordered ``[fn(item) for item in items]`` over a process pool.

    Falls back to an in-process loop when the effective worker count or
    the item count is 1, so ``n_jobs=1`` never pays pool overhead and
    never requires picklability.

    ``initializer(*initargs)`` installs shared per-worker state — large
    arrays every item needs cross the pool **once per worker** instead
    of once per item.  On the serial path it runs in-process before the
    loop; callers owning module-global state should reset it afterwards
    (the pool's worker processes die with the pool, the serial process
    does not).
    """
    items = list(items)
    workers = min(resolve_n_jobs(n_jobs), len(items))
    if workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
