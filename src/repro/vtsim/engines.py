"""Simulated AV engines with signature-lag dynamics.

Models the observable behaviour of VirusTotal's engine ensemble that the
paper's evaluation depends on:

* an engine detects a malicious sample only once its signature lands —
  lag is exponentially distributed with a mean of 9.25 days, the
  VirusTotal lag reported by [12] and corroborated by the paper's own
  11-days-ahead finding;
* *fresh* (just-repacked) samples are undetectable by almost everyone at
  first scan;
* *content-borne* maliciousness (e.g. a Flash exploit embedded in a PDF)
  is only ever detectable by the few engines doing deep content
  analysis, and slowly (the paper's forensic PDF went 0/56 -> 3/56 over
  11 days).

All per-(engine, sample) randomness is a deterministic hash so the same
sample scanned at two times yields a *consistent* detection story
(detection time never moves).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

__all__ = ["DAY", "PayloadSample", "AvEngine", "build_engine_fleet"]

DAY = 86_400.0

_ENGINE_NAMES = (
    "AegisScan", "AlphaAV", "Antivir9", "ArmorWall", "Avantis", "BitSentry",
    "BlackIce", "CipherGuard", "ClamNova", "CloudShield", "CoreDefend",
    "CyberTrap", "DataSentinel", "DeepScan", "DefendPro", "DigitalWatch",
    "EagleEye", "EndGuard", "FalconAV", "FileSafe", "Fortress", "GateKeeper",
    "GuardianX", "HashHunter", "HeurEngine", "IronClad", "KernelWatch",
    "LockBox", "MalTrace", "MicroShield", "NanoScan", "NetArmor",
    "NightWatch", "OmniGuard", "PacketSafe", "Paranoid", "PatrolAV",
    "Perimeter", "PhalanxAV", "QuickScan", "RedLine", "SafeNet", "ScanCore",
    "SecureBit", "SentinelOne9", "ShadowScan", "SigMaster", "SilverBullet",
    "SmartDefend", "StormWall", "ThreatHawk", "TitanAV", "VaultGuard",
    "VirusHalt", "WatchTower", "ZoneArmor",
)
assert len(_ENGINE_NAMES) == 56  # the paper's "all the 56 detectors"

#: Indices of engines capable of deep content analysis (embedded-exploit
#: detection); mirrors the "3/56 detections are all from AV engines"
#: content-analysis observation in Section VI-D.
_CONTENT_CAPABLE = frozenset({3, 11, 17, 29, 41, 47, 52})


def _unit_hash(*parts: object) -> float:
    """Deterministic uniform-(0,1) value for a tuple of identifiers."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class PayloadSample:
    """One scannable payload.

    Attributes:
        sha256: content hash identifying the sample.
        malicious: ground truth.
        content_borne: maliciousness manifests only in embedded content
            (limits which engines can ever flag it).
        first_seen: epoch seconds when the sample first existed.
        fresh: freshly repacked — signature lag starts essentially at
            scan time, so initial scans come back clean.
        reputation: ``"normal"`` | ``"suspicious"`` (unofficial-source
            benign content that heuristic engines tend to flag).
    """

    sha256: str
    malicious: bool
    content_borne: bool = False
    first_seen: float = 0.0
    fresh: bool = False
    reputation: str = "normal"


@dataclass
class AvEngine:
    """One simulated AV engine."""

    name: str
    index: int
    #: Probability this engine's lab ever writes a signature for a
    #: given (non-content-borne) malicious sample.
    coverage: float = 0.82
    #: Mean signature lag in days (exponential).
    mean_lag_days: float = 9.25
    #: Per-sample probability of heuristically flagging *suspicious*
    #: benign content.
    suspicious_fp_rate: float = 0.09
    #: Per-sample probability of flagging ordinary benign content.
    base_fp_rate: float = 0.012
    content_capable: bool = False

    def detection_time(self, sample: PayloadSample) -> float | None:
        """Epoch time at which this engine starts flagging the sample.

        ``None`` means the engine never detects it.  Deterministic per
        (engine, sample): repeated scans tell a consistent story.
        """
        if not sample.malicious:
            # Benign: heuristic false flag, active from first_seen.
            rate = (
                self.suspicious_fp_rate
                if sample.reputation == "suspicious"
                else self.base_fp_rate
            )
            if _unit_hash(self.name, sample.sha256, "fp") < rate:
                return sample.first_seen
            return None
        if sample.content_borne and not self.content_capable:
            return None
        if sample.content_borne:
            # Deep content analysis: most capable engines eventually get
            # there, but it takes days of lab time (uniform 4-12 days) —
            # the forensic case study's 0/56 -> 3/56-in-11-days story.
            if _unit_hash(self.name, sample.sha256, "cov") >= 0.85:
                return None
            u = _unit_hash(self.name, sample.sha256, "lag")
            return sample.first_seen + (5.0 + 6.0 * u) * DAY
        if _unit_hash(self.name, sample.sha256, "cov") >= self.coverage:
            return None
        # Exponential lag via inverse CDF on a deterministic uniform.
        u = _unit_hash(self.name, sample.sha256, "lag")
        u = min(max(u, 1e-12), 1 - 1e-12)
        lag = -self.mean_lag_days * DAY * math.log(1.0 - u)
        base = sample.first_seen
        if sample.fresh:
            # Repacked moments before delivery: the lag clock starts at
            # first_seen (scan time), so day-0 scans come back clean.
            return base + max(lag, 0.25 * DAY)
        return base + lag

    def detects(self, sample: PayloadSample, at_time: float) -> bool:
        """Does this engine flag the sample when scanned at ``at_time``?"""
        when = self.detection_time(sample)
        return when is not None and at_time >= when


def build_engine_fleet() -> list[AvEngine]:
    """The 56-engine fleet with per-engine quality variation."""
    fleet = []
    for index, name in enumerate(_ENGINE_NAMES):
        quality = 0.7 + 0.3 * _unit_hash(name, "quality")
        fleet.append(
            AvEngine(
                name=name,
                index=index,
                coverage=0.65 + 0.3 * quality,
                mean_lag_days=9.25 / quality,
                content_capable=index in _CONTENT_CAPABLE,
            )
        )
    return fleet
