"""VirusTotal aggregator simulation.

Provides the paper's comparison baseline: submit payloads (or whole
traces) and count engine positives.  The paper's convention — a sample
is "flagged by VirusTotal" when **at least 3** detectors report it
malicious (the conservative ensemble of Section II) — is the default
verdict rule.  A per-submission timeout model reproduces the 110/1179
timeouts footnoted under Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Trace
from repro.core.payloads import is_exploit_type
from repro.vtsim.engines import AvEngine, DAY, PayloadSample, build_engine_fleet, _unit_hash

__all__ = ["ScanResult", "VirusTotalSim", "samples_from_trace"]


@dataclass(frozen=True)
class ScanResult:
    """Outcome of scanning one sample."""

    sample: PayloadSample
    positives: int
    total: int
    timed_out: bool
    engines: tuple[str, ...] = ()

    def flagged(self, min_positives: int = 3) -> bool:
        """The paper's >=3-detector malicious verdict."""
        return not self.timed_out and self.positives >= min_positives


class VirusTotalSim:
    """The simulated aggregator.

    Args:
        timeout_rate: per-submission probability of a scan timing out
            (Table V observed 110 timeouts over 7489+1500 submissions of
            which the infections' share matches ~1.5%).
        min_positives: engines needed for a malicious verdict.
    """

    def __init__(self, timeout_rate: float = 0.015, min_positives: int = 3):
        self.engines: list[AvEngine] = build_engine_fleet()
        self.timeout_rate = timeout_rate
        self.min_positives = min_positives
        self.submissions = 0
        self.timeouts = 0

    def scan(self, sample: PayloadSample, at_time: float) -> ScanResult:
        """Scan one sample at a given wall-clock time."""
        self.submissions += 1
        timed_out = _unit_hash("vt-timeout", sample.sha256,
                               round(at_time / DAY)) < self.timeout_rate
        if timed_out:
            self.timeouts += 1
            return ScanResult(sample=sample, positives=0,
                              total=len(self.engines), timed_out=True)
        hits = tuple(
            engine.name
            for engine in self.engines
            if engine.detects(sample, at_time)
        )
        return ScanResult(
            sample=sample,
            positives=len(hits),
            total=len(self.engines),
            timed_out=False,
            engines=hits,
        )

    def scan_trace(self, trace: Trace, at_time: float | None = None) -> ScanResult:
        """Scan a whole trace: the verdict of its worst-scoring payload.

        ``at_time`` defaults to the end of the trace (scan right after
        capture, the Table V workflow).
        """
        samples = samples_from_trace(trace)
        if at_time is None:
            last = trace.transactions[-1] if trace.transactions else None
            at_time = last.timestamp if last else 0.0
        best: ScanResult | None = None
        for sample in samples:
            result = self.scan(sample, at_time)
            if best is None or result.positives > best.positives or (
                best.timed_out and not result.timed_out
            ):
                best = result
        if best is None:
            # No downloadable payloads at all: clean, zero positives.
            placeholder = PayloadSample(sha256="empty", malicious=False)
            best = ScanResult(sample=placeholder, positives=0,
                              total=len(self.engines), timed_out=False)
        return best


#: Share of infection *episodes* whose payloads arrive freshly repacked
#: (exploit kits repack per victim, so freshness is an episode property,
#: not a per-file coin flip) — the principal reason AV lags behind
#: on-the-wire detection.  Calibrated so the fleet's trace-level
#: detection rate on the validation corpus lands near Table V's 84.3%.
_FRESH_FRACTION = 0.145


def samples_from_trace(trace: Trace) -> list[PayloadSample]:
    """Derive scannable payload samples from a trace's downloads."""
    samples: list[PayloadSample] = []
    start = trace.transactions[0].timestamp if trace.transactions else 0.0
    malicious = trace.is_infection
    scenario = str(trace.meta.get("scenario", ""))
    suspicious = scenario in ("unofficial_download", "torrent")
    compressed = bool(trace.meta.get("compressed_payload")) or bool(
        trace.meta.get("stealth")
    )
    trace_key = trace.meta.get("exploit_host", trace.origin) or str(start)
    fresh_episode = _unit_hash("fresh-episode", trace_key) < _FRESH_FRACTION
    for index, txn in enumerate(trace.transactions):
        ptype = txn.payload_type
        from repro.core.payloads import PayloadType, is_downloadable

        if txn.status != 200 or not is_downloadable(ptype):
            continue
        sha = f"{hash((trace.origin, txn.server, txn.request.uri, index)) & ((1 << 64) - 1):016x}"
        is_payload = malicious and (
            is_exploit_type(ptype)
            or (compressed and ptype is PayloadType.ARCHIVE)
        )
        fresh = is_payload and fresh_episode
        samples.append(
            PayloadSample(
                sha256=sha,
                malicious=is_payload,
                content_borne=False,
                first_seen=start - (0.0 if fresh else 20 * DAY),
                fresh=fresh,
                reputation="suspicious" if suspicious else "normal",
            )
        )
    return samples
