"""Simulated VirusTotal: 56 lag-modelled AV engines (DESIGN.md §2)."""

from repro.vtsim.engines import DAY, AvEngine, PayloadSample, build_engine_fleet
from repro.vtsim.virustotal import ScanResult, VirusTotalSim, samples_from_trace

__all__ = [
    "AvEngine",
    "DAY",
    "PayloadSample",
    "ScanResult",
    "VirusTotalSim",
    "build_engine_fleet",
    "samples_from_trace",
]
