"""Feature registry: the 37 payload-agnostic features of Table II.

Each :class:`FeatureSpec` records the paper's feature id (f1–f37), name,
group (HLF/GF/HF/TF), whether the paper introduces it as novel, and the
prior work it is otherwise reused from.  The registry drives extraction
order (feature vector index = registry order), the Table III feature-
group ablation, and the Table IV ranking labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FeatureGroup", "FeatureSpec", "FEATURES", "feature_names",
           "indices_of_groups", "spec_by_name", "NUM_FEATURES"]


class FeatureGroup(enum.Enum):
    """Feature grouping of Table II."""

    HIGH_LEVEL = "HLF"
    GRAPH = "GF"
    HEADER = "HF"
    TEMPORAL = "TF"


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata for one feature column."""

    fid: str
    name: str
    group: FeatureGroup
    description: str
    novel: bool = True
    citation: str = ""


_H = FeatureGroup.HIGH_LEVEL
_G = FeatureGroup.GRAPH
_F = FeatureGroup.HEADER
_T = FeatureGroup.TEMPORAL

#: Table II, in feature-vector order.
FEATURES: tuple[FeatureSpec, ...] = (
    FeatureSpec("f1", "origin", _H, "whether origin is known or not",
                novel=False, citation="[25]"),
    FeatureSpec("f2", "x_flash_version", _H, "whether X-Flash version is set"),
    FeatureSpec("f3", "wcg_size", _H, "size of a WCG (transactions)",
                novel=False, citation="[12]"),
    FeatureSpec("f4", "conversation_length", _H,
                "number of unique hosts involved in the WCG"),
    FeatureSpec("f5", "avg_uris_per_host", _H, "average URIs per host",
                novel=False, citation="[9]"),
    FeatureSpec("f6", "avg_uri_length", _H, "average URI length"),
    FeatureSpec("f7", "order", _G, "number of nodes in a WCG",
                novel=False, citation="[12, 25]"),
    FeatureSpec("f8", "size", _G, "number of edges of a WCG",
                novel=False, citation="[12]"),
    FeatureSpec("f9", "degree", _G,
                "number of edges a node shares with other nodes (max)"),
    FeatureSpec("f10", "density", _G,
                "closeness of edge count to the maximum possible",
                novel=False, citation="[12]"),
    FeatureSpec("f11", "volume", _G, "sum of node degrees over all nodes"),
    FeatureSpec("f12", "diameter", _G, "longest distance between node pairs",
                novel=False, citation="[12]"),
    FeatureSpec("f13", "avg_in_degree", _G, "average incoming edges per node"),
    FeatureSpec("f14", "avg_out_degree", _G, "average outgoing edges per node"),
    FeatureSpec("f15", "reciprocity", _G,
                "likelihood of nodes to be mutually linked"),
    FeatureSpec("f16", "avg_degree_centrality", _G,
                "average of number of ties a node has"),
    FeatureSpec("f17", "avg_closeness_centrality", _G,
                "average reciprocal of summed distances to all other nodes"),
    FeatureSpec("f18", "avg_betweenness_centrality", _G,
                "average fraction of shortest paths through a node"),
    FeatureSpec("f19", "avg_load_centrality", _G,
                "average fraction of all shortest paths through a node"),
    FeatureSpec("f20", "avg_node_centrality", _G,
                "average node connectivity (disconnecting-set size)"),
    FeatureSpec("f21", "avg_clustering_coefficient", _G,
                "average clustering coefficient",
                novel=False, citation="[12]"),
    FeatureSpec("f22", "avg_neighbor_degree", _G,
                "average degree of a node's neighbors"),
    FeatureSpec("f23", "avg_degree_connectivity", _G,
                "average degree of connected nodes"),
    FeatureSpec("f24", "avg_k_nearest_neighbors", _G,
                "average number of nodes within k hops of each node"),
    FeatureSpec("f25", "avg_pagerank", _G,
                "average PageRank importance of a node"),
    FeatureSpec("f26", "gets", _F, "total GET methods in a WCG"),
    FeatureSpec("f27", "posts", _F, "total POST methods in a WCG"),
    FeatureSpec("f28", "other_methods", _F,
                "total less-common methods (PUT, DELETE, ...)"),
    FeatureSpec("f29", "http_10x", _F, "total informational responses"),
    FeatureSpec("f30", "http_20x", _F, "total success responses"),
    FeatureSpec("f31", "http_30x", _F, "total redirection responses"),
    FeatureSpec("f32", "http_40x", _F, "total client-error responses"),
    FeatureSpec("f33", "http_50x", _F, "total server-error responses"),
    FeatureSpec("f34", "referrer_ctrs", _F, "URIs with referrer set",
                novel=False, citation="[16, 25]"),
    FeatureSpec("f35", "no_referrer_ctrs", _F, "URIs with empty referrer",
                novel=False, citation="[16, 25]"),
    FeatureSpec("f36", "duration", _T,
                "average duration to access a single URI (seconds)"),
    FeatureSpec("f37", "avg_inter_transaction_time", _T,
                "average time between consecutive transactions (seconds)"),
)

NUM_FEATURES = len(FEATURES)

_BY_NAME = {spec.name: index for index, spec in enumerate(FEATURES)}


def feature_names() -> list[str]:
    """All feature names in vector order."""
    return [spec.name for spec in FEATURES]


def indices_of_groups(groups: set[FeatureGroup]) -> list[int]:
    """Vector indices of the features belonging to ``groups``."""
    return [i for i, spec in enumerate(FEATURES) if spec.group in groups]


def spec_by_name(name: str) -> FeatureSpec:
    """Look up a :class:`FeatureSpec` by its short name."""
    try:
        return FEATURES[_BY_NAME[name]]
    except KeyError:
        raise KeyError(f"unknown feature {name!r}") from None
