"""The 37 payload-agnostic features of Table II and their extractor."""

from repro.features.extractor import (
    FeatureExtractor,
    extract_features,
    extract_matrix,
)
from repro.features.graph import graph_features
from repro.features.header import header_features
from repro.features.high_level import high_level_features
from repro.features.registry import (
    FEATURES,
    NUM_FEATURES,
    FeatureGroup,
    FeatureSpec,
    feature_names,
    indices_of_groups,
    spec_by_name,
)
from repro.features.temporal import temporal_features

__all__ = [
    "FEATURES",
    "FeatureExtractor",
    "FeatureGroup",
    "FeatureSpec",
    "NUM_FEATURES",
    "extract_features",
    "extract_matrix",
    "feature_names",
    "graph_features",
    "header_features",
    "high_level_features",
    "indices_of_groups",
    "spec_by_name",
    "temporal_features",
]
