"""Graph-centric features f7–f25 (Table II, GFs).

Computed over the WCG's simple-digraph projection (parallel edges folded
into weights) except where the paper's definition is explicitly
multiplicity-sensitive (size, volume, degree, in/out degree, which read
the multigraph).

The nineteen features split into two cost tiers:

* :func:`scalar_graph_features` — order/size/degree/density/volume and
  the degree averages.  All are exact functions of the integer counters
  the WCG maintains per mutation, so reading them is O(1).
* :func:`topology_features` — diameter, reciprocity, centralities,
  connectivity, clustering, k-hop reach.  These run real graph
  algorithms, but every one of them is *multiplicity-invariant*: it
  depends only on the node set and the set of distinct host pairs (none
  consults the ``weight`` attribute).  They therefore only change when
  ``WebConversationGraph.structure_version`` moves, which is what lets
  the extractor cache them across edge-multiplicity-only updates.

Note on ``avg_pagerank``: the mean of PageRank values over all nodes is
identically ``1/order``.  Table IV confirms the authors computed exactly
this — Avg-pagerank, Avg-load-centrality, Avg-closeness-centrality and
Order all share the same gain ratio (0.309 ± 0.011), which only happens
when they are deterministic transforms of one another on this data.  We
keep the paper-faithful definition.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.wcg import WebConversationGraph

__all__ = ["graph_features", "scalar_graph_features", "topology_features",
           "average_node_connectivity_sampled", "avg_nodes_within_k",
           "sample_connectivity_pairs"]

#: Pair-sample cap for average node connectivity on large graphs.
_CONNECTIVITY_PAIR_CAP = 120


def sample_connectivity_pairs(
    count: int,
    pair_cap: int = _CONNECTIVITY_PAIR_CAP,
    seed: int | None = None,
) -> list[tuple[int, int]]:
    """The (i, j) index pairs connectivity averages over, i < j.

    All pairs when there are at most ``pair_cap``; otherwise a seeded
    sample (default seed derived from ``count``, so the same graph order
    always draws the same pairs).  Both the object-walk path and the
    columnar kernels in :mod:`repro.features.topology` route through
    this one function — sharing the rng stream *and* the enumeration
    order is what keeps their f20 values bit-identical.
    """
    if count < 2:
        return []
    pairs = [(a, b) for a in range(count) for b in range(a + 1, count)]
    if len(pairs) <= pair_cap:
        return pairs
    if seed is None:
        seed = count * 2654435761 % (2**32)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=pair_cap, replace=False)
    return [pairs[int(i)] for i in chosen]


def average_node_connectivity_sampled(
    graph: nx.Graph,
    pair_cap: int = _CONNECTIVITY_PAIR_CAP,
    seed: int | None = None,
) -> float:
    """Average local node connectivity over (a sample of) node pairs.

    Exact for graphs whose pair count is below ``pair_cap``; otherwise a
    deterministic sample of pairs is used — seeded from the graph order
    by default, or from an explicit ``seed`` for reproducible runs.

    The auxiliary flow network and residual network are built once and
    reused across all pairs — the naive per-pair rebuild dominates WCG
    feature-extraction time otherwise.
    """
    from networkx.algorithms.connectivity import (
        build_auxiliary_node_connectivity,
        local_node_connectivity,
    )
    from networkx.algorithms.flow import build_residual_network

    nodes = list(graph.nodes)
    count = len(nodes)
    if count < 2:
        return 0.0
    pairs = [
        (nodes[a], nodes[b])
        for a, b in sample_connectivity_pairs(count, pair_cap, seed)
    ]
    auxiliary = build_auxiliary_node_connectivity(graph)
    residual = build_residual_network(auxiliary, "capacity")
    total = 0.0
    for a, b in pairs:
        total += local_node_connectivity(
            graph, a, b, auxiliary=auxiliary, residual=residual
        )
    return total / len(pairs)


def avg_nodes_within_k(graph: nx.Graph, k: int = 2) -> float:
    """Average number of nodes within ``k`` hops of each node (f24)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    total = 0
    for node in graph.nodes:
        lengths = nx.single_source_shortest_path_length(graph, node, cutoff=k)
        total += len(lengths) - 1  # exclude the node itself
    return total / graph.number_of_nodes()


def _mean(values) -> float:
    collected = list(values)
    if not collected:
        return 0.0
    return float(np.mean(collected))


def scalar_graph_features(wcg: WebConversationGraph) -> dict[str, float]:
    """The counter-backed graph features — O(1), no graph traversal.

    Each value is an exact integer identity of the edge-walk
    formulation: max degree is a running maximum (degrees only grow),
    volume is twice the edge count (every edge contributes one in- and
    one out-degree), density reads the distinct-pair counter that equals
    the simple digraph's edge count.
    """
    counters = wcg.counters
    order = wcg.order
    size = wcg.size
    return {
        "order": float(order),
        "size": float(size),
        "degree": float(counters.max_degree) if order else 0.0,
        "density": (
            counters.distinct_pairs / (order * (order - 1))
            if order > 1
            else 0.0
        ),
        "volume": float(2 * size),
        "avg_in_degree": size / order if order else 0.0,
        "avg_out_degree": size / order if order else 0.0,
        # Paper-faithful: mean PageRank == 1/order exactly (PageRank
        # values sum to 1 over the graph; see module docstring), so the
        # power iteration is pure waste — compute the identity directly.
        "avg_pagerank": 1.0 / order if order > 0 else 0.0,
    }


def topology_features(wcg: WebConversationGraph) -> dict[str, float]:
    """The algorithmic graph features — recompute only on structure change."""
    simple = wcg.simple_graph()
    undirected = simple.to_undirected()
    order = simple.number_of_nodes()

    features: dict[str, float] = {}
    if order > 1 and nx.is_connected(undirected):
        features["diameter"] = float(nx.diameter(undirected))
    elif order > 1:
        components = (
            undirected.subgraph(c) for c in nx.connected_components(undirected)
        )
        features["diameter"] = float(
            max(
                (nx.diameter(c) for c in components if c.number_of_nodes() > 1),
                default=0,
            )
        )
    else:
        features["diameter"] = 0.0
    features["reciprocity"] = (
        float(nx.overall_reciprocity(simple))
        if simple.number_of_edges() > 0
        else 0.0
    )
    features["avg_degree_centrality"] = _mean(
        nx.degree_centrality(simple).values()
    ) if order > 1 else 0.0
    features["avg_closeness_centrality"] = _mean(
        nx.closeness_centrality(simple).values()
    ) if order > 1 else 0.0
    features["avg_betweenness_centrality"] = _mean(
        nx.betweenness_centrality(simple, normalized=True).values()
    ) if order > 2 else 0.0
    features["avg_load_centrality"] = _mean(
        nx.load_centrality(undirected, normalized=True).values()
    ) if order > 2 else 0.0
    features["avg_node_centrality"] = average_node_connectivity_sampled(
        undirected
    )
    features["avg_clustering_coefficient"] = (
        float(nx.average_clustering(undirected)) if order > 2 else 0.0
    )
    features["avg_neighbor_degree"] = _mean(
        nx.average_neighbor_degree(undirected).values()
    ) if order > 1 else 0.0
    degree_conn = nx.average_degree_connectivity(undirected)
    features["avg_degree_connectivity"] = _mean(degree_conn.values())
    features["avg_k_nearest_neighbors"] = avg_nodes_within_k(undirected, k=2)
    return features


def graph_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f7–f25 for one WCG (both tiers, uncached)."""
    features = scalar_graph_features(wcg)
    features.update(topology_features(wcg))
    return features
