"""Temporal features f36–f37 (Table II, TFs).

The two features that top the paper's gain-ratio ranking (Table IV):
infections run machine-paced (short inter-transaction gaps), human
browsing is think-time-paced.

Request timestamps are kept sorted by the WCG as edges arrive, so no
re-sort happens here.  f37 deliberately stays on
``np.mean(np.diff(...))`` rather than the telescoped
``(max - min) / (n - 1)`` — the two are not bit-identical in float64,
and the differential tests pin byte-identity between the live and batch
paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.wcg import WebConversationGraph

__all__ = ["temporal_features"]


def temporal_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f36–f37 for one WCG."""
    request_stamps = wcg.request_timestamps()
    total_uris = wcg.counters.total_uris
    duration = wcg.duration
    # f36: average duration to access a single URI.
    avg_duration = duration / total_uris if total_uris else 0.0
    # f37: average inter-transaction time.
    if len(request_stamps) > 1:
        gaps = np.diff(request_stamps)
        avg_gap = float(np.mean(gaps))
    else:
        avg_gap = 0.0
    return {
        "duration": avg_duration,
        "avg_inter_transaction_time": avg_gap,
    }
