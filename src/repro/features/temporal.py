"""Temporal features f36–f37 (Table II, TFs).

The two features that top the paper's gain-ratio ranking (Table IV):
infections run machine-paced (short inter-transaction gaps), human
browsing is think-time-paced.
"""

from __future__ import annotations

import numpy as np

from repro.core.wcg import EdgeKind, WebConversationGraph

__all__ = ["temporal_features"]


def temporal_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f36–f37 for one WCG."""
    request_stamps = sorted(
        data.timestamp for _, _, data in wcg.edges(EdgeKind.REQUEST)
    )
    total_uris = sum(len(wcg.node_data(h).uris) for h in wcg.hosts())
    duration = wcg.duration
    # f36: average duration to access a single URI.
    avg_duration = duration / total_uris if total_uris else 0.0
    # f37: average inter-transaction time.
    if len(request_stamps) > 1:
        gaps = np.diff(request_stamps)
        avg_gap = float(np.mean(gaps))
    else:
        avg_gap = 0.0
    return {
        "duration": avg_duration,
        "avg_inter_transaction_time": avg_gap,
    }
