"""Feature extraction engine: WCG -> 37-dimensional vector.

The extractor walks the registry order so vector index ``i`` always
corresponds to ``FEATURES[i]``; subset selection for the Table III
ablation happens downstream via :func:`repro.features.registry.indices_of_groups`.

Extraction is tiered for the on-the-wire path:

* the cheap tier (high-level, header, temporal, scalar graph features)
  reads the WCG's running counters — O(1) per feature;
* the expensive topology tier is *content-addressed*: every topology
  feature is a function of the graph's :func:`~repro.features.topology.
  structure_key` alone, so results live in a bounded LRU shared across
  graphs — sessions that repeat a conversation shape (the common case
  under real traffic) pay for it once.  A per-graph weak cache keyed on
  ``structure_version`` short-circuits the key computation for an
  unchanged graph;
* the assembled 37-vector is cached per graph keyed on ``version``, so
  scoring an unchanged WCG never re-extracts anything.

:meth:`FeatureExtractor.extract_batch` is the multi-graph entry point:
cache-fresh rows are reused, the rest are assembled in one vectorized
pass (:func:`repro.features.batch.assemble_rows`) — this is what the
detector's ``score_batch`` flush, :func:`extract_matrix`, and
:func:`repro.learning.dataset.dataset_from_graphs` ride.

The topology tier has two engines, switched by the
``REPRO_TOPOLOGY_ENGINE`` environment variable (or the constructor
argument): ``fast`` (default) runs the bit-exact structural kernels of
:mod:`repro.features.topology`; ``object`` runs the original networkx
walk (:func:`repro.features.graph.topology_features`) and exists as the
reference the differential tests compare against.

Cache lifetime: the per-graph caches are
:class:`weakref.WeakKeyDictionary` — entries vanish with their graph —
and the structural LRU is bounded (``structure_cache_size``, default
4096 entries of eleven floats), so a long-running tap extracting from
millions of session graphs holds constant extractor state.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict

import numpy as np

from repro.core.builder import build_wcg
from repro.core.model import Trace
from repro.core.wcg import WebConversationGraph
from repro.exceptions import FeatureError
from repro.features.batch import assemble_rows
from repro.features.graph import scalar_graph_features, topology_features
from repro.features.header import header_features
from repro.features.high_level import high_level_features
from repro.features.registry import FEATURES, NUM_FEATURES
from repro.features.temporal import temporal_features
from repro.features.topology import structural_topology_features, structure_key
from repro.obs import get_registry
from repro.parallel import parallel_map, resolve_n_jobs

__all__ = ["FeatureExtractor", "extract_features", "extract_matrix",
           "extract_matrix_batch", "extract_trace_features"]

#: Default bound on the shared structural topology LRU.
_STRUCTURE_CACHE_SIZE = 4096

_ENGINES = ("fast", "object")


def _default_engine() -> str:
    """Topology engine from ``REPRO_TOPOLOGY_ENGINE`` (default ``fast``)."""
    engine = os.environ.get("REPRO_TOPOLOGY_ENGINE", "fast").strip().lower()
    if engine not in _ENGINES:
        raise FeatureError(
            f"unknown topology engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


class FeatureExtractor:
    """Extractor of the 37 payload-agnostic features.

    Semantically stateless — the same WCG always yields the same vector
    — but carries memoization so repeated extraction of a live, growing
    WCG only pays for what actually changed, and graphs sharing a
    conversation shape share one topology computation.
    """

    def __init__(
        self,
        topology_engine: str | None = None,
        structure_cache_size: int = _STRUCTURE_CACHE_SIZE,
    ) -> None:
        if topology_engine is None:
            topology_engine = _default_engine()
        elif topology_engine not in _ENGINES:
            raise FeatureError(
                f"unknown topology engine {topology_engine!r}; "
                f"expected one of {_ENGINES}"
            )
        self._engine = topology_engine
        self._vector_cache: "weakref.WeakKeyDictionary[WebConversationGraph, tuple[int, np.ndarray]]" = (
            weakref.WeakKeyDictionary()
        )
        self._topology_cache: "weakref.WeakKeyDictionary[WebConversationGraph, tuple[int, dict[str, float]]]" = (
            weakref.WeakKeyDictionary()
        )
        # Shared content-addressed topology results, LRU-bounded so a
        # long-running tap cannot accumulate unbounded structures.
        self._structural: "OrderedDict[tuple[int, tuple[tuple[int, int], ...]], dict[str, float]]" = (
            OrderedDict()
        )
        self._structure_cache_size = max(1, structure_cache_size)
        metrics = get_registry()
        self._metrics = metrics
        self._c_vec_hits = metrics.counter("features.vector_cache_hits")
        self._c_vec_misses = metrics.counter("features.vector_cache_misses")
        self._c_topo_hits = metrics.counter("features.topology_cache_hits")
        self._c_topo_misses = metrics.counter("features.topology_cache_misses")
        self._c_batch_extracts = metrics.counter("features.batch_extracts")
        self._c_batch_rows = metrics.counter("features.batch_rows")

    @property
    def topology_engine(self) -> str:
        """The active topology engine (``fast`` or ``object``)."""
        return self._engine

    @property
    def structure_cache_len(self) -> int:
        """Entries currently held by the structural LRU (for tests)."""
        return len(self._structural)

    def extract(self, wcg: WebConversationGraph) -> np.ndarray:
        """Feature vector for one WCG, in registry order.

        The returned array is shared with the cache and marked
        read-only; copy it before mutating.
        """
        cached = self._vector_cache.get(wcg)
        if cached is not None and cached[0] == wcg.version:
            self._c_vec_hits.inc()
            return cached[1]
        self._c_vec_misses.inc()
        values: dict[str, float] = {}
        values.update(high_level_features(wcg))
        values.update(scalar_graph_features(wcg))
        values.update(self._topology(wcg))
        values.update(header_features(wcg))
        values.update(temporal_features(wcg))
        vector = np.empty(NUM_FEATURES, dtype=np.float64)
        for index, spec in enumerate(FEATURES):
            try:
                vector[index] = values[spec.name]
            except KeyError:
                raise FeatureError(
                    f"extractor produced no value for {spec.fid} ({spec.name})"
                ) from None
        if not np.all(np.isfinite(vector)):
            bad = [FEATURES[i].name for i in np.where(~np.isfinite(vector))[0]]
            raise FeatureError(f"non-finite feature values: {bad}")
        vector.flags.writeable = False
        self._vector_cache[wcg] = (wcg.version, vector)
        return vector

    def extract_batch(
        self, graphs: list[WebConversationGraph]
    ) -> np.ndarray:
        """The ``(len(graphs), 37)`` matrix, rows in input order.

        Byte-identical per row to :meth:`extract` on the same graph —
        cache-fresh rows are reused verbatim, stale/new rows go through
        one vectorized :func:`~repro.features.batch.assemble_rows` pass
        with topology served from the structural cache.  Returns a
        fresh writable matrix (rows are *copied* out of the cache).
        """
        graphs = list(graphs)
        self._c_batch_extracts.inc()
        self._c_batch_rows.inc(len(graphs))
        if not graphs:
            return np.empty((0, NUM_FEATURES), dtype=np.float64)
        with self._metrics.span("features.extract_batch"):
            rows: list[np.ndarray | None] = [None] * len(graphs)
            fresh: list[int] = []
            for i, wcg in enumerate(graphs):
                cached = self._vector_cache.get(wcg)
                if cached is not None and cached[0] == wcg.version:
                    self._c_vec_hits.inc()
                    rows[i] = cached[1]
                else:
                    self._c_vec_misses.inc()
                    fresh.append(i)
            if fresh:
                fresh_graphs = [graphs[i] for i in fresh]
                topology_rows = [self._topology(g) for g in fresh_graphs]
                matrix = assemble_rows(fresh_graphs, topology_rows)
                for j, i in enumerate(fresh):
                    row = matrix[j]
                    row.flags.writeable = False
                    self._vector_cache[graphs[i]] = (graphs[i].version, row)
                    rows[i] = row
            return np.vstack(rows)

    def _topology(self, wcg: WebConversationGraph) -> dict[str, float]:
        """The expensive tier: per-graph memo, then the structural LRU."""
        cached = self._topology_cache.get(wcg)
        if cached is not None and cached[0] == wcg.structure_version:
            self._c_topo_hits.inc()
            return cached[1]
        key = structure_key(wcg)
        values = self._structural.get(key)
        if values is not None:
            self._structural.move_to_end(key)
            self._c_topo_hits.inc()
        else:
            self._c_topo_misses.inc()
            with self._metrics.span("features.topology"):
                if self._engine == "object":
                    values = topology_features(wcg)
                else:
                    values = structural_topology_features(*key)
            self._structural[key] = values
            while len(self._structural) > self._structure_cache_size:
                self._structural.popitem(last=False)
        self._topology_cache[wcg] = (wcg.structure_version, values)
        return values

    def extract_trace(self, trace: Trace) -> np.ndarray:
        """Build the WCG for a trace and extract its features."""
        return self.extract(build_wcg(trace))


def extract_features(wcg: WebConversationGraph) -> np.ndarray:
    """Module-level convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor().extract(wcg)


def extract_matrix_batch(graphs: list[WebConversationGraph]) -> np.ndarray:
    """One-pass ``(n_graphs, 37)`` matrix for pre-built WCGs."""
    return FeatureExtractor().extract_batch(graphs)


def extract_trace_features(trace: Trace) -> np.ndarray:
    """Feature row for one trace (module-level so process pools can ship it)."""
    return FeatureExtractor().extract_trace(trace)


def extract_matrix(
    traces: list[Trace], n_jobs: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Extract a design matrix and label vector from labelled traces.

    Returns ``(X, y)`` with ``y[i] = 1`` for infections, ``0`` for benign.
    Raises :class:`FeatureError` when a trace is unlabelled.  The serial
    path builds every WCG and rides one :meth:`FeatureExtractor.
    extract_batch` pass (sharing topology across repeated conversation
    shapes); ``n_jobs`` fans per-trace extraction out over a process
    pool instead (``-1`` = all cores).  Row order always matches the
    input order, and both paths produce byte-identical matrices.
    """
    for trace in traces:
        if trace.label is None:
            raise FeatureError("extract_matrix requires labelled traces")
    if not traces:
        return np.empty((0, NUM_FEATURES)), np.empty(0)
    labels = [1.0 if trace.is_infection else 0.0 for trace in traces]
    if min(resolve_n_jobs(n_jobs), len(traces)) <= 1:
        graphs = [build_wcg(trace) for trace in traces]
        return FeatureExtractor().extract_batch(graphs), np.array(labels)
    rows = parallel_map(extract_trace_features, traces, n_jobs=n_jobs)
    return np.vstack(rows), np.array(labels)
