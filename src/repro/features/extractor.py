"""Feature extraction engine: WCG -> 37-dimensional vector.

The extractor walks the registry order so vector index ``i`` always
corresponds to ``FEATURES[i]``; subset selection for the Table III
ablation happens downstream via :func:`repro.features.registry.indices_of_groups`.

Extraction is tiered for the on-the-wire path:

* the cheap tier (high-level, header, temporal, scalar graph features)
  reads the WCG's running counters — O(1) per feature;
* the expensive topology tier is cached per graph and recomputed only
  when ``structure_version`` moves (a new node or new host pair);
* the assembled 37-vector is cached per graph keyed on ``version``, so
  scoring an unchanged WCG never re-extracts anything.

Both caches are :class:`weakref.WeakKeyDictionary` keyed on the graph
object — entries vanish with their graph, so a long-lived extractor
inside the detector cannot accumulate state for dead sessions.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.builder import build_wcg
from repro.core.model import Trace
from repro.core.wcg import WebConversationGraph
from repro.exceptions import FeatureError
from repro.features.graph import scalar_graph_features, topology_features
from repro.features.header import header_features
from repro.features.high_level import high_level_features
from repro.features.registry import FEATURES, NUM_FEATURES
from repro.features.temporal import temporal_features
from repro.obs import get_registry
from repro.parallel import parallel_map

__all__ = ["FeatureExtractor", "extract_features", "extract_matrix",
           "extract_trace_features"]


class FeatureExtractor:
    """Extractor of the 37 payload-agnostic features.

    Semantically stateless — the same WCG always yields the same vector
    — but carries per-graph memoization so repeated extraction of a
    live, growing WCG only pays for what actually changed.
    """

    def __init__(self) -> None:
        self._vector_cache: "weakref.WeakKeyDictionary[WebConversationGraph, tuple[int, np.ndarray]]" = (
            weakref.WeakKeyDictionary()
        )
        self._topology_cache: "weakref.WeakKeyDictionary[WebConversationGraph, tuple[int, dict[str, float]]]" = (
            weakref.WeakKeyDictionary()
        )
        metrics = get_registry()
        self._metrics = metrics
        self._c_vec_hits = metrics.counter("features.vector_cache_hits")
        self._c_vec_misses = metrics.counter("features.vector_cache_misses")
        self._c_topo_hits = metrics.counter("features.topology_cache_hits")
        self._c_topo_misses = metrics.counter("features.topology_cache_misses")

    def extract(self, wcg: WebConversationGraph) -> np.ndarray:
        """Feature vector for one WCG, in registry order.

        The returned array is shared with the cache and marked
        read-only; copy it before mutating.
        """
        cached = self._vector_cache.get(wcg)
        if cached is not None and cached[0] == wcg.version:
            self._c_vec_hits.inc()
            return cached[1]
        self._c_vec_misses.inc()
        values: dict[str, float] = {}
        values.update(high_level_features(wcg))
        values.update(scalar_graph_features(wcg))
        values.update(self._topology(wcg))
        values.update(header_features(wcg))
        values.update(temporal_features(wcg))
        vector = np.empty(NUM_FEATURES, dtype=np.float64)
        for index, spec in enumerate(FEATURES):
            try:
                vector[index] = values[spec.name]
            except KeyError:
                raise FeatureError(
                    f"extractor produced no value for {spec.fid} ({spec.name})"
                ) from None
        if not np.all(np.isfinite(vector)):
            bad = [FEATURES[i].name for i in np.where(~np.isfinite(vector))[0]]
            raise FeatureError(f"non-finite feature values: {bad}")
        vector.flags.writeable = False
        self._vector_cache[wcg] = (wcg.version, vector)
        return vector

    def _topology(self, wcg: WebConversationGraph) -> dict[str, float]:
        """The expensive tier, memoized on the graph's structure version."""
        cached = self._topology_cache.get(wcg)
        if cached is not None and cached[0] == wcg.structure_version:
            self._c_topo_hits.inc()
            return cached[1]
        self._c_topo_misses.inc()
        with self._metrics.span("features.topology"):
            values = topology_features(wcg)
        self._topology_cache[wcg] = (wcg.structure_version, values)
        return values

    def extract_trace(self, trace: Trace) -> np.ndarray:
        """Build the WCG for a trace and extract its features."""
        return self.extract(build_wcg(trace))


def extract_features(wcg: WebConversationGraph) -> np.ndarray:
    """Module-level convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor().extract(wcg)


def extract_trace_features(trace: Trace) -> np.ndarray:
    """Feature row for one trace (module-level so process pools can ship it)."""
    return FeatureExtractor().extract_trace(trace)


def extract_matrix(
    traces: list[Trace], n_jobs: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Extract a design matrix and label vector from labelled traces.

    Returns ``(X, y)`` with ``y[i] = 1`` for infections, ``0`` for benign.
    Raises :class:`FeatureError` when a trace is unlabelled.  Per-trace
    extraction is stateless, so ``n_jobs`` fans it out over a process
    pool (``-1`` = all cores); row order always matches the input order.
    """
    for trace in traces:
        if trace.label is None:
            raise FeatureError("extract_matrix requires labelled traces")
    if not traces:
        return np.empty((0, NUM_FEATURES)), np.empty(0)
    rows = parallel_map(extract_trace_features, traces, n_jobs=n_jobs)
    labels = [1.0 if trace.is_infection else 0.0 for trace in traces]
    return np.vstack(rows), np.array(labels)
