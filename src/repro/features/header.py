"""HTTP header features f26–f35 (Table II, HFs).

These capture the statistical signature of post-infection dynamics
(Section IV-B): GET/POST mix, response-code class counts, and
referrer-presence counters.
"""

from __future__ import annotations

from repro.core.wcg import EdgeKind, WebConversationGraph

__all__ = ["header_features"]

_COMMON_METHODS = {"GET", "POST"}


def header_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f26–f35 for one WCG."""
    gets = posts = others = 0
    with_ref = without_ref = 0
    for _, _, data in wcg.edges(EdgeKind.REQUEST):
        if data.method == "GET":
            gets += 1
        elif data.method == "POST":
            posts += 1
        else:
            others += 1
        if data.referrer:
            with_ref += 1
        else:
            without_ref += 1
    status_counts = {1: 0, 2: 0, 3: 0, 4: 0, 5: 0}
    for _, _, data in wcg.edges(EdgeKind.RESPONSE):
        klass = data.status // 100
        if klass in status_counts:
            status_counts[klass] += 1
    return {
        "gets": float(gets),
        "posts": float(posts),
        "other_methods": float(others),
        "http_10x": float(status_counts[1]),
        "http_20x": float(status_counts[2]),
        "http_30x": float(status_counts[3]),
        "http_40x": float(status_counts[4]),
        "http_50x": float(status_counts[5]),
        "referrer_ctrs": float(with_ref),
        "no_referrer_ctrs": float(without_ref),
    }
