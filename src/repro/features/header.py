"""HTTP header features f26–f35 (Table II, HFs).

These capture the statistical signature of post-infection dynamics
(Section IV-B): GET/POST mix, response-code class counts, and
referrer-presence counters.  All ten are direct reads of the tallies
the WCG updates per edge-add — no edge iteration.
"""

from __future__ import annotations

from repro.core.wcg import WebConversationGraph

__all__ = ["header_features"]


def header_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f26–f35 for one WCG."""
    counters = wcg.counters
    status = counters.status_classes
    return {
        "gets": float(counters.gets),
        "posts": float(counters.posts),
        "other_methods": float(counters.other_methods),
        "http_10x": float(status[1]),
        "http_20x": float(status[2]),
        "http_30x": float(status[3]),
        "http_40x": float(status[4]),
        "http_50x": float(status[5]),
        "referrer_ctrs": float(counters.with_referrer),
        "no_referrer_ctrs": float(counters.without_referrer),
    }
