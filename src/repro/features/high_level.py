"""High-level aggregate features f1–f6 (Table II, HLFs)."""

from __future__ import annotations

from repro.core.wcg import WebConversationGraph

__all__ = ["high_level_features"]


def high_level_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f1–f6 for one WCG."""
    request_edges = wcg.request_edges()
    uris_per_host: list[int] = []
    uri_lengths: list[int] = []
    for host in wcg.hosts():
        data = wcg.node_data(host)
        if data.uris:
            uris_per_host.append(len(data.uris))
            uri_lengths.extend(len(uri) for uri in data.uris)
    num_hosts = len(wcg.remote_hosts()) + 1  # remotes + victim

    total_uris = sum(uris_per_host)
    return {
        "origin": 1.0 if wcg.has_known_origin else 0.0,
        "x_flash_version": 1.0 if wcg.x_flash_version else 0.0,
        # WCG-Size: conversation volume in transactions (request edges).
        "wcg_size": float(len(request_edges)),
        "conversation_length": float(num_hosts),
        "avg_uris_per_host": (
            total_uris / len(uris_per_host) if uris_per_host else 0.0
        ),
        "avg_uri_length": (
            sum(uri_lengths) / len(uri_lengths) if uri_lengths else 0.0
        ),
    }
