"""High-level aggregate features f1–f6 (Table II, HLFs).

All six are exact functions of the running counters the WCG maintains
(:class:`repro.core.wcg.GraphCounters`), so extraction is O(1): the
divisions below operate on the same integers the former host/edge walk
accumulated, making the values bit-identical to the walk formulation.
"""

from __future__ import annotations

from repro.core.wcg import WebConversationGraph

__all__ = ["high_level_features"]


def high_level_features(wcg: WebConversationGraph) -> dict[str, float]:
    """Compute f1–f6 for one WCG."""
    counters = wcg.counters
    # Remote hosts = all nodes minus the victim and origin nodes (which
    # coincide when the victim name equals the origin name).
    remotes = wcg.order - (1 if wcg.victim == wcg.origin else 2)
    return {
        "origin": 1.0 if wcg.has_known_origin else 0.0,
        "x_flash_version": 1.0 if wcg.x_flash_version else 0.0,
        # WCG-Size: conversation volume in transactions (request edges).
        "wcg_size": float(counters.request_edges),
        "conversation_length": float(remotes + 1),  # remotes + victim
        "avg_uris_per_host": (
            counters.total_uris / counters.uri_hosts
            if counters.uri_hosts
            else 0.0
        ),
        "avg_uri_length": (
            counters.total_uri_length / counters.total_uris
            if counters.total_uris
            else 0.0
        ),
    }
