"""Bit-exact structural topology kernels (DESIGN.md §14).

The eleven expensive graph features (f12, f15–f24) are functions of the
WCG's *ordered structure* alone: the node count and the set of distinct
directed host pairs, with nodes taken in sorted-name order (the
canonical :meth:`~repro.core.wcg.WebConversationGraph.simple_graph`
projection).  This module computes them from that structure directly —
integer BFS/flow kernels plus float reductions performed in exactly the
operation order networkx uses — so the values are **bit-identical** to
the reference implementation in :func:`repro.features.graph.
topology_features` while skipping all graph-object construction.

Because the inputs are pure structure, results are shared across
graphs: two WCGs whose rank-pair sets coincide (common under real
traffic — sessions repeat shapes) hit the same cache entry.  The
bounded LRU lives in :class:`repro.features.extractor.FeatureExtractor`.

Exactness notes (verified against networkx 3.x on corpus + random
graphs, exact float equality):

* diameter / k-hop reach / closeness ride integer BFS; the only float
  ops are the final divisions, replicated verbatim.
* clustering, neighbor degree, degree connectivity, degree centrality
  accumulate integers and divide in node order.
* sampled node connectivity is a unit-capacity max-flow (integer
  values); the pair sample reuses the exact rng stream of
  :func:`repro.features.graph.average_node_connectivity_sampled`.
* betweenness (Brandes) and load (Newman) transcribe the networkx
  implementations operation for operation onto flat rank-indexed
  lists — identical because the reference graph's insertion order *is*
  sorted-name order, so rank indexing preserves every node/neighbor
  iteration order (and hence every float accumulation order) networkx
  sees, including load's ``(level, node)`` sort and betweenness's
  stack-pop accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.wcg import WebConversationGraph
from repro.features.graph import sample_connectivity_pairs

__all__ = ["structure_key", "structural_topology_features"]


def structure_key(wcg: WebConversationGraph) -> tuple[int, tuple[tuple[int, int], ...]]:
    """Content-addressed structure of a WCG's canonical projection.

    ``(n_nodes, sorted rank pairs)`` where ranks index the sorted host
    list.  Equal keys => equal simple graphs up to relabeling => equal
    topology features (they never read names or weights).
    """
    hosts = sorted(wcg.hosts())
    rank = {host: i for i, host in enumerate(hosts)}
    pairs = tuple(sorted(
        (rank[source], rank[target])
        for source, target in wcg._pair_multiplicity
    ))
    return len(hosts), pairs


def _und_adjacency(n: int, pairs) -> list[list[int]]:
    """Undirected adjacency lists, neighbor order matching
    ``DiGraph.to_undirected()`` on the sorted-insertion projection."""
    adj: list[list[int]] = [[] for _ in range(n)]
    seen: list[set[int]] = [set() for _ in range(n)]
    for u, v in pairs:
        if v not in seen[u]:
            seen[u].add(v)
            adj[u].append(v)
            seen[v].add(u)
            adj[v].append(u)
    return adj


def _bfs_dists(adj: list[list[int]], src: int, n: int) -> list[int]:
    dist = [-1] * n
    dist[src] = 0
    queue = [src]
    for v in queue:
        dv = dist[v] + 1
        for w in adj[v]:
            if dist[w] < 0:
                dist[w] = dv
                queue.append(w)
    return dist


def _diameter_and_knearest(n: int, und: list[list[int]]) -> tuple[float, float]:
    """f12 (max component diameter) and f24 (mean nodes within 2 hops),
    sharing one all-sources BFS sweep."""
    if n == 0:
        return 0.0, 0.0
    ecc_max = 0
    within2 = 0
    for s in range(n):
        dist = _bfs_dists(und, s, n)
        reached_max = max(d for d in dist if d >= 0)
        if reached_max > ecc_max:
            ecc_max = reached_max
        within2 += sum(1 for d in dist if 1 <= d <= 2)
    diameter = float(ecc_max) if n > 1 else 0.0
    return diameter, within2 / n


def _closeness_vals(n: int, pairs) -> list[float]:
    """Per-node closeness centrality, nx formula verbatim (reversed-
    adjacency BFS, Wasserman–Faust-free nx default)."""
    radj: list[list[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        radj[v].append(u)
    vals = []
    for s in range(n):
        dist = _bfs_dists(radj, s, n)
        totsp = 0
        reached = 0
        for d in dist:
            if d >= 0:
                reached += 1
                totsp += d
        c = 0.0
        if totsp > 0 and n > 1:
            c = (reached - 1.0) / totsp
            c *= (reached - 1.0) / (n - 1)
        vals.append(c)
    return vals


def _degree_centrality_vals(n: int, pairs) -> list[float]:
    deg = [0] * n
    for u, v in pairs:
        deg[u] += 1
        deg[v] += 1
    scale = 1.0 / (n - 1.0)
    return [d * scale for d in deg]


def _clustering_avg(n: int, und: list[list[int]]) -> float:
    """nx ``average_clustering``: per-node triangle ratio, then mean."""
    nbrs = [set(a) for a in und]
    coeffs = []
    for v in range(n):
        vs = nbrs[v]
        d = len(vs)
        triangles = sum(len(vs & nbrs[w]) for w in vs)
        coeffs.append(0 if triangles == 0 else triangles / (d * (d - 1)))
    return sum(coeffs) / len(coeffs)


def _neighbor_degree_vals(n: int, und: list[list[int]]) -> list[float]:
    deg = [len(a) for a in und]
    vals = []
    for v in range(n):
        d = deg[v]
        if d == 0:
            vals.append(0.0)
        else:
            vals.append(sum(deg[w] for w in und[v]) / d)
    return vals


def _degree_connectivity_vals(n: int, und: list[list[int]]) -> list[float]:
    """Values of nx ``average_degree_connectivity`` in its key-insertion
    (node-scan) order."""
    deg = [len(a) for a in und]
    dsum: dict[int, int] = {}
    dnorm: dict[int, int] = {}
    for v in range(n):
        k = deg[v]
        dsum[k] = dsum.get(k, 0) + sum(deg[w] for w in und[v])
        dnorm[k] = dnorm.get(k, 0) + k
    return [total if dnorm[k] == 0 else total / dnorm[k]
            for k, total in dsum.items()]


def _betweenness_vals(n: int, pairs) -> list[float]:
    """Brandes betweenness on the directed rank graph, nx verbatim.

    Same BFS discovery order (successors in sorted-pair order), same
    ``sigma`` float accumulation, same stack-pop ``delta`` pass, same
    ``1 / ((n-1) * (n-2))`` normalization — so every intermediate float
    equals what ``nx.betweenness_centrality(G, normalized=True)``
    produces on the sorted-insertion projection.  Caller guards n > 2.
    """
    succ: list[list[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        succ[u].append(v)
    bet = [0.0] * n
    for s in range(n):
        # _single_source_shortest_path_basic
        stack: list[int] = []
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma = [0.0] * n
        dist = [-1] * n
        sigma[s] = 1.0
        dist[s] = 0
        queue = [s]
        for v in queue:
            stack.append(v)
            dv = dist[v] + 1
            sigmav = sigma[v]
            for w in succ[v]:
                if dist[w] < 0:
                    queue.append(w)
                    dist[w] = dv
                if dist[w] == dv:
                    sigma[w] += sigmav
                    preds[w].append(v)
        # _accumulate_basic (delta starts as *int* zero, as in nx)
        delta: list[float] = [0] * n
        for w in reversed(stack):
            coeff = (1 + delta[w]) / sigma[w]
            for v in preds[w]:
                delta[v] += sigma[v] * coeff
            if w != s:
                bet[w] += delta[w]
    scale = 1 / ((n - 1) * (n - 2))
    return [b * scale for b in bet]


def _load_vals(n: int, und: list[list[int]]) -> list[float]:
    """Newman load centrality on the undirected projection, nx verbatim.

    Replicates ``nx.load_centrality(G.to_undirected(),
    normalized=True)``: per-source ``nx.predecessor`` level BFS, the
    ``(path length, node)`` sort (rank order == sorted-name order, so
    the tiebreak matches the reference's name sort), the reverse-pop
    credit pass with its early ``break`` at the source, and the final
    ``1.0 / ((n-1) * (n-2))`` scale.  Caller guards n > 2.
    """
    bet = [0.0] * n
    pred: list[list[int]] = [[] for _ in range(n)]
    level_of = [-1] * n
    credit = [0.0] * n
    for source in range(n):
        # nx.predecessor(G, source, return_seen=True)
        level = 0
        level_of[source] = 0
        pred[source] = []
        seen = [source]
        nextlevel = [source]
        while nextlevel:
            level += 1
            thislevel = nextlevel
            nextlevel = []
            for v in thislevel:
                for w in und[v]:
                    if level_of[w] < 0:
                        pred[w] = [v]
                        level_of[w] = level
                        nextlevel.append(w)
                        seen.append(w)
                    elif level_of[w] == level:
                        pred[w].append(v)
        # _node_betweenness: pop nodes in reverse (level, node) order
        onodes = sorted((level_of[v], v) for v in seen)
        for v in seen:
            credit[v] = 1.0
        for _, v in reversed(onodes):
            if v == source:
                continue  # the l > 0 filter
            vpred = pred[v]
            num_paths = len(vpred)
            share = credit[v] / num_paths
            for x in vpred:
                if x == source:
                    break
                credit[x] += share
        for v in seen:
            bet[v] += credit[v] - 1
            level_of[v] = -1  # reset for the next source
    scale = 1.0 / ((n - 1) * (n - 2))
    return [b * scale for b in bet]


def _build_flow_net(n: int, und: list[list[int]]):
    """Node-split unit-capacity flow network as flat arc arrays.

    Built once per structure; per-pair max-flow runs reset the capacity
    array instead of rebuilding the network (the rebuild dominated the
    naive kernel's runtime).
    """
    to: list[int] = []
    rev: list[int] = []
    init_cap: list[int] = []
    arcs: list[list[tuple[int, int]]] = [[] for _ in range(2 * n)]

    def add(u: int, v: int, cap: int) -> None:
        arcs[u].append((len(to), v))
        to.append(v)
        init_cap.append(cap)
        rev.append(len(to))
        arcs[v].append((len(to), u))
        to.append(u)
        init_cap.append(0)
        rev.append(len(to) - 2)

    for v in range(n):
        add(2 * v, 2 * v + 1, 1)
    for u in range(n):
        for w in und[u]:
            add(2 * u + 1, 2 * w, 1)
    return to, rev, init_cap, arcs


def _maxflow(to, rev, init_cap, adj, cap, s, t, n2, touched, bound) -> int:
    """Edmonds–Karp on the prepared arc arrays (integer flow value).

    The flow value is an exact integer, so the shortcuts here cannot
    perturb results: BFS stops the moment the sink is labeled (its
    parent chain is already a shortest augmenting path), augmentation
    stops at ``bound`` — ``min(deg(a), deg(b))`` is a true cut, making
    the would-be final path-less BFS provably futile — and only arcs an
    augmentation actually touched are reset between pairs.
    """
    for i in touched:
        cap[i] = init_cap[i]
    del touched[:]
    flow = 0
    while flow < bound:
        parent = [-1] * n2
        parent[s] = s
        queue = [s]
        found = False
        for v in queue:
            for a, w in adj[v]:
                if cap[a] > 0 and parent[w] < 0:
                    parent[w] = a
                    if w == t:
                        found = True
                        break
                    queue.append(w)
            if found:
                break
        if not found:
            return flow
        v = t
        while v != s:
            a = parent[v]
            cap[a] -= 1
            cap[rev[a]] += 1
            touched.append(a)
            touched.append(rev[a])
            v = to[rev[a]]
        flow += 1
    return flow


def _node_connectivity_sampled(n: int, und: list[list[int]]) -> float:
    """f20 — mean local node connectivity over the shared pair sample.

    Pair selection goes through :func:`repro.features.graph.
    sample_connectivity_pairs` with the default order-derived seed, so
    the columnar and object paths evaluate the *same* pairs and the
    integer flow totals sum in the same order.
    """
    if n < 2:
        return 0.0
    index_pairs = sample_connectivity_pairs(n)
    to, rev, init_cap, arcs = _build_flow_net(n, und)
    cap = list(init_cap)
    touched: list[int] = []
    deg = [len(a) for a in und]
    total = 0.0
    for a, b in index_pairs:
        bound = deg[a] if deg[a] < deg[b] else deg[b]
        total += _maxflow(to, rev, init_cap, arcs, cap,
                          2 * a + 1, 2 * b, 2 * n, touched, bound)
    return total / len(index_pairs)


def _mean(values) -> float:
    collected = list(values)
    if not collected:
        return 0.0
    return float(np.mean(collected))


def structural_topology_features(
    n: int, pairs: tuple[tuple[int, int], ...]
) -> dict[str, float]:
    """The eleven topology features of one :func:`structure_key`.

    Bit-identical to :func:`repro.features.graph.topology_features` on
    the WCG the key was taken from (see module docstring for why).
    """
    und = _und_adjacency(n, pairs)
    features: dict[str, float] = {}

    diameter, knearest = _diameter_and_knearest(n, und)
    features["diameter"] = diameter

    n_directed = len(pairs)
    if n_directed:
        n_undirected = sum(len(a) for a in und) // 2
        features["reciprocity"] = float(
            (n_directed - n_undirected) * 2 / n_directed
        )
    else:
        features["reciprocity"] = 0.0

    features["avg_degree_centrality"] = (
        _mean(_degree_centrality_vals(n, pairs)) if n > 1 else 0.0
    )
    features["avg_closeness_centrality"] = (
        _mean(_closeness_vals(n, pairs)) if n > 1 else 0.0
    )

    if n > 2:
        features["avg_betweenness_centrality"] = _mean(
            _betweenness_vals(n, pairs)
        )
        features["avg_load_centrality"] = _mean(_load_vals(n, und))
        features["avg_clustering_coefficient"] = _clustering_avg(n, und)
    else:
        features["avg_betweenness_centrality"] = 0.0
        features["avg_load_centrality"] = 0.0
        features["avg_clustering_coefficient"] = 0.0

    features["avg_node_centrality"] = _node_connectivity_sampled(n, und)
    features["avg_neighbor_degree"] = (
        _mean(_neighbor_degree_vals(n, und)) if n > 1 else 0.0
    )
    features["avg_degree_connectivity"] = _mean(
        _degree_connectivity_vals(n, und)
    )
    features["avg_k_nearest_neighbors"] = knearest
    return features
