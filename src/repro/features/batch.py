"""Vectorized multi-graph feature assembly (DESIGN.md §14).

:func:`assemble_rows` builds the ``(n_graphs, 37)`` design matrix in one
pass: the cheap tiers (high-level, scalar-graph, header, temporal) are
gathered into integer arrays — one element per graph — and reduced with
guarded ``np.divide`` columns instead of per-graph python dict
construction; the topology tier arrives precomputed (cached per
structure by the extractor) and is scattered into its columns.

Bit-identity contract: every cell equals what the scalar path
(:meth:`repro.features.extractor.FeatureExtractor.extract`) produces for
the same graph.  The arithmetic argument, pinned by
``tests/features/test_columnar_equivalence.py``:

* all counter reads are int64 → float64 conversions, exact below 2**53;
* ``np.divide`` on float64 operands is the same IEEE-754 operation as
  python's ``int / int`` after its exact int→float conversion, and the
  ``where=`` guard reproduces the scalar ``if b else 0.0`` branches;
* f37 keeps the per-graph ``np.mean(np.diff(...))`` reduction — it is
  order-sensitive in float64 and must match the scalar path verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.core.wcg import WebConversationGraph
from repro.exceptions import FeatureError
from repro.features.registry import FEATURES, NUM_FEATURES

__all__ = ["assemble_rows"]

#: feature name -> vector column index.
_IDX = {spec.name: index for index, spec in enumerate(FEATURES)}

#: Topology-tier names, scattered from the extractor's per-structure rows.
_TOPOLOGY_NAMES = (
    "diameter", "reciprocity", "avg_degree_centrality",
    "avg_closeness_centrality", "avg_betweenness_centrality",
    "avg_load_centrality", "avg_node_centrality",
    "avg_clustering_coefficient", "avg_neighbor_degree",
    "avg_degree_connectivity", "avg_k_nearest_neighbors",
)


def _guarded_divide(
    numerator: np.ndarray, denominator: np.ndarray
) -> np.ndarray:
    """Elementwise ``a / b if b else 0.0`` in float64."""
    out = np.zeros(len(numerator), dtype=np.float64)
    np.divide(
        numerator.astype(np.float64),
        denominator.astype(np.float64),
        out=out,
        where=denominator != 0,
    )
    return out


def assemble_rows(
    graphs: list[WebConversationGraph],
    topology_rows: list[dict[str, float]],
) -> np.ndarray:
    """The ``(len(graphs), 37)`` feature matrix, one vectorized pass.

    ``topology_rows[i]`` must hold the eleven topology features of
    ``graphs[i]`` (the extractor supplies them from its structural
    cache).  Raises :class:`FeatureError` on non-finite cells, naming
    the offending features like the scalar path does.
    """
    n = len(graphs)
    matrix = np.empty((n, NUM_FEATURES), dtype=np.float64)
    if n == 0:
        return matrix

    counters = [wcg.counters for wcg in graphs]
    order = np.array([wcg.order for wcg in graphs], dtype=np.int64)
    size = np.array([wcg.size for wcg in graphs], dtype=np.int64)
    total_uris = np.array([c.total_uris for c in counters], dtype=np.int64)
    uri_hosts = np.array([c.uri_hosts for c in counters], dtype=np.int64)
    total_uri_length = np.array(
        [c.total_uri_length for c in counters], dtype=np.int64
    )

    # -- high-level tier (f1–f6) ------------------------------------------
    matrix[:, _IDX["origin"]] = [
        1.0 if wcg.has_known_origin else 0.0 for wcg in graphs
    ]
    matrix[:, _IDX["x_flash_version"]] = [
        1.0 if wcg.x_flash_version else 0.0 for wcg in graphs
    ]
    matrix[:, _IDX["wcg_size"]] = np.array(
        [c.request_edges for c in counters], dtype=np.int64
    )
    # conversation_length = remotes + 1, remotes = order - (1 | 2).
    own_nodes = np.array(
        [1 if wcg.victim == wcg.origin else 2 for wcg in graphs],
        dtype=np.int64,
    )
    matrix[:, _IDX["conversation_length"]] = order - own_nodes + 1
    matrix[:, _IDX["avg_uris_per_host"]] = _guarded_divide(
        total_uris, uri_hosts
    )
    matrix[:, _IDX["avg_uri_length"]] = _guarded_divide(
        total_uri_length, total_uris
    )

    # -- scalar graph tier (f7–f11, f13–f14, f25) -------------------------
    matrix[:, _IDX["order"]] = order
    matrix[:, _IDX["size"]] = size
    max_degree = np.array([c.max_degree for c in counters], dtype=np.int64)
    matrix[:, _IDX["degree"]] = np.where(order > 0, max_degree, 0)
    distinct_pairs = np.array(
        [c.distinct_pairs for c in counters], dtype=np.int64
    )
    matrix[:, _IDX["density"]] = _guarded_divide(
        distinct_pairs, order * (order - 1)
    )
    matrix[:, _IDX["volume"]] = 2 * size
    avg_degree = _guarded_divide(size, order)
    matrix[:, _IDX["avg_in_degree"]] = avg_degree
    matrix[:, _IDX["avg_out_degree"]] = avg_degree
    matrix[:, _IDX["avg_pagerank"]] = _guarded_divide(
        np.ones(n, dtype=np.int64), order
    )

    # -- header tier (f26–f35) --------------------------------------------
    matrix[:, _IDX["gets"]] = [c.gets for c in counters]
    matrix[:, _IDX["posts"]] = [c.posts for c in counters]
    matrix[:, _IDX["other_methods"]] = [c.other_methods for c in counters]
    for status_class, name in (
        (1, "http_10x"), (2, "http_20x"), (3, "http_30x"),
        (4, "http_40x"), (5, "http_50x"),
    ):
        matrix[:, _IDX[name]] = [
            c.status_classes[status_class] for c in counters
        ]
    matrix[:, _IDX["referrer_ctrs"]] = [c.with_referrer for c in counters]
    matrix[:, _IDX["no_referrer_ctrs"]] = [
        c.without_referrer for c in counters
    ]

    # -- temporal tier (f36–f37) ------------------------------------------
    durations = np.array([wcg.duration for wcg in graphs], dtype=np.float64)
    matrix[:, _IDX["duration"]] = _guarded_divide(durations, total_uris)
    gaps = np.zeros(n, dtype=np.float64)
    for i, wcg in enumerate(graphs):
        stamps = wcg.request_timestamps()
        if len(stamps) > 1:
            # Order-sensitive float reduction: must mirror the scalar
            # path's np.mean(np.diff(...)) exactly (see module docstring).
            gaps[i] = float(np.mean(np.diff(stamps)))
    matrix[:, _IDX["avg_inter_transaction_time"]] = gaps

    # -- topology tier (f12, f15–f24), precomputed per structure ----------
    for name in _TOPOLOGY_NAMES:
        column = _IDX[name]
        for i, row in enumerate(topology_rows):
            matrix[i, column] = row[name]

    if not np.all(np.isfinite(matrix)):
        bad_rows, bad_cols = np.where(~np.isfinite(matrix))
        bad = sorted({FEATURES[int(c)].name for c in bad_cols})
        raise FeatureError(
            f"non-finite feature values in batch rows "
            f"{sorted({int(r) for r in bad_rows})}: {bad}"
        )
    return matrix
