"""Experiment table6/cs2: live detection in a mini-enterprise (Table VI).

Deploys the detector in the proxy position over the 48-hour three-host
stream, tabulates per-host payload mixes and alert counts, and verifies
the two content-borne PDFs are (expectedly) missed by DynaMiner while
the simulated VirusTotal flags them.
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.proxy import ProxySimulator
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, trained_classifier
from repro.synthesis.casestudy import enterprise_live_session
from repro.vtsim.engines import DAY, PayloadSample
from repro.vtsim.virustotal import VirusTotalSim

__all__ = ["run", "report"]

_HOSTS = ("win-host", "ubuntu-host", "macos-host")


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        session_seed: int = 48) -> dict:
    """Run the live case study; returns Table VI cells."""
    session = enterprise_live_session(seed=session_seed)
    classifier = trained_classifier(seed, scale)
    detector = OnTheWireDetector(
        classifier,
        policy=CluePolicy(redirect_threshold=3),
        config=DetectorConfig(),
    )
    proxy = ProxySimulator(detector)
    result = proxy.run([session.trace])

    per_host_downloads: dict[str, dict[str, int]] = {
        host: {} for host in _HOSTS
    }
    for record in session.downloads:
        counts = per_host_downloads.setdefault(record.client, {})
        counts[record.extension] = counts.get(record.extension, 0) + 1

    per_host_alerts = {
        host: len(result.alerts_for(host)) for host in _HOSTS
    }

    # VirusTotal on all downloads (post-hoc, as the authors did): it
    # should flag the 8 infectious downloads AND the 2 content-borne
    # PDFs that DynaMiner has no payload-level visibility into.
    vt = VirusTotalSim()
    start = session.trace.transactions[0].timestamp if session.trace.transactions else 0.0
    vt_flagged = 0
    content_pdf_flagged = 0
    for record in session.downloads:
        sample = PayloadSample(
            sha256=record.sha256,
            malicious=record.malicious,
            content_borne=record.content_borne,
            first_seen=start - 20 * DAY if record.malicious and not
            record.content_borne else start - 15 * DAY,
        )
        if vt.scan(sample, start + 2 * DAY).flagged():
            vt_flagged += 1
            if record.content_borne:
                content_pdf_flagged += 1
    return {
        "session": session,
        "replay": result,
        "per_host_downloads": per_host_downloads,
        "per_host_alerts": per_host_alerts,
        "total_alerts": result.alert_count,
        "total_downloads": len(session.downloads),
        "vt_flagged": vt_flagged,
        "content_pdf_flagged_by_vt": content_pdf_flagged,
    }


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable Table VI reproduction."""
    r = run(seed, scale)
    categories = ("pdf", "exe", "jar", "swf", "dmg", "zip")
    rows = []
    for category in categories:
        rows.append(
            [category.upper()]
            + [r["per_host_downloads"][host].get(category, 0)
               for host in _HOSTS]
        )
    rows.append(["DynaMiner Alerts"]
                + [r["per_host_alerts"][host] for host in _HOSTS])
    table = format_table(
        ["", "Windows Host", "Ubuntu Host", "MacOS Host"], rows,
        title="Table VI (reproduced): live detection summary (48 h)",
    )
    return (
        table
        + f"\ntotal downloads: {r['total_downloads']} (paper: 62);"
          f" total alerts: {r['total_alerts']} (paper: 8)"
        + f"\nVirusTotal flagged {r['vt_flagged']} downloads, including"
          f" {r['content_pdf_flagged_by_vt']} content-borne PDFs DynaMiner"
          f" does not alert on (paper: 2)"
    )
