"""Experiment evasion: the Section VII adversarial analysis, measured.

The paper *argues* about three evasion strategies a determined
adversary may employ (cloaked download dynamics, cloaked redirection
dynamics, post-download tweaks) and predicts how DynaMiner degrades
under each.  This experiment turns those arguments into measurements:
generate episodes per evasion mode and record the trained classifier's
detection rate.

Expected shape (the paper's predictions):

* baseline episodes are detected near the headline TPR;
* dropping any *single* dynamic (redirects, post-download, exploit
  payload type) costs little — "it will still be classified as
  infectious due to the prediction score averaging" (Section VII);
* combining all cloaks (our *stealth* mode, approximating fileless
  infection) defeats the detector — "DynaMiner may not be able to
  detect as the resulting WCG will miss the most revealing features."
"""

from __future__ import annotations

import zlib
from functools import lru_cache

import numpy as np

from repro.analytics.report import format_table
from repro.detection.training import training_matrix
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED
from repro.features.extractor import FeatureExtractor
from repro.learning.forest import EnsembleRandomForest
from repro.synthesis.corpus import ground_truth_corpus
from repro.synthesis.families import EXPLOIT_KIT_FAMILIES
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator

__all__ = ["EVASION_MODES", "run", "report"]

#: Evasion mode -> EpisodeConfig factory.
EVASION_MODES: dict[str, EpisodeConfig] = {
    "baseline": EpisodeConfig(redirectless=False, with_post_download=True),
    "cloaked-redirects": EpisodeConfig(redirectless=True,
                                       with_post_download=True),
    "no-post-download": EpisodeConfig(redirectless=False,
                                      with_post_download=False),
    "compressed-payload": EpisodeConfig(redirectless=False,
                                        with_post_download=True,
                                        compressed_payload=True),
    "full-stealth": EpisodeConfig(stealth=True),
}


@lru_cache(maxsize=2)
def _zero_day_classifier(seed: int, scale: float) -> EnsembleRandomForest:
    """An ERF trained on a corpus with NO stealth episodes.

    The Section VII analysis is about an adversary adapting *after* the
    defender trained — so the training corpus must not contain the
    evasive behaviour being measured.
    """
    corpus = ground_truth_corpus(seed=seed, scale=scale,
                                 stealth_fraction=0.0)
    X, y = training_matrix(corpus.traces, augment_prefixes=True)
    model = EnsembleRandomForest(n_trees=20, random_state=seed)
    model.fit(X, y)
    return model


def run(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    episodes_per_mode: int = 60,
    threshold: float = 0.5,
) -> dict[str, dict[str, float]]:
    """Per-mode detection rate and mean classifier score.

    The *mean score* is the robust signal: thresholded rates swing when
    a mode's scores cluster near the cut, while the score itself moves
    smoothly with how much evidence the evasion removed.
    """
    classifier = _zero_day_classifier(seed, scale)
    extractor = FeatureExtractor()
    results: dict[str, dict[str, float]] = {}
    families = EXPLOIT_KIT_FAMILIES[:4]  # the four largest
    for mode, config in EVASION_MODES.items():
        rng = np.random.default_rng(
            seed * 1000 + zlib.crc32(mode.encode()) % 997
        )
        vectors = []
        for index in range(episodes_per_mode):
            profile = families[index % len(families)]
            generator = InfectionGenerator(profile, rng)
            trace = generator.generate(config)
            vectors.append(extractor.extract_trace(trace))
        # One matrix call per mode: classifier rows are independent, so
        # the per-episode scores are identical to single-row calls.
        scores_arr = classifier.decision_scores(np.stack(vectors))
        results[mode] = {
            "detection_rate": float((scores_arr >= threshold).mean()),
            "mean_score": float(scores_arr.mean()),
        }
    return results


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable evasion-resilience table."""
    results = run(seed, scale)
    rows = [
        [mode, f"{m['detection_rate']:.1%}", f"{m['mean_score']:.2f}"]
        for mode, m in results.items()
    ]
    table = format_table(
        ["Evasion strategy", "Detection rate", "Mean score"], rows,
        title="Section VII (measured): detection under evasion",
    )
    return (
        table
        + "\n(The paper predicts single-dynamic cloaks survive the ERF's"
        "\n probability averaging while full cloaking evades detection.)"
    )
