"""Shared experiment context with per-process caching.

Corpus generation and feature extraction dominate experiment runtime, so
the runners share them through ``functools.lru_cache``d builders keyed by
``(seed, scale)``.  ``DEFAULT_SCALE`` trades fidelity for wall-clock time
— ``1.0`` regenerates the paper's full corpus sizes, while benches
default to a reduced-but-faithful scale.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from repro.features.extractor import extract_matrix
from repro.learning.forest import EnsembleRandomForest
from repro.synthesis.corpus import Corpus, ground_truth_corpus, validation_corpus

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "default_n_jobs",
    "set_default_n_jobs",
    "cached_ground_truth",
    "cached_validation",
    "cached_features",
    "cached_validation_features",
    "trained_classifier",
]

#: Default corpus scale for benches; override with REPRO_SCALE=1.0 for
#: full-fidelity runs.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.35"))
DEFAULT_SEED = 7

#: Process count for the offline pipeline (extraction / fitting / CV);
#: seeded via REPRO_N_JOBS, overridable with `dynaminer run --n-jobs`.
#: Results are byte-identical for any value (see repro.parallel).
_DEFAULT_N_JOBS = int(os.environ.get("REPRO_N_JOBS", "1"))


def default_n_jobs() -> int:
    """The process count experiment drivers use when not told otherwise."""
    return _DEFAULT_N_JOBS


def set_default_n_jobs(n_jobs: int) -> None:
    """Override the experiment drivers' process count (the CLI hook)."""
    global _DEFAULT_N_JOBS
    _DEFAULT_N_JOBS = n_jobs


@lru_cache(maxsize=4)
def cached_ground_truth(seed: int = DEFAULT_SEED,
                        scale: float = DEFAULT_SCALE) -> Corpus:
    """The Table I ground-truth corpus (memoized)."""
    return ground_truth_corpus(seed=seed, scale=scale)


@lru_cache(maxsize=2)
def cached_validation(seed: int = 1301,
                      scale: float = DEFAULT_SCALE) -> Corpus:
    """The Section VI-B validation corpus (memoized).

    Note: the validation corpus is ~5x the ground truth; its scale knob
    is shared so both shrink proportionally.
    """
    return validation_corpus(seed=seed, scale=scale)


@lru_cache(maxsize=4)
def cached_features(
    seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) over the ground-truth corpus (memoized).

    ``default_n_jobs()`` is read at call time rather than being a cache
    key: the extracted matrix is identical for any worker count.
    """
    corpus = cached_ground_truth(seed, scale)
    return extract_matrix(corpus.traces, n_jobs=default_n_jobs())


@lru_cache(maxsize=2)
def cached_validation_features(
    seed: int = 1301, scale: float = DEFAULT_SCALE
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) over the validation corpus (memoized)."""
    corpus = cached_validation(seed, scale)
    return extract_matrix(corpus.traces, n_jobs=default_n_jobs())


@lru_cache(maxsize=4)
def trained_classifier(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    n_trees: int = 20,
) -> EnsembleRandomForest:
    """The paper-configured ERF for on-the-wire deployment.

    Trained on the ground truth *plus clue-time prefix WCGs* (see
    :mod:`repro.detection.training`), so the classifier has seen the
    partially-observed graphs it will be consulted on mid-stream.
    """
    from repro.detection.training import training_matrix

    corpus = cached_ground_truth(seed, scale)
    X, y = training_matrix(corpus.traces, augment_prefixes=True,
                           n_jobs=default_n_jobs())
    model = EnsembleRandomForest(n_trees=n_trees, random_state=seed)
    model.fit(X, y, n_jobs=default_n_jobs())
    return model
