"""Experiment fig10: ROC curve of the ERF on all features (Figure 10).

The paper draws the ROC of the classifier used for the independent test:
trained on the ground truth, scored on held-out folds.  We pool
out-of-fold decision scores across a stratified 10-fold split and sweep
the threshold.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_features,
    default_n_jobs,
)
from repro.learning.crossval import stratified_kfold
from repro.learning.forest import EnsembleRandomForest
from repro.learning.metrics import auc, roc_curve

__all__ = ["run", "operating_points", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        k: int = 10, n_jobs: int | None = None) -> dict:
    """Compute pooled out-of-fold ROC points and the area under them."""
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    X, y = cached_features(seed, scale)
    scores = np.zeros(len(y))
    for train_idx, test_idx in stratified_kfold(y, k=k, seed=seed):
        model = EnsembleRandomForest(n_trees=20, random_state=seed)
        model.fit(X[train_idx], y[train_idx], n_jobs=jobs)
        scores[test_idx] = model.decision_scores(X[test_idx])
    fpr, tpr, thresholds = roc_curve(y, scores)
    return {
        "fpr": fpr,
        "tpr": tpr,
        "thresholds": thresholds,
        "auc": auc(fpr, tpr),
    }


def operating_points(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    thresholds: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
    n_jobs: int | None = None,
) -> dict[float, dict[str, float]]:
    """TPR/FPR at concrete alert thresholds — the deployment dial.

    The ROC curve shows what is *achievable*; a deployment must pick a
    threshold.  Returns the operating point for each candidate.
    """
    data = run(seed, scale, n_jobs=n_jobs)
    points = {}
    for threshold in thresholds:
        # Last curve point whose threshold is still >= the candidate.
        mask = data["thresholds"] >= threshold
        index = int(np.sum(mask)) - 1
        index = max(0, min(index, len(data["fpr"]) - 1))
        points[threshold] = {
            "tpr": float(data["tpr"][index]),
            "fpr": float(data["fpr"][index]),
        }
    return points


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
           n_jobs: int | None = None) -> str:
    """ASCII rendition of the Figure 10 ROC curve."""
    data = run(seed, scale, n_jobs=n_jobs)
    lines = [f"Fig. 10 (reproduced): ROC curve, AUC = {data['auc']:.4f}"]
    # Sample ~12 evenly spaced curve points for the log.
    fpr, tpr = data["fpr"], data["tpr"]
    picks = np.unique(
        np.linspace(0, len(fpr) - 1, num=min(12, len(fpr))).astype(int)
    )
    lines.append("FPR     TPR")
    for index in picks:
        lines.append(f"{fpr[index]:.4f}  {tpr[index]:.4f}")
    lines.append("operating points (threshold: TPR @ FPR):")
    for threshold, point in operating_points(seed, scale,
                                             n_jobs=n_jobs).items():
        lines.append(
            f"  {threshold:.1f}: TPR {point['tpr']:.3f} @ "
            f"FPR {point['fpr']:.3f}"
        )
    return "\n".join(lines)
