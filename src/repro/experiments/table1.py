"""Experiment table1: regenerate the ground-truth dataset statistics.

Paper artifact: Table I plus the Section III-D global properties and the
Section II-D call-back prevalence (708/770).
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.analytics.study import (
    callback_prevalence,
    global_properties,
    table1_rows,
)
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, cached_ground_truth

__all__ = ["run", "report"]

_HEADERS = [
    "Family", "PCAPs", "HostMin", "HostMax", "HostAvg",
    "RedirMin", "RedirMax", "RedirAvg",
    "*.pdf", "*.exe", "*.jar", "*.swf", "*.crypt", "*.js",
]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Compute the Table I reproduction; returns structured results."""
    corpus = cached_ground_truth(seed, scale)
    rows = table1_rows(corpus)
    infections = corpus.infections
    return {
        "rows": rows,
        "global": global_properties(infections),
        "callback_prevalence": callback_prevalence(infections),
        "n_benign": len(corpus.benign),
        "n_infection": len(infections),
    }


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable Table I reproduction."""
    results = run(seed, scale)
    table = format_table(
        _HEADERS,
        [row.as_list() for row in results["rows"]],
        title="Table I (reproduced): ground truth dataset",
    )
    props = results["global"]
    extra = (
        f"\nGlobal WCG properties (infections): "
        f"nodes {props.nodes_min}-{props.nodes_max} avg {props.nodes_avg:.1f}; "
        f"edges {props.edges_min}-{props.edges_max} avg {props.edges_avg:.1f}; "
        f"lifetime {props.lifetime_min:.1f}-{props.lifetime_max:.1f} s "
        f"avg {props.lifetime_avg:.1f} s"
        f"\nPost-download call-back prevalence: "
        f"{results['callback_prevalence']:.1%} (paper: 708/770 = 91.9%)"
    )
    return table + extra
