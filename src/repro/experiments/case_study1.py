"""Experiment cs1: forensic detection on a streaming session (Section VI-C).

Replays the Case Study 1 stream (free live-streaming site, 18 tabs,
fake-player lures) through the on-the-wire detector with the paper's
redirect threshold of 3, then compares against the simulated VirusTotal
— including the 11-day lag resubmission of the content-borne PDF.
"""

from __future__ import annotations

from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.proxy import TrafficReplay
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, trained_classifier
from repro.synthesis.casestudy import forensic_streaming_session
from repro.vtsim.engines import DAY, PayloadSample
from repro.vtsim.virustotal import VirusTotalSim

__all__ = ["run", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        session_seed: int = 2016) -> dict:
    """Replay the forensic session; returns alert + VT comparison data."""
    session = forensic_streaming_session(seed=session_seed)
    classifier = trained_classifier(seed, scale)
    detector = OnTheWireDetector(
        classifier,
        policy=CluePolicy(redirect_threshold=3),
        config=DetectorConfig(),
    )
    replay = TrafficReplay(detector)
    result = replay.run(session.trace)

    # Submit every downloaded payload to the simulated VirusTotal at
    # capture time, then resubmit the content-borne PDF 11 days later.
    vt = VirusTotalSim()
    start = session.trace.transactions[0].timestamp
    scan_now = {}
    pdf_story = None
    for record in session.downloads:
        # The fake-player executables/JARs are recycled known malware
        # (VirusTotal flags them at capture, per the paper); only the
        # content-borne PDF is effectively unseen.
        sample = PayloadSample(
            sha256=record.sha256,
            malicious=record.malicious,
            content_borne=record.content_borne,
            first_seen=start - (0.0 if record.content_borne else 30 * DAY),
            fresh=record.content_borne,
            reputation="suspicious" if not record.malicious and
            record.extension == "exe" else "normal",
        )
        scan_now[record.sha256] = vt.scan(sample, start + 3600.0)
        if record.content_borne and pdf_story is None:
            pdf_story = {
                "day0": vt.scan(sample, start + 3600.0).positives,
                "day11": vt.scan(sample, start + 11 * DAY).positives,
            }
    vt_flagged_now = sum(
        1 for result_ in scan_now.values() if result_.flagged()
    )
    return {
        "session": session,
        "replay": result,
        "alerts": result.alerts,
        "vt_flagged_at_capture": vt_flagged_now,
        "pdf_story": pdf_story,
        "downloads": len(session.downloads),
        "infectious_episodes": session.infectious_episodes,
    }


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable Case Study 1 summary."""
    r = run(seed, scale)
    lines = [
        "Case Study 1 (reproduced): forensic detection on streaming replay",
        f"stream transactions: {r['replay'].transactions}"
        f" (paper: 3,011)",
        f"downloads observed: {r['downloads']} (paper: 32)",
        f"DynaMiner alerts: {r['replay'].alert_count}"
        f" on {r['infectious_episodes']} infectious episodes (paper: 5)",
        f"VirusTotal flagged at capture: {r['vt_flagged_at_capture']}"
        f" (paper: 4 of the 5 DynaMiner-alerted payloads)",
    ]
    if r["pdf_story"] is not None:
        lines.append(
            f"content-borne PDF: {r['pdf_story']['day0']}/56 at capture,"
            f" {r['pdf_story']['day11']}/56 after 11 days"
            f" (paper: 0/56 then 3/56 — an 11-day DynaMiner lead)"
        )
    return "\n".join(lines)
