"""Experiment table3: feature-group ablation (Table III).

10-fold cross-validation of the ERF on three feature subsets: all 37
features, graph features only (f7-f25), and everything except graph
features (HLFs+HFs+TFs).
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_features,
    default_n_jobs,
)
from repro.features.registry import FeatureGroup, indices_of_groups
from repro.learning.crossval import cross_validate

__all__ = ["SUBSETS", "run", "report"]

_G = FeatureGroup

#: Table III rows: label -> feature-index subset (None = all).
SUBSETS: dict[str, list[int] | None] = {
    "All": None,
    "GFs": indices_of_groups({_G.GRAPH}),
    "HLFs+HFs+TFs": indices_of_groups({_G.HIGH_LEVEL, _G.HEADER, _G.TEMPORAL}),
}


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        k: int = 10, n_jobs: int | None = None) -> dict[str, dict[str, float]]:
    """Run the three-row ablation; returns metrics per subset.

    ``n_jobs`` parallelizes the CV folds (``None`` = the experiment
    default); the metrics are byte-identical for any value.
    """
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    X, y = cached_features(seed, scale)
    results: dict[str, dict[str, float]] = {}
    for label, indices in SUBSETS.items():
        cv = cross_validate(X, y, k=k, seed=seed, feature_indices=indices,
                            n_jobs=jobs)
        results[label] = cv.summary()
    return results


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
           k: int = 10, n_jobs: int | None = None) -> str:
    """Printable Table III reproduction."""
    results = run(seed, scale, k, n_jobs=n_jobs)
    rows = [
        [label, m["tpr"], m["fpr"], m["f_score"], m["roc_area"]]
        for label, m in results.items()
    ]
    return format_table(
        ["Features", "TPR", "FPR", "F-score", "ROC Area"], rows,
        title="Table III (reproduced): impact of features on accuracy",
    )
