"""Experiment table4: top-20 gain-ratio feature ranking (Table IV)."""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, cached_features
from repro.features.registry import FeatureGroup, feature_names, spec_by_name
from repro.learning.ranking import RankedFeature, rank_features

__all__ = ["run", "report", "graph_features_in_top", "novel_features_in_top"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        k: int = 10, top: int = 20) -> list[RankedFeature]:
    """Rank all 37 features; returns the top ``top`` rows."""
    X, y = cached_features(seed, scale)
    ranked = rank_features(X, y, feature_names(), k=k, seed=seed)
    return ranked[:top]


def graph_features_in_top(ranked: list[RankedFeature]) -> int:
    """How many of the ranked features are graph-centric (paper: 15/20)."""
    return sum(
        1 for r in ranked
        if spec_by_name(r.name).group is FeatureGroup.GRAPH
    )


def novel_features_in_top(ranked: list[RankedFeature]) -> int:
    """How many of the ranked features the paper introduces (paper: 15)."""
    return sum(1 for r in ranked if spec_by_name(r.name).novel)


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
           k: int = 10, top: int = 20) -> str:
    """Printable Table IV reproduction."""
    ranked = run(seed, scale, k, top)
    rows = [
        [
            r.name,
            f"{r.gain_ratio_mean:.3f} ± {r.gain_ratio_std:.3f}",
            f"{r.rank_mean:.1f} ± {r.rank_std:.2f}",
        ]
        for r in ranked
    ]
    table = format_table(
        ["Feature", "Gain Ratio", "Average Rank"], rows,
        title=f"Table IV (reproduced): top-{top} feature ranking",
    )
    return (
        table
        + f"\nGraph features in top-{top}: {graph_features_in_top(ranked)}"
        + f"\nNovel features in top-{top}: {novel_features_in_top(ranked)}"
    )
