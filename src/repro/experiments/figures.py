"""Experiments fig1/fig2/fig3/fig4/fig7-9: regenerate the paper's figures.

Each runner returns the figure's underlying data series; ``report_*``
renders an ASCII rendition for the bench logs.
"""

from __future__ import annotations

from repro.analytics.exposure import (
    EXPOSURE_CATEGORIES,
    exposure_distribution,
    per_family_exposure,
)
from repro.analytics.graphprops import (
    FIG3_PROPERTIES,
    average_graph_properties,
    feature_distribution,
)
from repro.analytics.headers import FIG4_ELEMENTS, average_header_elements
from repro.analytics.report import format_distribution, format_table
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, cached_ground_truth

__all__ = [
    "run_fig1", "run_fig2", "run_fig3", "run_fig4", "run_fig7_8_9",
    "report_fig1", "report_fig2", "report_fig3", "report_fig4",
]

#: The features behind Figures 7, 8, and 9, in figure order.
FIG789_FEATURES = (
    "avg_node_centrality",         # Fig. 7: average node connectivity
    "avg_betweenness_centrality",  # Fig. 8
    "avg_closeness_centrality",    # Fig. 9
)


def run_fig1(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Figure 1: overall enticement distribution over infections."""
    corpus = cached_ground_truth(seed, scale)
    return exposure_distribution(corpus.infections)


def run_fig2(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Figure 2: per-family enticement distributions."""
    corpus = cached_ground_truth(seed, scale)
    return per_family_exposure(corpus)


def run_fig3(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Figure 3: average graph-property measures per class."""
    corpus = cached_ground_truth(seed, scale)
    return average_graph_properties(corpus.traces)


def run_fig4(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Figure 4: average HTTP-header element counts per class."""
    corpus = cached_ground_truth(seed, scale)
    return average_header_elements(corpus.traces)


def run_fig7_8_9(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> dict:
    """Figures 7-9: per-class distributions of three graph features."""
    corpus = cached_ground_truth(seed, scale)
    return {
        feature: feature_distribution(corpus.traces, feature)
        for feature in FIG789_FEATURES
    }


def report_fig1(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """ASCII rendition of Figure 1."""
    dist = run_fig1(seed, scale)
    return format_distribution(
        list(EXPOSURE_CATEGORIES),
        [dist[c] for c in EXPOSURE_CATEGORIES],
        title="Fig. 1 (reproduced): enticement distribution",
    )


def report_fig2(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """ASCII rendition of Figure 2 (per-family enticement)."""
    per_family = run_fig2(seed, scale)
    categories = list(EXPOSURE_CATEGORIES)
    rows = []
    for family, dist in per_family.items():
        rows.append([family] + [f"{dist[c]:.0%}" for c in categories])
    return format_table(
        ["Family"] + list(categories), rows,
        title="Fig. 2 (reproduced): per-family enticement distribution",
    )


def report_fig3(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """ASCII rendition of Figure 3."""
    data = run_fig3(seed, scale)
    rows = [
        [prop, data[prop]["infection"], data[prop]["benign"]]
        for prop in FIG3_PROPERTIES
    ]
    return format_table(
        ["Property", "Infection", "Benign"], rows,
        title="Fig. 3 (reproduced): average graph properties",
    )


def report_fig4(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """ASCII rendition of Figure 4."""
    data = run_fig4(seed, scale)
    rows = [
        [element, data[element]["infection"], data[element]["benign"]]
        for element in FIG4_ELEMENTS
    ]
    return format_table(
        ["Element", "Infection", "Benign"], rows,
        title="Fig. 4 (reproduced): average HTTP header element counts",
    )
