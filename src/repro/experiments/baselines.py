"""Experiment baselines: DynaMiner vs prior-work abstractions.

Section VIII claims DynaMiner "differs from this body of work in its
richer abstraction and comprehensive analytics of WCGs".  This
experiment quantifies that: the same 10-fold-CV ERF is trained on
(a) the full 37 WCG features, (b) Kwon-style downloader-graph features
[12], and (c) SpiderWeb/Mekky-style redirection-chain features [25, 14].
"""

from __future__ import annotations

from repro.analytics.report import format_table
from repro.baselines import downloader_graph, redirect_chain
from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_features,
    cached_ground_truth,
    default_n_jobs,
)
from repro.learning.crossval import cross_validate

__all__ = ["run", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        k: int = 10, n_jobs: int | None = None) -> dict[str, dict[str, float]]:
    """10-fold CV per abstraction; returns metrics keyed by system."""
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    corpus = cached_ground_truth(seed, scale)
    results: dict[str, dict[str, float]] = {}

    X_wcg, y = cached_features(seed, scale)
    results["DynaMiner (WCG, 37 features)"] = cross_validate(
        X_wcg, y, k=k, seed=seed, n_jobs=jobs
    ).summary()

    X_dg, y_dg = downloader_graph.extract_matrix(corpus.traces)
    results["Downloader graph [12]"] = cross_validate(
        X_dg, y_dg, k=k, seed=seed, n_jobs=jobs
    ).summary()

    X_rc, y_rc = redirect_chain.extract_matrix(corpus.traces)
    results["Redirection chains [25,14]"] = cross_validate(
        X_rc, y_rc, k=k, seed=seed, n_jobs=jobs
    ).summary()
    return results


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
           n_jobs: int | None = None) -> str:
    """Printable abstraction comparison."""
    results = run(seed, scale, n_jobs=n_jobs)
    rows = [
        [system, m["tpr"], m["fpr"], m["f_score"], m["roc_area"]]
        for system, m in results.items()
    ]
    return format_table(
        ["Abstraction", "TPR", "FPR", "F-score", "ROC Area"], rows,
        title="Baselines (Section VIII, quantified): abstraction"
              " comparison under the same ERF",
    )
