"""Experiment families: per-exploit-kit detection breakdown.

The paper reports corpus-level rates; a deployment wants to know *which
kits* the detector is strong or weak against.  This experiment holds
out each family's traces in turn (train on the rest + benign, test on
the held-out family) — leave-one-family-out generalization, the
sternest version of "can it catch a kit it never saw".
"""

from __future__ import annotations

import numpy as np

from repro.analytics.report import format_table
from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_ground_truth,
    default_n_jobs,
)
from repro.features.extractor import extract_trace_features
from repro.parallel import parallel_map
from repro.learning.forest import EnsembleRandomForest

__all__ = ["run", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        threshold: float = 0.5,
        n_jobs: int | None = None) -> dict[str, dict[str, float]]:
    """Leave-one-family-out detection rates."""
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    corpus = cached_ground_truth(seed, scale)

    # Extract once, index by trace.
    rows = parallel_map(extract_trace_features, corpus.traces, n_jobs=jobs)
    vectors = dict(enumerate(rows))

    results: dict[str, dict[str, float]] = {}
    benign_idx = [i for i, t in enumerate(corpus.traces)
                  if not t.is_infection]
    for family in corpus.families:
        held_out = [i for i, t in enumerate(corpus.traces)
                    if t.family == family]
        train_idx = [i for i, t in enumerate(corpus.traces)
                     if t.family != family]
        if len(held_out) < 2:
            continue
        X_train = np.vstack([vectors[i] for i in train_idx])
        y_train = np.array([
            1.0 if corpus.traces[i].is_infection else 0.0
            for i in train_idx
        ])
        model = EnsembleRandomForest(n_trees=20, random_state=seed)
        model.fit(X_train, y_train, n_jobs=jobs)
        X_test = np.vstack([vectors[i] for i in held_out])
        scores = model.decision_scores(X_test)
        detected = int(np.sum(scores >= threshold))
        results[family] = {
            "episodes": float(len(held_out)),
            "detected": float(detected),
            "tpr": detected / len(held_out),
            "mean_score": float(scores.mean()),
        }
    return results


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
           n_jobs: int | None = None) -> str:
    """Printable leave-one-family-out table."""
    results = run(seed, scale, n_jobs=n_jobs)
    rows = [
        [family, int(m["episodes"]), int(m["detected"]),
         f"{m['tpr']:.1%}", f"{m['mean_score']:.2f}"]
        for family, m in sorted(results.items(),
                                key=lambda kv: -kv[1]["tpr"])
    ]
    return format_table(
        ["Family (held out)", "Episodes", "Detected", "TPR", "Mean score"],
        rows,
        title="Extension: leave-one-family-out generalization",
    )
