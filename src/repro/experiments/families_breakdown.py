"""Experiment families: per-exploit-kit detection breakdown.

The paper reports corpus-level rates; a deployment wants to know *which
kits* the detector is strong or weak against.  This experiment holds
out each family's traces in turn (train on the rest + benign, test on
the held-out family) — leave-one-family-out generalization, the
sternest version of "can it catch a kit it never saw".
"""

from __future__ import annotations

import numpy as np

from repro.analytics.report import format_table
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, cached_ground_truth
from repro.features.extractor import FeatureExtractor
from repro.learning.forest import EnsembleRandomForest

__all__ = ["run", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        threshold: float = 0.5) -> dict[str, dict[str, float]]:
    """Leave-one-family-out detection rates."""
    corpus = cached_ground_truth(seed, scale)
    extractor = FeatureExtractor()

    # Extract once, index by trace.
    vectors = {}
    for index, trace in enumerate(corpus.traces):
        vectors[index] = extractor.extract_trace(trace)

    results: dict[str, dict[str, float]] = {}
    benign_idx = [i for i, t in enumerate(corpus.traces)
                  if not t.is_infection]
    for family in corpus.families:
        held_out = [i for i, t in enumerate(corpus.traces)
                    if t.family == family]
        train_idx = [i for i, t in enumerate(corpus.traces)
                     if t.family != family]
        if len(held_out) < 2:
            continue
        X_train = np.vstack([vectors[i] for i in train_idx])
        y_train = np.array([
            1.0 if corpus.traces[i].is_infection else 0.0
            for i in train_idx
        ])
        model = EnsembleRandomForest(n_trees=20, random_state=seed)
        model.fit(X_train, y_train)
        X_test = np.vstack([vectors[i] for i in held_out])
        scores = model.decision_scores(X_test)
        detected = int(np.sum(scores >= threshold))
        results[family] = {
            "episodes": float(len(held_out)),
            "detected": float(detected),
            "tpr": detected / len(held_out),
            "mean_score": float(scores.mean()),
        }
    return results


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable leave-one-family-out table."""
    results = run(seed, scale)
    rows = [
        [family, int(m["episodes"]), int(m["detected"]),
         f"{m['tpr']:.1%}", f"{m['mean_score']:.2f}"]
        for family, m in sorted(results.items(),
                                key=lambda kv: -kv[1]["tpr"])
    ]
    return format_table(
        ["Family (held out)", "Episodes", "Detected", "TPR", "Mean score"],
        rows,
        title="Extension: leave-one-family-out generalization",
    )
