"""Experiment table5: independent validation vs VirusTotal (Table V).

Trains the ERF on the full ground truth, classifies the disjoint
validation corpus (ThreatGlass stand-in), submits the same traces to the
simulated VirusTotal, and tabulates both systems' per-class accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.report import format_table
from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_validation,
    cached_validation_features,
    trained_classifier,
)
from repro.vtsim.virustotal import VirusTotalSim

__all__ = ["run", "report"]


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE,
        threshold: float = 0.5) -> dict:
    """Run both systems on the validation set; returns Table V cells."""
    corpus = cached_validation(scale=scale)
    X, y = cached_validation_features(scale=scale)
    model = trained_classifier(seed, scale)
    scores = model.decision_scores(X)
    predicted = (scores >= threshold).astype(int)

    dm_tp = int(np.sum((y == 1) & (predicted == 1)))
    dm_fn = int(np.sum((y == 1) & (predicted == 0)))
    dm_tn = int(np.sum((y == 0) & (predicted == 0)))
    dm_fp = int(np.sum((y == 0) & (predicted == 1)))

    vt = VirusTotalSim()
    vt_tp = vt_fn = vt_tn = vt_fp = 0
    vt_timeout_fn = 0
    for trace in corpus.traces:
        result = vt.scan_trace(trace)
        flagged = result.flagged(vt.min_positives)
        if trace.is_infection:
            if flagged:
                vt_tp += 1
            else:
                vt_fn += 1
                if result.timed_out:
                    vt_timeout_fn += 1
        else:
            if flagged:
                vt_fp += 1
            else:
                vt_tn += 1

    n_benign = int(np.sum(y == 0))
    n_infection = int(np.sum(y == 1))
    return {
        "n_benign": n_benign,
        "n_infection": n_infection,
        "dynaminer": {
            "benign_correct": dm_tn, "infection_correct": dm_tp,
            "fp": dm_fp, "fn": dm_fn,
            "benign_rate": dm_tn / n_benign if n_benign else 0.0,
            "infection_rate": dm_tp / n_infection if n_infection else 0.0,
        },
        "virustotal": {
            "benign_correct": vt_tn, "infection_correct": vt_tp,
            "fp": vt_fp, "fn": vt_fn, "timeouts": vt_timeout_fn,
            "benign_rate": vt_tn / n_benign if n_benign else 0.0,
            "infection_rate": vt_tp / n_infection if n_infection else 0.0,
        },
    }


def report(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> str:
    """Printable Table V reproduction."""
    r = run(seed, scale)
    rows = []
    for system in ("dynaminer", "virustotal"):
        cells = r[system]
        rows.append([
            system,
            f"benign: {r['n_benign']}, infection: {r['n_infection']}",
            (
                f"benign={cells['benign_correct']} "
                f"({cells['benign_rate']:.1%}), "
                f"infection={cells['infection_correct']} "
                f"({cells['infection_rate']:.1%})"
            ),
            cells["fp"],
            cells["fn"],
        ])
    table = format_table(
        ["System", "WCGs Tested", "Correctly Classified", "FP", "FN"],
        rows,
        title="Table V (reproduced): classifier vs VirusTotal on"
              " independent test data",
    )
    margin = (
        r["dynaminer"]["infection_rate"] - r["virustotal"]["infection_rate"]
    )
    return (
        table
        + f"\nDynaMiner detection margin over VT: {margin:+.1%}"
          f" (paper: +11.5% on overall accuracy)"
        + f"\nVT timeouts among FNs: {r['virustotal']['timeouts']}"
          f" (paper: 110 of 1179)"
    )
