"""Ablation experiments for the design choices DESIGN.md calls out.

* voting: probability averaging vs majority vote (Section V-A's claim);
* forest: N_t / N_f sweep around the paper's tuned point;
* threshold: redirect-threshold l sweep for clue inference;
* whitelist: trusted-vendor weeding on vs off.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analytics.report import format_table
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.proxy import TrafficReplay
from repro.experiments.context import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    cached_features,
    default_n_jobs,
    trained_classifier,
)
from repro.learning.crossval import cross_validate
from repro.learning.forest import EnsembleRandomForest, default_max_features
from repro.synthesis.casestudy import forensic_streaming_session

__all__ = ["run_voting", "run_forest_sweep", "run_threshold_sweep",
           "run_whitelist", "report_voting", "report_forest_sweep"]


def run_voting(seed: int = DEFAULT_SEED,
               scale: float = DEFAULT_SCALE, k: int = 10,
               n_jobs: int | None = None) -> dict:
    """Probability averaging vs majority voting, 10-fold CV.

    With fully-grown trees every leaf is pure and the two voting rules
    coincide; the comparison is run at ``min_samples_leaf=5`` (impure
    leaves carry calibrated probabilities) — the regime where the
    paper's Section V-A variance argument applies.
    """
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    X, y = cached_features(seed, scale)
    results = {}
    for mode in ("average", "majority"):
        # partial, not a lambda: the factory crosses process boundaries.
        cv = cross_validate(
            X, y, k=k, seed=seed, n_jobs=jobs,
            model_factory=partial(
                EnsembleRandomForest, n_trees=20, voting=mode,
                min_samples_leaf=5, random_state=seed,
            ),
        )
        summary = cv.summary()
        summary["fpr_std"] = cv.std("fpr")
        summary["tpr_std"] = cv.std("tpr")
        results[mode] = summary
    return results


def run_forest_sweep(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    tree_counts: tuple[int, ...] = (5, 10, 20, 40),
    k: int = 5,
    n_jobs: int | None = None,
) -> dict:
    """Sweep N_t and N_f around the paper's tuned configuration."""
    jobs = default_n_jobs() if n_jobs is None else n_jobs
    X, y = cached_features(seed, scale)
    n_features = X.shape[1]
    paper_nf = default_max_features(n_features)
    results: dict[str, dict[str, float]] = {}
    for n_trees in tree_counts:
        for max_features in (paper_nf, n_features):
            label = (
                f"Nt={n_trees},"
                f"Nf={'log2+1' if max_features == paper_nf else 'all'}"
            )
            cv = cross_validate(
                X, y, k=k, seed=seed, n_jobs=jobs,
                model_factory=partial(
                    EnsembleRandomForest, n_trees=n_trees,
                    max_features=max_features, random_state=seed,
                ),
            )
            results[label] = cv.summary()
    return results


def run_threshold_sweep(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    thresholds: tuple[int, ...] = (1, 2, 3, 5, 8),
) -> dict:
    """Redirect-threshold sweep on the forensic replay stream.

    Lower l means clues (and hence classifier consultations) fire more
    eagerly; the alert set should stay stable while classification work
    grows — the threshold is a noise valve, not a verdict.
    """
    session = forensic_streaming_session(seed=2016)
    classifier = trained_classifier(seed, scale)
    results = {}
    for threshold in thresholds:
        detector = OnTheWireDetector(
            classifier,
            policy=CluePolicy(redirect_threshold=threshold),
        )
        report_ = TrafficReplay(detector).run(session.trace)
        results[threshold] = {
            "alerts": report_.alert_count,
            "classifications": report_.classifications,
            "watches": report_.watches,
        }
    return results


def run_whitelist(seed: int = DEFAULT_SEED,
                  scale: float = DEFAULT_SCALE) -> dict:
    """Trusted-vendor weeding on vs off over a mixed stream.

    The stream adds trusted-vendor software downloads on top of the
    forensic session; with weeding off, those transactions reach the
    session table and inflate the work done (and potentially alerts).
    """
    from repro.core.model import (
        Headers, HttpMethod, HttpRequest, HttpResponse, HttpTransaction,
    )
    from repro.synthesis.entities import TRUSTED_VENDORS

    session = forensic_streaming_session(seed=2016)
    base = list(session.trace.transactions)
    start = base[0].timestamp
    rng = np.random.default_rng(5)
    extra = []
    for index in range(60):
        vendor = TRUSTED_VENDORS[index % len(TRUSTED_VENDORS)]
        ts = start + float(rng.uniform(0, 4000))
        request = HttpRequest(
            method=HttpMethod.GET,
            uri=f"/updates/package-{index}.exe",
            host=vendor,
            client="fan-laptop",
            timestamp=ts,
            headers=Headers({"Host": vendor}),
        )
        response = HttpResponse(
            status=200, timestamp=ts + 0.4,
            headers=Headers({
                "Content-Type": "application/x-msdownload",
                "Content-Length": "9000000",
            }),
        )
        extra.append(HttpTransaction(request, response))
    merged = sorted(base + extra, key=lambda t: t.timestamp)

    classifier = trained_classifier(seed, scale)
    results = {}
    for use_whitelist in (True, False):
        detector = OnTheWireDetector(
            classifier,
            policy=CluePolicy(redirect_threshold=3),
            config=DetectorConfig(use_whitelist=use_whitelist),
        )
        report_ = TrafficReplay(detector).run(merged)
        results["on" if use_whitelist else "off"] = {
            "alerts": report_.alert_count,
            "weeded": report_.weeded,
            "classifications": report_.classifications,
        }
    return results


def report_voting(seed: int = DEFAULT_SEED,
                  scale: float = DEFAULT_SCALE,
                  n_jobs: int | None = None) -> str:
    """Printable voting-mode ablation."""
    results = run_voting(seed, scale, n_jobs=n_jobs)
    rows = [
        [mode, m["tpr"], m["fpr"], m["f_score"], m["fpr_std"]]
        for mode, m in results.items()
    ]
    return format_table(
        ["Voting", "TPR", "FPR", "F-score", "FPR std (variance proxy)"],
        rows,
        title="Ablation: probability averaging vs majority vote",
    )


def report_forest_sweep(seed: int = DEFAULT_SEED,
                        scale: float = DEFAULT_SCALE,
                        n_jobs: int | None = None) -> str:
    """Printable N_t/N_f sweep."""
    results = run_forest_sweep(seed, scale, n_jobs=n_jobs)
    rows = [
        [label, m["tpr"], m["fpr"], m["f_score"]]
        for label, m in results.items()
    ]
    return format_table(
        ["Config", "TPR", "FPR", "F-score"], rows,
        title="Ablation: forest hyper-parameter sweep",
    )
