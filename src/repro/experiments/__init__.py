"""Experiment runners: one module per paper table/figure (DESIGN.md §4)."""

from repro.experiments import (
    ablations,
    baselines,
    case_study1,
    context,
    evasion,
    families_breakdown,
    fig10,
    figures,
    table1,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "ablations",
    "baselines",
    "case_study1",
    "context",
    "evasion",
    "families_breakdown",
    "fig10",
    "figures",
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
]
