"""On-the-wire malware detection (Stage 2 of the DynaMiner pipeline)."""

from repro.detection.alerts import Alert, AlertSink, ListSink
from repro.detection.clues import (
    ClueDetector,
    CluePolicy,
    DEFAULT_RISKY_TYPES,
    InfectionClue,
    payload_risk_from_corpus,
)
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.latency import (
    EpisodeLatency,
    latency_summary,
    measure_latency,
)
from repro.detection.live import LiveDecoder, LiveDetector
from repro.detection.monitor import SessionTable, SessionWatch
from repro.detection.proxy import ProxySimulator, ReplayReport, TrafficReplay
from repro.detection.training import clue_time_prefix, training_matrix
from repro.detection.whitelist import VendorWhitelist

__all__ = [
    "Alert",
    "AlertSink",
    "ClueDetector",
    "CluePolicy",
    "DEFAULT_RISKY_TYPES",
    "DetectorConfig",
    "EpisodeLatency",
    "InfectionClue",
    "LiveDecoder",
    "LiveDetector",
    "ListSink",
    "OnTheWireDetector",
    "ProxySimulator",
    "ReplayReport",
    "SessionTable",
    "SessionWatch",
    "TrafficReplay",
    "VendorWhitelist",
    "clue_time_prefix",
    "latency_summary",
    "measure_latency",
    "training_matrix",
    "payload_risk_from_corpus",
]
