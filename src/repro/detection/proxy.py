"""Traffic replay drivers (the paper's forensic/live deployment harness).

``TrafficReplay`` feeds a recorded stream through a detector the way the
authors replayed the streaming-site capture through a local web server
(Case Study 1); ``ProxySimulator`` models the mini-enterprise proxy
position of Case Study 2, multiplexing several client hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import HttpTransaction, Trace
from repro.detection.alerts import Alert
from repro.detection.detector import OnTheWireDetector

__all__ = ["ReplayReport", "TrafficReplay", "ProxySimulator"]


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    alerts: list[Alert] = field(default_factory=list)
    transactions: int = 0
    weeded: int = 0
    classifications: int = 0
    watches: int = 0

    @property
    def alert_count(self) -> int:
        """Number of alerts raised."""
        return len(self.alerts)

    def alerts_for(self, client: str) -> list[Alert]:
        """Alerts attributed to one client host."""
        return [a for a in self.alerts if a.client == client]


class TrafficReplay:
    """Replays a capture through a detector in timestamp order."""

    def __init__(self, detector: OnTheWireDetector):
        self.detector = detector

    def run(self, trace: Trace | list[HttpTransaction]) -> ReplayReport:
        """Replay all transactions; returns the consolidated report."""
        transactions = (
            trace.transactions if isinstance(trace, Trace) else list(trace)
        )
        transactions = sorted(transactions, key=lambda t: t.timestamp)
        alerts = self.detector.process_stream(transactions)
        self.detector.finalize()
        return ReplayReport(
            alerts=alerts,
            transactions=self.detector.transactions_seen,
            weeded=self.detector.transactions_weeded,
            classifications=self.detector.classifications,
            watches=self.detector.watch_count(),
        )


class ProxySimulator:
    """Multiplexes several hosts' traffic through one detector.

    Mirrors the Case Study 2 deployment: DynaMiner as the web proxy of a
    mini-enterprise network, inspecting all HTTP transactions from every
    internal host.
    """

    def __init__(self, detector: OnTheWireDetector):
        self.detector = detector

    def run(self, traces: list[Trace]) -> ReplayReport:
        """Interleave the traces by timestamp and replay the merged stream."""
        merged: list[HttpTransaction] = []
        for trace in traces:
            merged.extend(trace.transactions)
        merged.sort(key=lambda t: t.timestamp)
        alerts = self.detector.process_stream(merged)
        self.detector.finalize()
        return ReplayReport(
            alerts=alerts,
            transactions=self.detector.transactions_seen,
            weeded=self.detector.transactions_weeded,
            classifications=self.detector.classifications,
            watches=self.detector.watch_count(),
        )
