"""Alert model, provenance records, and sinks for the detector."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.clues import InfectionClue

__all__ = ["Alert", "AlertProvenance", "AlertSink", "ClueRecord",
           "ListSink"]


@dataclass(frozen=True)
class ClueRecord:
    """One contributing infection clue, reduced to JSON primitives.

    The picklable/serializable form of :class:`InfectionClue` that
    provenance records and trace events carry across process
    boundaries and into JSONL files.
    """

    server: str
    payload_type: str
    chain_length: int
    timestamp: float

    def to_dict(self) -> dict:
        return {
            "server": self.server,
            "payload_type": self.payload_type,
            "chain_length": self.chain_length,
            "timestamp": self.timestamp,
        }


@dataclass(frozen=True)
class AlertProvenance:
    """Why an alert fired: clues, timing, graph dims, forest votes.

    Built by the detector only when tracing is enabled
    (``REPRO_TRACE=1`` / ``enable_tracing()``); every field derives
    from the packet stream and the fitted forest — no wall clock — so
    provenance is byte-identical across runs and worker counts
    (DESIGN.md §16).

    Attributes:
        clue_chain: contributing clues in firing order (bounded; the
            tracer keeps the first 32 per watch).
        clues_total: clues fired on this watch, including any beyond
            the retained chain.
        first_clue_ts / first_edge_ts: stream time of the first clue
            and of the earliest WCG edge.
        time_to_detection: alert stream time minus ``first_clue_ts``.
        time_from_first_edge: alert stream time minus
            ``first_edge_ts`` — the paper's earliness measure, how far
            into the infection conversation the verdict landed.
        wcg_order / wcg_size: graph dimensions at verdict time.
        engine: inference engine that produced the score.
        tree_votes: each tree's predicted class label.
        tree_scores: each tree's infection-class probability.
        vote_tally: ``(benign votes, infectious votes)``.
        feature_path_counts: per-feature decision-path usage counts
            over the 37-feature registry (how many split nodes across
            all trees tested each feature for this row).
    """

    clue_chain: tuple[ClueRecord, ...]
    clues_total: int
    first_clue_ts: float
    first_edge_ts: float
    time_to_detection: float
    time_from_first_edge: float
    wcg_order: int
    wcg_size: int
    engine: str
    tree_votes: tuple[int, ...]
    tree_scores: tuple[float, ...]
    vote_tally: tuple[int, int]
    feature_path_counts: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON form (carried on ``verdict`` trace events)."""
        return {
            "clue_chain": [record.to_dict() for record in self.clue_chain],
            "clues_total": self.clues_total,
            "first_clue_ts": self.first_clue_ts,
            "first_edge_ts": self.first_edge_ts,
            "time_to_detection": self.time_to_detection,
            "time_from_first_edge": self.time_from_first_edge,
            "wcg_order": self.wcg_order,
            "wcg_size": self.wcg_size,
            "engine": self.engine,
            "tree_votes": list(self.tree_votes),
            "tree_scores": list(self.tree_scores),
            "vote_tally": list(self.vote_tally),
            "feature_path_counts": list(self.feature_path_counts),
        }


@dataclass(frozen=True)
class Alert:
    """One infection verdict issued by the detector.

    Attributes:
        client: the victim host the alert protects.
        score: classifier probability that the WCG is infectious.
        clue: the infection clue that opened the watch on this WCG.
        timestamp: stream time at which the verdict fired.
        wcg_order / wcg_size: graph dimensions at verdict time.
        session_key: identifier of the watched session cluster.
        provenance: full detection provenance — present on every alert
            raised while tracing is enabled, ``None`` otherwise (the
            disabled path must stay byte-identical and allocation-free).
    """

    client: str
    score: float
    clue: InfectionClue
    timestamp: float
    wcg_order: int
    wcg_size: int
    session_key: str
    provenance: AlertProvenance | None = None


class AlertSink:
    """Interface for alert consumers."""

    def emit(self, alert: Alert) -> None:
        """Handle one alert."""
        raise NotImplementedError


@dataclass
class ListSink(AlertSink):
    """Collects alerts in memory (tests, benches, examples)."""

    alerts: list[Alert] = field(default_factory=list)

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def for_client(self, client: str) -> list[Alert]:
        """Alerts raised on behalf of one client."""
        return [a for a in self.alerts if a.client == client]
