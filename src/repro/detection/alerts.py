"""Alert model and sinks for the on-the-wire detector."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.clues import InfectionClue

__all__ = ["Alert", "AlertSink", "ListSink"]


@dataclass(frozen=True)
class Alert:
    """One infection verdict issued by the detector.

    Attributes:
        client: the victim host the alert protects.
        score: classifier probability that the WCG is infectious.
        clue: the infection clue that opened the watch on this WCG.
        timestamp: stream time at which the verdict fired.
        wcg_order / wcg_size: graph dimensions at verdict time.
        session_key: identifier of the watched session cluster.
    """

    client: str
    score: float
    clue: InfectionClue
    timestamp: float
    wcg_order: int
    wcg_size: int
    session_key: str


class AlertSink:
    """Interface for alert consumers."""

    def emit(self, alert: Alert) -> None:
        """Handle one alert."""
        raise NotImplementedError


@dataclass
class ListSink(AlertSink):
    """Collects alerts in memory (tests, benches, examples)."""

    alerts: list[Alert] = field(default_factory=list)

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def for_client(self, client: str) -> list[Alert]:
        """Alerts raised on behalf of one client."""
        return [a for a in self.alerts if a.client == client]
