"""Infection-clue inference (Section V-B).

"An infection clue is flagged when a redirection chain of length >= l is
followed by a download of a file type t.  The threshold for l and the
download likelihood of the payload type x to be infectious are
determined from a statistical analysis of the ground truth data."

:func:`payload_risk_from_corpus` performs that statistical analysis —
the per-type likelihood that a downloaded payload type belongs to an
infection trace — and :class:`ClueDetector` applies the resulting policy
to a live stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import HttpTransaction, Trace
from repro.core.payloads import PayloadType, is_exploit_type
from repro.core.redirects import (
    Redirect,
    RedirectInferencer,
    longest_chain_length,
)
from repro.obs import get_registry

__all__ = ["InfectionClue", "CluePolicy", "ClueDetector",
           "payload_risk_from_corpus", "DEFAULT_RISKY_TYPES"]

#: Payload types considered download-risky out of the box (the ground
#: truth analysis lands on exactly these; see payload_risk_from_corpus).
DEFAULT_RISKY_TYPES: frozenset[PayloadType] = frozenset(
    {
        PayloadType.EXE,
        PayloadType.JAR,
        PayloadType.SWF,
        PayloadType.XAP,
        PayloadType.PDF,
        PayloadType.DMG,
        PayloadType.CRYPT,
        PayloadType.ARCHIVE,
        PayloadType.OCTET,
    }
)


@dataclass(frozen=True)
class InfectionClue:
    """A flagged clue: the trigger transaction and its context."""

    client: str
    server: str
    payload_type: PayloadType
    chain_length: int
    timestamp: float

    def as_primitives(self) -> dict:
        """JSON-primitive view of the clue's context (minus the
        client/timestamp, which trace events carry as envelope
        fields) — the ``data`` payload of ``clue`` trace events and
        the raw material of provenance clue chains."""
        return {
            "server": self.server,
            "payload": self.payload_type.value,
            "chain_length": self.chain_length,
        }


@dataclass
class CluePolicy:
    """Thresholds governing clue inference.

    ``redirect_threshold`` is the paper's ``l`` (the forensic case study
    ran with 3); ``risky_types`` is the payload-type set ``t``.
    ``exploit_shortcut`` flags known exploit/ransomware payload types even
    without a qualifying chain (they are near-certain indicators in the
    ground truth).
    """

    redirect_threshold: int = 3
    risky_types: frozenset[PayloadType] = DEFAULT_RISKY_TYPES
    exploit_shortcut: bool = True


def payload_risk_from_corpus(traces: list[Trace]) -> dict[PayloadType, float]:
    """Per-payload-type infection likelihood from labelled traces.

    For each payload type observed as a download, returns
    ``P(trace is infection | type downloaded)`` — the statistic the paper
    derives the download-likelihood policy from.
    """
    infected: dict[PayloadType, int] = {}
    total: dict[PayloadType, int] = {}
    for trace in traces:
        seen: set[PayloadType] = set()
        for txn in trace.transactions:
            if txn.status == 200:
                seen.add(txn.payload_type)
        for ptype in seen:
            total[ptype] = total.get(ptype, 0) + 1
            if trace.is_infection:
                infected[ptype] = infected.get(ptype, 0) + 1
    return {
        ptype: infected.get(ptype, 0) / count
        for ptype, count in total.items()
    }


class ClueDetector:
    """Streaming clue detector for one client's transaction sequence.

    Feed transactions in arrival order; :meth:`observe` returns an
    :class:`InfectionClue` whenever the policy trips.  Internally tracks
    the running redirect-chain evidence exactly the way the offline
    redirect-inference heuristics do, but incrementally.
    """

    def __init__(self, policy: CluePolicy | None = None):
        self.policy = policy or CluePolicy()
        self._window: list[HttpTransaction] = []
        self._inferencer = RedirectInferencer()
        self._chain_length = 0
        self._c_clues = get_registry().counter("detection.clues_fired")

    def observe(self, txn: HttpTransaction) -> InfectionClue | None:
        """Ingest one transaction; returns a clue when one is flagged."""
        self._window.append(txn)
        # Incremental inference: O(this transaction), not O(window).
        # Chain length only changes when a new redirect appears.
        if self._inferencer.observe(txn):
            self._chain_length = longest_chain_length(
                self._inferencer.redirects
            )
        chain = self._chain_length
        ptype = txn.payload_type
        downloaded = txn.status == 200 and ptype in self.policy.risky_types
        if not downloaded:
            return None
        if chain >= self.policy.redirect_threshold or (
            self.policy.exploit_shortcut and is_exploit_type(ptype)
        ):
            self._c_clues.inc()
            return InfectionClue(
                client=txn.client,
                server=txn.server,
                payload_type=ptype,
                chain_length=chain,
                timestamp=txn.timestamp,
            )
        return None

    @property
    def window(self) -> list[HttpTransaction]:
        """Transactions observed since the last reset."""
        return list(self._window)

    def reset(self) -> None:
        """Clear per-session state."""
        self._window.clear()
        self._inferencer = RedirectInferencer()
        self._chain_length = 0
