"""Training-set construction for the on-the-wire detector.

The detector classifies *growing* WCGs: the first consultation happens
right after an infection clue (typically a risky download), when the
conversation is only partially observed.  Training exclusively on
complete sessions creates a distribution shift at that moment — a benign
webmail attachment's prefix WCG looks unlike any complete benign session.
``training_matrix`` therefore augments each labelled trace with its
*clue-time prefix*: the transactions up to and including the first risky
download, labelled like the full trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import Trace
from repro.core.payloads import is_downloadable
from repro.features.extractor import extract_trace_features
from repro.features.registry import NUM_FEATURES
from repro.parallel import parallel_map

__all__ = ["clue_time_prefix", "training_matrix"]


def clue_time_prefix(trace: Trace) -> Trace | None:
    """The prefix of ``trace`` as the detector would first score it.

    Cuts at the first risky download (the usual clue trigger); traces
    with no risky download — most benign browsing — are cut mid-session
    instead, so both classes contribute partially-observed graphs and
    the augmentation stays class-balanced.  Returns ``None`` when the
    prefix would equal the full trace (nothing new to learn).
    """
    transactions = sorted(trace.transactions, key=lambda t: t.timestamp)
    cut = None
    for index, txn in enumerate(transactions):
        if txn.status == 200 and is_downloadable(txn.payload_type):
            cut = index + 1
            break
    if cut is None:
        cut = max(2, (3 * len(transactions)) // 5)
    if cut >= len(transactions):
        return None
    return Trace(
        transactions=transactions[:cut],
        label=trace.label,
        family=trace.family,
        origin=trace.origin,
        meta=dict(trace.meta),
    )


def training_matrix(
    traces: list[Trace],
    augment_prefixes: bool = True,
    n_jobs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) over full traces plus (optionally) clue-time prefixes.

    ``n_jobs`` fans per-trace feature extraction out over a process pool
    (``-1`` = all cores); the row order is unaffected.
    """
    expanded: list[Trace] = []
    labels: list[float] = []
    for trace in traces:
        if trace.label is None:
            continue
        label = 1.0 if trace.is_infection else 0.0
        expanded.append(trace)
        labels.append(label)
        if augment_prefixes:
            prefix = clue_time_prefix(trace)
            if prefix is not None:
                expanded.append(prefix)
                labels.append(label)
    if not expanded:
        return np.empty((0, NUM_FEATURES)), np.empty(0)
    rows = parallel_map(extract_trace_features, expanded, n_jobs=n_jobs)
    return np.vstack(rows), np.array(labels)
