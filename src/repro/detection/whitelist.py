"""Trusted-vendor traffic weeding (Section V-B noise reduction).

"To reduce noise from benign HTTP traffic, we weed out HTTP transactions
that originate from known vendors ... e.g. downloads from online
application stores / software repositories."
"""

from __future__ import annotations

from repro.core.model import HttpTransaction
from repro.synthesis.entities import TRUSTED_VENDORS

__all__ = ["VendorWhitelist"]


class VendorWhitelist:
    """Suffix-matching host whitelist.

    A host matches when it equals a whitelisted entry or is a subdomain
    of one.  The default list covers the major OS/app-store/software
    repositories the paper's deployment trusted.
    """

    def __init__(self, hosts: tuple[str, ...] | list[str] = TRUSTED_VENDORS):
        self._exact: set[str] = set()
        self._suffixes: list[str] = []
        for host in hosts:
            cleaned = host.lower().strip(".")
            self._exact.add(cleaned)
            self._suffixes.append("." + cleaned)

    def add(self, host: str) -> None:
        """Trust ``host`` (and its subdomains) from now on."""
        cleaned = host.lower().strip(".")
        self._exact.add(cleaned)
        self._suffixes.append("." + cleaned)

    def trusted(self, host: str) -> bool:
        """True when ``host`` is whitelisted."""
        candidate = host.lower().strip(".")
        if candidate in self._exact:
            return True
        return any(candidate.endswith(suffix) for suffix in self._suffixes)

    def filter(self, transactions: list[HttpTransaction]) -> list[HttpTransaction]:
        """Drop transactions whose server is trusted."""
        return [txn for txn in transactions if not self.trusted(txn.server)]

    def __len__(self) -> int:
        return len(self._exact)
