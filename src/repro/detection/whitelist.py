"""Trusted-vendor traffic weeding (Section V-B noise reduction).

"To reduce noise from benign HTTP traffic, we weed out HTTP transactions
that originate from known vendors ... e.g. downloads from online
application stores / software repositories."
"""

from __future__ import annotations

from repro.core.model import HttpTransaction
from repro.synthesis.entities import TRUSTED_VENDORS

__all__ = ["VendorWhitelist"]


class VendorWhitelist:
    """Domain-suffix host whitelist with O(labels) lookups.

    A host matches when it equals a whitelisted entry or is a subdomain
    of one; matching is on whole domain labels, so ``evil-google.com``
    never matches ``google.com``.  Entries live in one deduplicated set
    and each lookup probes only the host's own label suffixes, keeping
    ``trusted()`` independent of whitelist size — the previous
    implementation scanned every suffix entry per transaction and let
    repeated ``add()`` calls grow that scan without bound.  The default
    list covers the major OS/app-store/software repositories the paper's
    deployment trusted.
    """

    def __init__(self, hosts: tuple[str, ...] | list[str] = TRUSTED_VENDORS):
        self._domains: set[str] = set()
        for host in hosts:
            self.add(host)

    def add(self, host: str) -> None:
        """Trust ``host`` (and its subdomains) from now on; idempotent."""
        cleaned = host.lower().strip(".")
        if cleaned:
            self._domains.add(cleaned)

    def trusted(self, host: str) -> bool:
        """True when ``host`` is whitelisted."""
        labels = host.lower().strip(".").split(".")
        return any(
            ".".join(labels[start:]) in self._domains
            for start in range(len(labels))
        )

    def filter(self, transactions: list[HttpTransaction]) -> list[HttpTransaction]:
        """Drop transactions whose server is trusted."""
        return [txn for txn in transactions if not self.trusted(txn.server)]

    def __len__(self) -> int:
        return len(self._domains)
