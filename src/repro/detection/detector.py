"""The on-the-wire detector (Stage 2 of Figure 5).

``OnTheWireDetector`` sits on an HTTP transaction stream (network edge or
web proxy position), weeds out trusted-vendor traffic, clusters the rest
into session watches, infers infection clues, and — once a clue opens a
watch — extracts the WCG's features and queries the trained ERF on every
meaningful update.  An infectious verdict raises an :class:`Alert` and
terminates the session; a benign verdict keeps the watch open until the
session stops growing.

Detector state is bounded: per-watch scoring bookkeeping is dropped the
moment a watch terminates, the session table prunes closed and stale
watches (see :mod:`repro.detection.monitor`), and the per-client alert
cooldown map is swept once it outgrows ``alert_state_cap``.  Scoring
itself leans on the WCG's version counters — an unchanged graph is never
re-extracted or re-scored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.model import HttpTransaction
from repro.core.payloads import is_exploit_type
from repro.detection.alerts import (
    Alert,
    AlertProvenance,
    AlertSink,
    ClueRecord,
    ListSink,
)
from repro.detection.clues import CluePolicy
from repro.detection.monitor import SessionTable, SessionWatch
from repro.detection.whitelist import VendorWhitelist
from repro.exceptions import DetectionError
from repro.features.extractor import FeatureExtractor
from repro.learning.forest import EnsembleRandomForest
from repro.obs import get_registry, get_tracer

__all__ = ["DetectorConfig", "OnTheWireDetector"]

#: Edge-kind column codes -> trace-event labels (repro.core.wcg).
_EDGE_KIND_LABELS = ("request", "response", "redirect")


@dataclass
class DetectorConfig:
    """Tunables of the on-the-wire stage.

    ``alert_threshold`` is the classifier-probability cut for raising an
    alert.  0.5 is the raw majority-of-probability-mass rule; the default
    0.7 is the deployment operating point tuned on ground-truth CV so
    that borderline mid-stream WCGs (the scores the ERF's averaging
    places between 0.5 and 0.65) do not page anyone — the paper's live
    deployments report essentially no false alerts.
    ``reclassify_interval`` bounds how often a watched-but-quiet WCG is
    re-scored (every update would be wasteful on asset storms —
    re-scoring always happens when a new host joins or a risky payload
    lands).
    """

    alert_threshold: float = 0.7
    reclassify_interval: int = 25
    idle_gap: float = 60.0
    use_whitelist: bool = True
    #: Suppress further alerts for the same client within this many
    #: seconds of the previous one.  An infection episode can fragment
    #: across several session watches (C&C probes, follow-up fetches);
    #: terminating "the corresponding session" (Section V-B) means one
    #: incident-level alert, not one per fragment.
    alert_cooldown: float = 180.0
    #: Idle horizon after which clue-less session watches are dropped
    #: from the table.  ``None`` = the table default,
    #: ``max(20 * idle_gap, 1200)``.
    prune_after: float | None = None
    #: Once the per-client cooldown map exceeds this many entries, drop
    #: the clients whose last alert is several cooldown windows old.
    alert_state_cap: int = 4096


@dataclass
class _PendingScore:
    """One classification request awaiting the (micro-batched) ERF call.

    The WCG reference plus its order/size at request time are captured
    here; feature extraction itself is deferred to the flush, where all
    pending rows are assembled in one vectorized
    :meth:`~repro.features.extractor.FeatureExtractor.extract_batch`
    pass.  That deferral is sound because the batching flush rule (no
    second transaction of the same client routes while one of its
    watches has a pending score) guarantees the graph cannot mutate
    between the request and the flush — the extracted row is exactly
    what request-time extraction would have produced.
    """

    watch: SessionWatch
    now: float
    wcg: "object"
    wcg_order: int
    wcg_size: int


class OnTheWireDetector:
    """Streaming malware-infection detector."""

    def __init__(
        self,
        classifier: EnsembleRandomForest,
        policy: CluePolicy | None = None,
        config: DetectorConfig | None = None,
        whitelist: VendorWhitelist | None = None,
        sink: AlertSink | None = None,
    ):
        if not classifier.trees_:
            raise DetectionError("classifier must be fitted before deployment")
        self.classifier = classifier
        self.policy = policy or CluePolicy()
        self.config = config or DetectorConfig()
        self.whitelist = whitelist or VendorWhitelist()
        # NB: an empty ListSink is falsy (it defines __len__), so a
        # plain `sink or ListSink()` would silently discard the caller's
        # sink — compare against None explicitly.
        self.sink = sink if sink is not None else ListSink()
        self._table = SessionTable(policy=self.policy,
                                   idle_gap=self.config.idle_gap,
                                   prune_after=self.config.prune_after)
        self._extractor = FeatureExtractor()
        self._updates_since_score: dict[str, int] = {}
        self._scored_order: dict[str, int] = {}
        self._scored_version: dict[str, int] = {}
        self._last_alert_ts: dict[str, float] = {}
        #: Per-watch (edge count, structure version) last surfaced to
        #: the tracer; only populated while tracing is enabled.
        self._traced_wcg: dict[str, tuple[int, int]] = {}
        self._tracer = get_tracer()
        self.transactions_seen = 0
        self.transactions_weeded = 0
        self.classifications = 0
        metrics = get_registry()
        self._metrics = metrics
        self._c_txns = metrics.counter("detector.transactions")
        self._c_weeded = metrics.counter("detector.weeded")
        self._c_scores = metrics.counter("detector.scores_requested")
        self._c_batches = metrics.counter("detector.score_batches_flushed")
        self._c_alerts = metrics.counter("detector.alerts")
        self._c_cooldown = metrics.counter("detector.cooldown_suppressed")
        self._h_batch_size = metrics.histogram("detector.score_batch_size")
        self._h_latency = metrics.histogram("detector.score_latency_seconds")

    # -- stream interface ---------------------------------------------------

    def process(self, txn: HttpTransaction) -> Alert | None:
        """Ingest one transaction; returns an alert if one fires."""
        self.transactions_seen += 1
        self._c_txns.inc()
        if self.config.use_whitelist and self.whitelist.trusted(txn.server):
            self.transactions_weeded += 1
            self._c_weeded.inc()
            return None
        watch = self._table.route(txn)
        if watch.alerted or watch.terminated:
            return None
        if watch.active_clue is None:
            return None  # nothing suspicious yet; keep accumulating
        if not self._should_score(watch, txn):
            return None
        return self._score(watch, txn.timestamp)

    def process_stream(self, transactions: list[HttpTransaction]) -> list[Alert]:
        """Replay an ordered stream; returns all alerts raised.

        Routes through :meth:`process_batch`, so consecutive
        classifications of *different* clients coalesce into matrix
        calls; alerts, scores, and counters are byte-identical to
        calling :meth:`process` per transaction.
        """
        return self.process_batch(transactions)

    def process_batch(self, transactions: list[HttpTransaction]) -> list[Alert]:
        """Ingest the transactions of one decoder batch/tick.

        Classification requests accumulate and are scored as **one**
        classifier matrix call (:meth:`score_batch`) instead of one
        single-row call each.  Semantics are identical to sequential
        :meth:`process` because pending scores are flushed before any
        transaction of a client that already has one is routed: a
        transaction can only mutate (or be routed by) its own client's
        watches, so at every flush point each pending watch's WCG, the
        cooldown map, and the routing structures are exactly what the
        sequential path saw.  Alerts dispatch in request order.
        """
        alerts: list[Alert] = []
        pending: list[_PendingScore] = []
        pending_clients: set[str] = set()
        for txn in transactions:
            self.transactions_seen += 1
            self._c_txns.inc()
            if self.config.use_whitelist and self.whitelist.trusted(txn.server):
                self.transactions_weeded += 1
                self._c_weeded.inc()
                continue
            if txn.client in pending_clients:
                alerts.extend(self.score_batch(pending))
                pending.clear()
                pending_clients.clear()
            watch = self._table.route(txn)
            if watch.alerted or watch.terminated:
                continue
            if watch.active_clue is None:
                continue  # nothing suspicious yet; keep accumulating
            if not self._should_score(watch, txn):
                continue
            request = self._request_score(watch, txn.timestamp)
            if request is not None:
                pending.append(request)
                pending_clients.add(watch.client)
        alerts.extend(self.score_batch(pending))
        return alerts

    def finalize(self, now: float | None = None) -> list[SessionWatch]:
        """Expire idle watches (end-of-capture); returns what was closed.

        Every clue-active watch gets one last classification before it
        closes — the WCG "stops growing" verdict of Section V-B.  The
        final verdicts are computed as one classifier matrix call and
        dispatched in table order, so cross-watch cooldown suppression
        behaves exactly as the sequential walk did.
        """
        if now is None:
            stamps = [w.last_ts for w in self._table.watches()]
            now = max(stamps, default=0.0) + self.config.idle_gap + 1.0
        requests = []
        for watch in self._table.watches():
            if watch.active_clue is not None and not watch.alerted \
                    and not watch.terminated:
                request = self._request_score(watch, watch.last_ts)
                if request is not None:
                    requests.append(request)
        self.score_batch(requests)
        expired = self._table.expire(now)
        for watch in expired:
            self._forget(watch.key)
        return expired

    # -- scoring ------------------------------------------------------------

    def _should_score(self, watch: SessionWatch, txn: HttpTransaction) -> bool:
        """Re-score on clue trigger, graph growth, risky payload, or
        periodically."""
        count = self._updates_since_score.get(watch.key, 0) + 1
        self._updates_since_score[watch.key] = count
        if count == 1:  # first score right after the clue fired
            return True
        if is_exploit_type(txn.payload_type):
            return True
        wcg = watch.wcg()
        if wcg.order > self._scored_order.get(watch.key, 0):
            return True  # a new host joined the conversation
        return count % self.config.reclassify_interval == 0

    def _request_score(
        self, watch: SessionWatch, now: float
    ) -> _PendingScore | None:
        """Capture one classification request (features + bookkeeping).

        The scoring-side bookkeeping happens here, at request time —
        equivalent to the sequential path because the flush rule keeps
        the watch untouched until the batched classifier call lands.
        """
        wcg = watch.wcg()
        if self._scored_version.get(watch.key) == wcg.version:
            # Nothing feature-bearing changed since the last score, and
            # that score did not alert (the watch would be terminated) —
            # the verdict is already known to be sub-threshold.
            return None
        self.classifications += 1
        self._c_scores.inc()
        self._updates_since_score[watch.key] = 1
        self._scored_order[watch.key] = wcg.order
        self._scored_version[watch.key] = wcg.version
        if self._tracer.enabled:
            self._trace_growth(watch, wcg, now)
        return _PendingScore(watch=watch, now=now, wcg=wcg,
                             wcg_order=wcg.order, wcg_size=wcg.size)

    def _trace_growth(self, watch: SessionWatch, wcg, now: float) -> None:
        """Surface the WCG's growth since the last score request.

        Edge events are emitted here — where the detection path
        materializes the graph — rather than from inside the builder:
        the builder folds its pending transactions lazily, and forcing
        extra folds just to observe edges would change *when* the
        out-of-order replay runs, breaking the tracing-on/off metrics
        identity.  Each event carries the edge's own timestamp from the
        column store, so the reconstructed timeline is stream-accurate
        even though emission batches at scoring points.  (On the rare
        out-of-order replay the store is rebuilt sorted, so the tail
        slice may describe re-ordered edges; the diff is deterministic
        either way.)
        """
        store = wcg.edge_store
        size = len(store)
        last_size, last_structure = self._traced_wcg.get(watch.key, (0, -1))
        if size > last_size:
            stamps = store.column("timestamp")
            kinds = store.column("kind")
            stages = store.column("stage")
            for index in range(last_size, size):
                self._tracer.emit(
                    "edge",
                    ts=float(stamps[index]),
                    client=watch.client,
                    watch=watch.key,
                    edge=_EDGE_KIND_LABELS[int(kinds[index])],
                    stage=int(stages[index]),
                    index=index,
                )
        structure = wcg.structure_version
        if structure != last_structure:
            self._tracer.emit(
                "wcg", ts=now, client=watch.client, watch=watch.key,
                order=int(wcg.order), size=int(size),
                structure_version=int(structure),
            )
        self._traced_wcg[watch.key] = (size, structure)

    def score_batch(self, requests: list[_PendingScore]) -> list[Alert]:
        """Score pending requests as one matrix call; dispatch in order.

        Feature rows are assembled here, in one vectorized
        ``extract_batch`` pass over the pending WCGs (safe because the
        flush rule froze them; see :class:`_PendingScore`).  Per-row
        classifier output is independent of the other rows in the
        matrix (both inference engines are elementwise across rows), so
        each verdict is byte-identical to the single-row call the
        sequential path would have made.
        """
        if not requests:
            return []
        rows = self._extractor.extract_batch(
            [request.wcg for request in requests]
        )
        scores, latency = self._timed_scores(rows)
        self._c_batches.inc()
        self._h_batch_size.observe(len(requests))
        alerts = []
        traced = self._tracer.enabled
        for index, (request, score) in enumerate(zip(requests, scores)):
            if traced:
                self._trace_score(request, float(score), len(requests),
                                  latency)
            alert = self._dispatch(request, float(score), rows[index])
            if alert is not None:
                alerts.append(alert)
        return alerts

    def _timed_scores(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, float | None]:
        """Classifier call; returns ``(scores, per-row seconds)``.

        The clock is only read when metrics or tracing want the
        latency, so the disabled path is exactly the bare classifier
        call (and reports ``None``).  The histogram observation stays
        metrics-gated — it is a no-op instrument otherwise.
        """
        if not (self._metrics.enabled or self._tracer.enabled):
            return self.classifier.decision_scores(rows), None
        started = time.perf_counter()
        scores = self.classifier.decision_scores(rows)
        elapsed = time.perf_counter() - started
        # Per-score latency: the batch call amortizes over its rows.
        per_row = elapsed / len(rows)
        self._h_latency.observe(per_row)
        return scores, per_row

    def _trace_score(self, request: _PendingScore, score: float,
                     batch: int, latency: float | None) -> None:
        """Emit one ``score`` event (engine, batch size, per-row
        latency; the latency is wall-clock and thus excluded from the
        canonical trace form)."""
        data = {
            "score": score,
            "engine": self.classifier.engine,
            "batch": batch,
            "order": request.wcg_order,
            "size": request.wcg_size,
        }
        if latency is not None:
            data["latency_s"] = latency
        self._tracer.emit("score", ts=request.now,
                          client=request.watch.client,
                          watch=request.watch.key, **data)

    def _score(self, watch: SessionWatch, now: float) -> Alert | None:
        """Request, score, and dispatch one watch immediately."""
        request = self._request_score(watch, now)
        if request is None:
            return None
        vector = self._extractor.extract(request.wcg)
        scores, latency = self._timed_scores(vector[None, :])
        score = float(scores[0])
        self._c_batches.inc()
        self._h_batch_size.observe(1)
        if self._tracer.enabled:
            self._trace_score(request, score, 1, latency)
        return self._dispatch(request, score, vector)

    def _dispatch(self, request: _PendingScore, score: float,
                  row: np.ndarray) -> Alert | None:
        """Apply the verdict: threshold, cooldown, alert, terminate.

        ``row`` is the feature vector the score came from; when tracing
        is enabled it feeds the alert's forest explanation.
        """
        watch = request.watch
        now = request.now
        traced = self._tracer.enabled
        if score < self.config.alert_threshold:
            if traced:
                self._tracer.emit(
                    "verdict", ts=now, client=watch.client,
                    watch=watch.key, decision="benign", score=score,
                    threshold=self.config.alert_threshold,
                )
            return None
        last = self._last_alert_ts.get(watch.client)
        if last is not None and now - last < self.config.alert_cooldown:
            # Same incident: terminate the fragment quietly.  A negative
            # delta (skewed or out-of-order timestamps) counts as inside
            # the cooldown — it is the same incident seen with an earlier
            # clock, not a reason to page twice.  Keep the high-water
            # mark so the window stays monotonic.
            self._c_cooldown.inc()
            self._last_alert_ts[watch.client] = max(last, now)
            watch.alerted = True
            watch.terminated = True
            self._forget(watch.key)
            if traced:
                self._tracer.emit(
                    "verdict", ts=now, client=watch.client,
                    watch=watch.key, decision="cooldown", score=score,
                    threshold=self.config.alert_threshold,
                    suppressed_by=last,
                )
                self._tracer.close_watch(watch.key, alerted=True)
            return None
        self._last_alert_ts[watch.client] = now
        self._sweep_alert_state()
        provenance = (
            self._build_provenance(request, row) if traced else None
        )
        alert = Alert(
            client=watch.client,
            score=score,
            clue=watch.active_clue,
            timestamp=now,
            wcg_order=request.wcg_order,
            wcg_size=request.wcg_size,
            session_key=watch.key,
            provenance=provenance,
        )
        watch.alerted = True
        watch.terminated = True  # DynaMiner terminates infectious sessions
        self._forget(watch.key)
        self._c_alerts.inc()
        if traced:
            self._tracer.emit(
                "verdict", ts=now, client=watch.client, watch=watch.key,
                decision="alert", score=score,
                threshold=self.config.alert_threshold,
                provenance=provenance.to_dict(),
            )
            self._tracer.close_watch(watch.key, alerted=True)
        self.sink.emit(alert)
        return alert

    def _build_provenance(self, request: _PendingScore,
                          row: np.ndarray) -> AlertProvenance:
        """Assemble the alert's provenance record.

        Clue chains come from the tracer's per-watch summary (kept
        outside the event ring, so they survive ring rotation); timing
        comes from the WCG's own timestamp column; the forest
        explanation is one vectorized pass over the compiled arena.
        Every field is stream-derived — no wall clock — so provenance
        is identical across runs and worker counts.
        """
        watch = request.watch
        now = request.now
        summary = self._tracer.watch_summary(watch.key)
        if summary is not None and summary.clues:
            chain = tuple(
                ClueRecord(
                    server=event.data.get("server", ""),
                    payload_type=event.data.get("payload", ""),
                    chain_length=int(event.data.get("chain_length", 0)),
                    timestamp=event.ts,
                )
                for event in summary.clues
            )
            clues_total = summary.clue_count
        elif watch.active_clue is not None:
            # The tracer was enabled after this watch opened (or its
            # timeline was evicted); fall back to the opening clue.
            clue = watch.active_clue
            chain = (ClueRecord(server=clue.server,
                                payload_type=clue.payload_type.value,
                                chain_length=clue.chain_length,
                                timestamp=clue.timestamp),)
            clues_total = 1
        else:
            chain = ()
            clues_total = 0
        first_clue_ts = chain[0].timestamp if chain else now
        store = request.wcg.edge_store
        first_edge_ts = (
            float(store.column("timestamp").min()) if len(store) else now
        )
        explanation = self.classifier.explain_row(row)
        return AlertProvenance(
            clue_chain=chain,
            clues_total=int(clues_total),
            first_clue_ts=float(first_clue_ts),
            first_edge_ts=float(first_edge_ts),
            time_to_detection=float(now - first_clue_ts),
            time_from_first_edge=float(now - first_edge_ts),
            wcg_order=int(request.wcg_order),
            wcg_size=int(request.wcg_size),
            engine=self.classifier.engine,
            tree_votes=explanation["tree_votes"],
            tree_scores=explanation["tree_scores"],
            vote_tally=explanation["vote_tally"],
            feature_path_counts=explanation["feature_path_counts"],
        )

    def _forget(self, key: str) -> None:
        """Drop per-watch scoring state once the watch is closed."""
        self._updates_since_score.pop(key, None)
        self._scored_order.pop(key, None)
        self._scored_version.pop(key, None)
        self._traced_wcg.pop(key, None)

    def _sweep_alert_state(self) -> None:
        """Bound the per-client cooldown map.

        Entries several cooldown windows behind the newest alert can
        never suppress anything again; drop them once the map outgrows
        the cap.  (If every entry is recent the map stays large — those
        entries are still load-bearing.)
        """
        if len(self._last_alert_ts) <= self.config.alert_state_cap:
            return
        horizon = (
            max(self._last_alert_ts.values())
            - 4.0 * self.config.alert_cooldown
        )
        self._last_alert_ts = {
            client: stamp
            for client, stamp in self._last_alert_ts.items()
            if stamp >= horizon
        }

    # -- introspection --------------------------------------------------------

    @property
    def tracer(self):
        """The tracer this detector captured at construction (the
        :data:`~repro.obs.NULL_TRACER` when tracing is off)."""
        return self._tracer

    @property
    def alerts(self) -> list[Alert]:
        """Alerts collected so far (when using the default ListSink)."""
        if isinstance(self.sink, ListSink):
            return list(self.sink.alerts)
        raise DetectionError("alerts are only tracked on a ListSink")

    def watch_count(self) -> int:
        """Number of session watches opened so far."""
        return self._table.opened_count

    def active_watches(self) -> list[SessionWatch]:
        """Live clue-active watches (the ones with a WCG worth
        snapshotting), in table order."""
        return [
            watch for watch in self._table.watches()
            if watch.active_clue is not None
            and not watch.alerted and not watch.terminated
        ]

    def tracked_state_size(self) -> tuple[int, int, int]:
        """(live watches, per-watch score entries, cooldown entries) —
        the three containers the boundedness regression test pins."""
        return (
            len(self._table.watches()),
            len(self._updates_since_score)
            + len(self._scored_order)
            + len(self._scored_version),
            len(self._last_alert_ts),
        )
