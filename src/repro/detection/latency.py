"""Detection-latency measurement: how far into an infection the alert fires.

The paper's central deployment claim is *on-the-wire* detection — the
session is terminated while the infection unfolds, not after.  The
interesting number is therefore not only *whether* an episode alerts
but *when*: in stream time (seconds from the episode's first
transaction) and in conversation progress (fraction of the episode's
transactions already seen).

A post-download alert still beats VirusTotal by days (Case Study 1),
but an alert during the redirection run-up or at the payload download
stops exfiltration entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Trace
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.learning.forest import EnsembleRandomForest

__all__ = ["EpisodeLatency", "measure_latency", "latency_summary"]


@dataclass(frozen=True)
class EpisodeLatency:
    """Alert timing for one infection episode.

    ``seconds`` is stream time from the episode's first transaction to
    the alert; ``progress`` is the fraction of the episode's
    transactions processed when the alert fired (1.0 = end-of-stream
    verdict).  ``None`` values mean the episode was missed.
    """

    family: str
    detected: bool
    seconds: float | None = None
    progress: float | None = None


def measure_latency(
    classifier: EnsembleRandomForest,
    traces: list[Trace],
    policy: CluePolicy | None = None,
    config: DetectorConfig | None = None,
) -> list[EpisodeLatency]:
    """Replay each trace through a fresh detector; record alert timing."""
    results: list[EpisodeLatency] = []
    for trace in traces:
        transactions = sorted(trace.transactions, key=lambda t: t.timestamp)
        if not transactions:
            continue
        detector = OnTheWireDetector(
            classifier,
            policy=policy or CluePolicy(),
            config=config or DetectorConfig(alert_threshold=0.5),
        )
        start = transactions[0].timestamp
        alert_index: int | None = None
        alert_ts: float | None = None
        for index, txn in enumerate(transactions):
            alert = detector.process(txn)
            if alert is not None:
                alert_index = index
                alert_ts = alert.timestamp
                break
        if alert_index is None:
            # End-of-stream verdict counts as detection at progress 1.0.
            before = len(detector.alerts)
            detector.finalize()
            if len(detector.alerts) > before:
                alert_index = len(transactions) - 1
                alert_ts = transactions[-1].timestamp
        if alert_index is None:
            results.append(EpisodeLatency(family=trace.family,
                                          detected=False))
        else:
            results.append(
                EpisodeLatency(
                    family=trace.family,
                    detected=True,
                    seconds=max(0.0, alert_ts - start),
                    progress=(alert_index + 1) / len(transactions),
                )
            )
    return results


def latency_summary(latencies: list[EpisodeLatency]) -> dict[str, float]:
    """Aggregate detection-latency statistics."""
    detected = [l for l in latencies if l.detected]
    if not latencies:
        return {"episodes": 0.0, "detection_rate": 0.0}
    seconds = np.array([l.seconds for l in detected]) if detected else None
    progress = np.array([l.progress for l in detected]) if detected else None
    summary = {
        "episodes": float(len(latencies)),
        "detection_rate": len(detected) / len(latencies),
    }
    if detected:
        summary.update({
            "median_seconds": float(np.median(seconds)),
            "p90_seconds": float(np.percentile(seconds, 90)),
            "median_progress": float(np.median(progress)),
            "mid_stream_fraction": float((progress < 1.0).mean()),
        })
    return summary
