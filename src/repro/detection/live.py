"""Live packet-level deployment: packets in, alerts out.

The batch pipeline (`repro.net.flows.transactions_from_packets`) decodes
a complete capture at once.  A deployed DynaMiner sits on a live tap and
must surface each HTTP transaction the moment its response is complete —
this module provides that incremental path:

``LiveDecoder``
    feed pcap records one at a time; completed request/response pairs
    are emitted as :class:`~repro.core.model.HttpTransaction` as soon as
    both sides have been reassembled (unanswered requests flush when
    their connection closes or at :meth:`LiveDecoder.flush`).

``LiveDetector``
    glues a :class:`LiveDecoder` to an
    :class:`~repro.detection.detector.OnTheWireDetector`: feed packets,
    collect alerts.

Decoding is incremental end to end: every connection owns a
:class:`~repro.net.flows.StreamPairer` whose resumable HTTP parsers
retain partial-message state between deliveries, reading each direction
through the reassembler's consumable view (parse cursor + compaction of
consumed bytes).  Each payload byte is therefore examined once and
buffered only while its message is still incomplete, so the per-packet
cost is O(bytes in the packet) and a whole capture costs O(total bytes)
— even for one giant connection, where the previous implementation
re-parsed the entire reassembled buffer on every delivery and blew up
quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import HttpTransaction
from repro.detection.alerts import Alert
from repro.detection.detector import OnTheWireDetector
from repro.exceptions import HttpParseError, PcapError
from repro.net.flows import AddressBook, StreamPairer, _segments_of
from repro.net.pcap import LINKTYPE_ETHERNET, PcapPacket
from repro.net.reassembly import (
    DEFAULT_MAX_BUFFERED,
    FlowKey,
    TcpReassembler,
    TcpStream,
)
from repro.obs import PipelineStatsReporter, get_registry

__all__ = ["OverloadPolicy", "LiveDecoder", "LiveDetector"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Explicit load-shedding rules for a saturated tap.

    A live tap cannot apply backpressure to the wire, so overload has to
    shed *something*; this policy makes the shedding deliberate and
    observable rather than an exception or an unbounded buffer:

    * ``max_connections`` — cap on concurrently tracked connections.
      Segments that would *open* a connection past the cap are dropped
      and counted (``decode.dropped``); established connections keep
      flowing, so a SYN/connection flood degrades new-flow visibility
      first and never evicts live sessions.
    * ``max_buffered_per_direction`` — cap on out-of-order bytes held
      per stream direction.  A direction exceeding it stops being
      reassembled (its decoded prefix stands) and is counted
      (``reassembly.overflows``); the rest of the tap is unaffected.
    """

    max_connections: int = 100_000
    max_buffered_per_direction: int = DEFAULT_MAX_BUFFERED


class LiveDecoder:
    """Incremental pcap-record -> HTTP-transaction decoder."""

    def __init__(self, linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None,
                 policy: OverloadPolicy | None = None):
        self.linktype = linktype
        self.book = book
        self.policy = policy if policy is not None else OverloadPolicy()
        self._reassembler = TcpReassembler(
            max_buffered=self.policy.max_buffered_per_direction
        )
        #: Per-connection incremental pairing state machines.
        self._pairers: dict[FlowKey, StreamPairer] = {}
        #: Connections whose payload is not HTTP (skip quietly).
        self._not_http: set[FlowKey] = set()
        self._metrics = get_registry()
        self._c_packets = self._metrics.counter("decode.packets")
        self._c_bytes = self._metrics.counter("decode.bytes")
        self._c_errors = self._metrics.counter("decode.errors")
        self._c_dropped = self._metrics.counter("decode.dropped")
        self._c_not_http = self._metrics.counter("decode.non_http_streams")

    def feed(self, packet: PcapPacket) -> list[HttpTransaction]:
        """Ingest one pcap record; returns newly completed transactions.

        A record that fails link/IP/TCP decoding is counted
        (``decode.errors``) and skipped: a live tap sees plenty of
        traffic the decoder was never meant to parse, and one mangled
        frame must not stall the wire.
        """
        emitted: list[HttpTransaction] = []
        self._c_packets.inc()
        self._c_bytes.inc(len(packet.data))
        with self._metrics.span("decode.feed"):
            try:
                for ts, src, dst, segment in _segments_of(
                    [packet], self.linktype
                ):
                    key = FlowKey.of(src, segment.src_port,
                                     dst, segment.dst_port)
                    if (
                        key not in self._reassembler
                        and len(self._reassembler)
                        >= self.policy.max_connections
                    ):
                        # Overload shed (OverloadPolicy): refuse to open
                        # connections past the cap, visibly.
                        self._c_dropped.inc()
                        continue
                    stream = self._reassembler.feed(ts, src, dst, segment)
                    emitted.extend(self._drain(stream, final=stream.closed))
            except PcapError:
                self._c_errors.inc()
        return emitted

    def flush(self) -> list[HttpTransaction]:
        """End-of-capture: emit whatever is still pending everywhere."""
        emitted: list[HttpTransaction] = []
        for stream in self._reassembler.streams():
            emitted.extend(self._drain(stream, final=True))
        return emitted

    def _drain(self, stream: TcpStream, final: bool) -> list[HttpTransaction]:
        key = stream.key
        if key in self._not_http or stream.client is None:
            return []
        pairer = self._pairers.get(key)
        if pairer is None:
            pairer = self._pairers[key] = StreamPairer(stream, self.book)
        try:
            return pairer.poll(final=final)
        except HttpParseError:
            # Transactions already emitted from the stream's well-formed
            # prefix stand; the remainder is not HTTP.
            self._not_http.add(key)
            self._c_not_http.inc()
            return []


class LiveDetector:
    """Packet-in, alert-out wrapper around the on-the-wire detector.

    ``reporter`` optionally attaches a
    :class:`~repro.obs.PipelineStatsReporter`: interval snapshots tick
    from the packet loop (:meth:`feed`) and a final one is emitted by
    :meth:`finish`, so a deployed tap streams its own telemetry without
    any extra wiring.
    """

    def __init__(self, detector: OnTheWireDetector,
                 linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None,
                 reporter: PipelineStatsReporter | None = None,
                 policy: OverloadPolicy | None = None):
        self.detector = detector
        self.decoder = LiveDecoder(linktype=linktype, book=book,
                                   policy=policy)
        self.reporter = reporter
        self.transactions_emitted = 0
        self._metrics = get_registry()

    def feed(self, packet: PcapPacket) -> list[Alert]:
        """Ingest one packet; returns alerts raised by it (if any).

        The transactions a packet completes form one detector
        micro-batch: their classifications coalesce into a single
        classifier matrix call with per-transaction semantics unchanged
        (see :meth:`OnTheWireDetector.process_batch`).
        """
        transactions = self.decoder.feed(packet)
        self.transactions_emitted += len(transactions)
        with self._metrics.span("detector.process_batch"):
            alerts = self.detector.process_batch(transactions)
        if self.reporter is not None:
            self.reporter.maybe_emit()
        return alerts

    def finish(self) -> list[Alert]:
        """Flush the decoder and finalize the detector's watches."""
        transactions = self.decoder.flush()
        self.transactions_emitted += len(transactions)
        alerts = self.detector.process_batch(transactions)
        before = len(self.detector.alerts)
        with self._metrics.span("detector.finalize"):
            self.detector.finalize()
        alerts.extend(self.detector.alerts[before:])
        if self.reporter is not None:
            self.reporter.finalize()
        return alerts
