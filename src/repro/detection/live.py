"""Live packet-level deployment: packets in, alerts out.

The batch pipeline (`repro.net.flows.transactions_from_packets`) decodes
a complete capture at once.  A deployed DynaMiner sits on a live tap and
must surface each HTTP transaction the moment its response is complete —
this module provides that incremental path:

``LiveDecoder``
    feed pcap records one at a time; completed request/response pairs
    are emitted as :class:`~repro.core.model.HttpTransaction` as soon as
    both sides have been reassembled (unanswered requests flush when
    their connection closes or at :meth:`LiveDecoder.flush`).

``DetectionEngine``
    the pure per-shard engine: a :class:`LiveDecoder` glued to an
    :class:`~repro.detection.detector.OnTheWireDetector`, no I/O — the
    unit :mod:`repro.service` runs one of per worker process.

``LiveDetector``
    the thin single-process front over one :class:`DetectionEngine`,
    adding optional telemetry reporting.

Decoding is incremental end to end: every connection owns a
:class:`~repro.net.flows.StreamPairer` whose resumable HTTP parsers
retain partial-message state between deliveries, reading each direction
through the reassembler's consumable view (parse cursor + compaction of
consumed bytes).  Each payload byte is therefore examined once and
buffered only while its message is still incomplete, so the per-packet
cost is O(bytes in the packet) and a whole capture costs O(total bytes)
— even for one giant connection, where the previous implementation
re-parsed the entire reassembled buffer on every delivery and blew up
quadratically.

Connection state is bounded the same way: a closed, fully drained
connection lingers for ``OverloadPolicy.closed_linger`` stream-seconds
(a TIME_WAIT analogue that absorbs trailing ACKs and late
retransmissions) and is then evicted — reassembler entry, pairer, and
non-HTTP marker together.  The ``max_connections`` overload cap counts
*live* connections only, so a long-running tap keeps accepting new
flows forever instead of strangling once cap-many connections have
*ever* been seen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import HttpTransaction
from repro.detection.alerts import Alert
from repro.detection.clues import InfectionClue
from repro.detection.detector import OnTheWireDetector
from repro.exceptions import HttpParseError, PcapError
from repro.net.flows import AddressBook, StreamPairer, _segments_of
from repro.net.pcap import LINKTYPE_ETHERNET, PcapPacket
from repro.net.reassembly import (
    DEFAULT_MAX_BUFFERED,
    FlowKey,
    TcpReassembler,
    TcpStream,
)
from repro.obs import PipelineStatsReporter, get_registry, write_trace

__all__ = ["OverloadPolicy", "LiveDecoder", "DetectionEngine",
           "LiveDetector", "WatchSnapshot"]


@dataclass(frozen=True)
class WatchSnapshot:
    """Cheap, picklable summary of one live clue-active session watch.

    Built from the WCG's column store — the per-watch numbers below are
    counter reads plus numpy reductions over column *slices* (stage
    histogram, timestamp extrema), no per-edge object materialization —
    which is what makes per-shard snapshotting viable on the hot path
    of :mod:`repro.service` (DESIGN.md §14).

    Snapshots are value objects: two engines that saw the same client's
    packets produce equal snapshots, which is how the sharded
    differential pins fleet state against the single-process engine.
    """

    key: str
    client: str
    transactions: int
    clue: InfectionClue | None
    order: int
    size: int
    version: int
    structure_version: int
    first_edge_ts: float
    last_edge_ts: float
    #: Edge counts per stage (pre-download, download, post-download).
    stage_counts: tuple[int, int, int]


@dataclass(frozen=True)
class OverloadPolicy:
    """Explicit load-shedding rules for a saturated tap.

    A live tap cannot apply backpressure to the wire, so overload has to
    shed *something*; this policy makes the shedding deliberate and
    observable rather than an exception or an unbounded buffer:

    * ``max_connections`` — cap on concurrently tracked *live*
      connections (closed connections awaiting eviction do not count).
      Segments that would *open* a connection past the cap are dropped
      and counted (``decode.dropped``); established connections keep
      flowing, so a SYN/connection flood degrades new-flow visibility
      first and never evicts live sessions.
    * ``max_buffered_per_direction`` — cap on out-of-order bytes held
      per stream direction.  A direction exceeding it stops being
      reassembled (its decoded prefix stands) and is counted
      (``reassembly.overflows``); the rest of the tap is unaffected.
    * ``closed_linger`` — stream-seconds a closed, fully drained
      connection is retained before its state is evicted.  The linger
      absorbs post-close chatter (trailing ACKs, late retransmissions)
      exactly like TCP's TIME_WAIT; a fresh SYN reusing the 4-tuple
      inside the window evicts immediately and starts a new
      conversation.
    """

    max_connections: int = 100_000
    max_buffered_per_direction: int = DEFAULT_MAX_BUFFERED
    closed_linger: float = 60.0


class LiveDecoder:
    """Incremental pcap-record -> HTTP-transaction decoder."""

    def __init__(self, linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None,
                 policy: OverloadPolicy | None = None):
        self.linktype = linktype
        self.book = book
        self.policy = policy if policy is not None else OverloadPolicy()
        self._reassembler = TcpReassembler(
            max_buffered=self.policy.max_buffered_per_direction
        )
        #: Per-connection incremental pairing state machines.
        self._pairers: dict[FlowKey, StreamPairer] = {}
        #: Connections whose payload is not HTTP (skip quietly).
        self._not_http: set[FlowKey] = set()
        #: Closed-and-drained connections awaiting eviction, keyed to
        #: the stream time of their last activity.  Insertion order is
        #: last-activity order (entries are re-appended on post-close
        #: chatter), so the linger sweep pops from the front.
        self._closed: dict[FlowKey, float] = {}
        self._metrics = get_registry()
        self._c_packets = self._metrics.counter("decode.packets")
        self._c_bytes = self._metrics.counter("decode.bytes")
        self._c_errors = self._metrics.counter("decode.errors")
        self._c_dropped = self._metrics.counter("decode.dropped")
        self._c_not_http = self._metrics.counter("decode.non_http_streams")
        self._c_evicted = self._metrics.counter("decode.evicted_connections")
        self._g_live = self._metrics.gauge("decode.live_connections")

    @property
    def live_connections(self) -> int:
        """Connections currently tracked and not yet closed."""
        return len(self._reassembler) - len(self._closed)

    def feed(self, packet: PcapPacket) -> list[HttpTransaction]:
        """Ingest one pcap record; returns newly completed transactions.

        A record that fails link/IP/TCP decoding is counted
        (``decode.errors``) and skipped: a live tap sees plenty of
        traffic the decoder was never meant to parse, and one mangled
        frame must not stall the wire.
        """
        emitted: list[HttpTransaction] = []
        self._c_packets.inc()
        self._c_bytes.inc(len(packet.data))
        with self._metrics.span("decode.feed"):
            try:
                for ts, src, dst, segment in _segments_of(
                    [packet], self.linktype
                ):
                    key = FlowKey.of(src, segment.src_port,
                                     dst, segment.dst_port)
                    self._sweep_closed(ts)
                    if key in self._closed and segment.syn \
                            and not segment.is_ack:
                        # TIME_WAIT-style tuple reuse: a fresh SYN means
                        # a new conversation — release the finished
                        # one's state now rather than at linger expiry.
                        self._evict(key)
                    if (
                        key not in self._reassembler
                        and self.live_connections
                        >= self.policy.max_connections
                    ):
                        # Overload shed (OverloadPolicy): refuse to open
                        # connections past the cap, visibly.
                        self._c_dropped.inc()
                        continue
                    stream = self._reassembler.feed(ts, src, dst, segment)
                    emitted.extend(self._drain(stream, final=stream.closed))
                    if stream.closed:
                        # Mark (or refresh) the linger slot; re-append
                        # keeps the dict ordered by last activity.
                        self._closed.pop(key, None)
                        self._closed[key] = ts
                    self._g_live.set(self.live_connections)
            except PcapError:
                self._c_errors.inc()
        return emitted

    def flush(self) -> list[HttpTransaction]:
        """End-of-capture: emit whatever is still pending everywhere."""
        emitted: list[HttpTransaction] = []
        for stream in self._reassembler.streams():
            emitted.extend(self._drain(stream, final=True))
        return emitted

    def _sweep_closed(self, now: float) -> None:
        """Evict closed connections whose linger window has elapsed."""
        linger = self.policy.closed_linger
        while self._closed:
            key, marked = next(iter(self._closed.items()))
            if now - marked < linger:
                break
            self._evict(key)

    def _evict(self, key: FlowKey) -> None:
        """Drop every bit of per-connection state for ``key``."""
        self._closed.pop(key, None)
        self._reassembler.evict(key)
        self._pairers.pop(key, None)
        self._not_http.discard(key)
        self._c_evicted.inc()

    def _drain(self, stream: TcpStream, final: bool) -> list[HttpTransaction]:
        key = stream.key
        if key in self._not_http or stream.client is None:
            return []
        pairer = self._pairers.get(key)
        if pairer is None:
            pairer = self._pairers[key] = StreamPairer(stream, self.book)
        try:
            return pairer.poll(final=final)
        except HttpParseError:
            # Transactions already emitted from the stream's well-formed
            # prefix stand; the remainder is not HTTP.
            self._not_http.add(key)
            self._c_not_http.inc()
            return []


class DetectionEngine:
    """Pure per-shard detection engine: packets in, alerts out, no I/O.

    Owns exactly the state one shard needs — the decoder (reassembler +
    pairing state), the detector (session table, WCGs, classifier) —
    and nothing else: no reporter, no files, no queues.  ``feed`` /
    ``finish`` is the whole contract, which is what lets
    :mod:`repro.service` run one engine per worker process and merge
    their outputs deterministically, and what keeps the single-process
    :class:`LiveDetector` byte-identical to a one-shard fleet.
    """

    def __init__(self, detector: OnTheWireDetector,
                 linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None,
                 policy: OverloadPolicy | None = None):
        self.detector = detector
        self.decoder = LiveDecoder(linktype=linktype, book=book,
                                   policy=policy)
        self.transactions_emitted = 0
        self._metrics = get_registry()

    def feed(self, packet: PcapPacket) -> list[Alert]:
        """Ingest one packet; returns alerts raised by it (if any).

        The transactions a packet completes form one detector
        micro-batch: their classifications coalesce into a single
        classifier matrix call with per-transaction semantics unchanged
        (see :meth:`OnTheWireDetector.process_batch`).
        """
        transactions = self.decoder.feed(packet)
        self.transactions_emitted += len(transactions)
        with self._metrics.span("detector.process_batch"):
            return self.detector.process_batch(transactions)

    def finish(self) -> list[Alert]:
        """Flush the decoder and finalize the detector's watches."""
        transactions = self.decoder.flush()
        self.transactions_emitted += len(transactions)
        alerts = self.detector.process_batch(transactions)
        before = len(self.detector.alerts)
        with self._metrics.span("detector.finalize"):
            self.detector.finalize()
        alerts.extend(self.detector.alerts[before:])
        return alerts

    def snapshot_watches(self) -> list["WatchSnapshot"]:
        """Summaries of every live clue-active watch, sorted by
        ``(client, key)``.

        Each summary is assembled from the watch WCG's columns (slice
        reductions, see :class:`WatchSnapshot`); the sort makes the
        list canonical, so per-shard lists concatenate and re-sort into
        the same fleet view regardless of worker count.
        """
        snapshots: list[WatchSnapshot] = []
        for watch in self.detector.active_watches():
            wcg = watch.wcg()
            store = wcg.edge_store
            timestamps = store.column("timestamp")
            stage_hist = np.bincount(
                store.column("stage"), minlength=3
            )
            snapshots.append(WatchSnapshot(
                key=watch.key,
                client=watch.client,
                transactions=len(watch.transactions),
                clue=watch.active_clue,
                order=wcg.order,
                size=wcg.size,
                version=wcg.version,
                structure_version=wcg.structure_version,
                first_edge_ts=float(timestamps.min()) if len(store) else 0.0,
                last_edge_ts=float(timestamps.max()) if len(store) else 0.0,
                stage_counts=(int(stage_hist[0]), int(stage_hist[1]),
                              int(stage_hist[2])),
            ))
        snapshots.sort(key=lambda s: (s.client, s.key))
        return snapshots


class LiveDetector:
    """Packet-in, alert-out wrapper around the on-the-wire detector.

    A thin front over one :class:`DetectionEngine`: the engine does the
    work, this class adds the I/O the engine deliberately lacks —
    ``reporter`` optionally attaches a
    :class:`~repro.obs.PipelineStatsReporter` whose interval snapshots
    tick from the packet loop (:meth:`feed`) with a final one emitted by
    :meth:`finish`, so a deployed tap streams its own telemetry without
    any extra wiring.  ``trace_out`` (a path or file-like object) makes
    :meth:`finish` drain the detector's tracer to JSON lines — a no-op
    unless tracing was enabled before the detector was built.
    """

    def __init__(self, detector: OnTheWireDetector,
                 linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None,
                 reporter: PipelineStatsReporter | None = None,
                 policy: OverloadPolicy | None = None,
                 trace_out=None):
        self.engine = DetectionEngine(detector, linktype=linktype,
                                      book=book, policy=policy)
        self.reporter = reporter
        self.trace_out = trace_out

    @property
    def detector(self) -> OnTheWireDetector:
        return self.engine.detector

    @property
    def decoder(self) -> LiveDecoder:
        return self.engine.decoder

    @property
    def transactions_emitted(self) -> int:
        return self.engine.transactions_emitted

    def feed(self, packet: PcapPacket) -> list[Alert]:
        """Ingest one packet; returns alerts raised by it (if any)."""
        alerts = self.engine.feed(packet)
        if self.reporter is not None:
            self.reporter.maybe_emit()
        return alerts

    def finish(self) -> list[Alert]:
        """Flush the decoder and finalize the detector's watches;
        drains the trace to ``trace_out`` when one was configured."""
        alerts = self.engine.finish()
        if self.reporter is not None:
            self.reporter.finalize()
        tracer = self.detector.tracer
        if self.trace_out is not None and tracer.enabled:
            write_trace(tracer.drain(), self.trace_out)
        return alerts
