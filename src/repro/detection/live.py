"""Live packet-level deployment: packets in, alerts out.

The batch pipeline (`repro.net.flows.transactions_from_packets`) decodes
a complete capture at once.  A deployed DynaMiner sits on a live tap and
must surface each HTTP transaction the moment its response is complete —
this module provides that incremental path:

``LiveDecoder``
    feed pcap records one at a time; completed request/response pairs
    are emitted as :class:`~repro.core.model.HttpTransaction` as soon as
    both sides have been reassembled (unanswered requests flush when
    their connection closes or at :meth:`LiveDecoder.flush`).

``LiveDetector``
    glues a :class:`LiveDecoder` to an
    :class:`~repro.detection.detector.OnTheWireDetector`: feed packets,
    collect alerts.

Parsing re-scans a stream's reassembled buffer on each delivery, which
is quadratic in the worst case for one giant connection; captures in the
paper's regime (thousands of transactions across many connections) stay
comfortably linear in practice.
"""

from __future__ import annotations

from repro.core.model import HttpTransaction
from repro.detection.alerts import Alert
from repro.detection.detector import OnTheWireDetector
from repro.exceptions import HttpParseError
from repro.net.flows import AddressBook, _pair_stream, _segments_of
from repro.net.pcap import LINKTYPE_ETHERNET, PcapPacket
from repro.net.reassembly import FlowKey, TcpReassembler, TcpStream

__all__ = ["LiveDecoder", "LiveDetector"]


class LiveDecoder:
    """Incremental pcap-record -> HTTP-transaction decoder."""

    def __init__(self, linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None):
        self.linktype = linktype
        self.book = book
        self._reassembler = TcpReassembler()
        #: Per-connection count of transactions already emitted.
        self._emitted: dict[FlowKey, int] = {}
        #: Connections whose payload is not HTTP (skip quietly).
        self._not_http: set[FlowKey] = set()

    def feed(self, packet: PcapPacket) -> list[HttpTransaction]:
        """Ingest one pcap record; returns newly completed transactions."""
        emitted: list[HttpTransaction] = []
        for ts, src, dst, segment in _segments_of([packet], self.linktype):
            stream = self._reassembler.feed(ts, src, dst, segment)
            emitted.extend(self._drain(stream, final=stream.closed))
        return emitted

    def flush(self) -> list[HttpTransaction]:
        """End-of-capture: emit whatever is still pending everywhere."""
        emitted: list[HttpTransaction] = []
        for stream in self._reassembler.streams():
            emitted.extend(self._drain(stream, final=True))
        return emitted

    def _drain(self, stream: TcpStream, final: bool) -> list[HttpTransaction]:
        key = stream.key
        if key in self._not_http or stream.client is None:
            return []
        try:
            transactions = _pair_stream(stream, self.book)
        except HttpParseError:
            self._not_http.add(key)
            return []
        already = self._emitted.get(key, 0)
        if not final:
            # Hold back transactions whose response has not arrived:
            # they sit at the tail and may still complete.
            while transactions and transactions[-1].response is None:
                transactions = transactions[:-1]
        fresh = transactions[already:]
        if fresh:
            self._emitted[key] = already + len(fresh)
        return fresh


class LiveDetector:
    """Packet-in, alert-out wrapper around the on-the-wire detector."""

    def __init__(self, detector: OnTheWireDetector,
                 linktype: int = LINKTYPE_ETHERNET,
                 book: AddressBook | None = None):
        self.detector = detector
        self.decoder = LiveDecoder(linktype=linktype, book=book)
        self.transactions_emitted = 0

    def feed(self, packet: PcapPacket) -> list[Alert]:
        """Ingest one packet; returns alerts raised by it (if any)."""
        alerts: list[Alert] = []
        for txn in self.decoder.feed(packet):
            self.transactions_emitted += 1
            alert = self.detector.process(txn)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def finish(self) -> list[Alert]:
        """Flush the decoder and finalize the detector's watches."""
        alerts: list[Alert] = []
        for txn in self.decoder.flush():
            self.transactions_emitted += 1
            alert = self.detector.process(txn)
            if alert is not None:
                alerts.append(alert)
        before = len(self.detector.alerts)
        self.detector.finalize()
        alerts.extend(self.detector.alerts[before:])
        return alerts
