"""Per-session WCG watching (Section V-B, "WCG classification and update").

A :class:`SessionWatch` owns one candidate conversation: its transaction
list, its incremental WCG builder, and its clue detector.  The
:class:`SessionTable` clusters an interleaved multi-client stream into
watches using session IDs with the referrer/timestamp fallback heuristic
— the streaming counterpart of :func:`repro.core.sessions.group_sessions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import WCGBuilder
from repro.core.model import HttpTransaction
from repro.core.sessions import extract_session_id
from repro.core.wcg import WebConversationGraph
from repro.detection.clues import ClueDetector, CluePolicy, InfectionClue

__all__ = ["SessionWatch", "SessionTable"]


@dataclass
class SessionWatch:
    """State of one watched conversation."""

    key: str
    client: str
    policy: CluePolicy
    transactions: list[HttpTransaction] = field(default_factory=list)
    session_ids: set[str] = field(default_factory=set)
    hosts: set[str] = field(default_factory=set)
    last_ts: float = 0.0
    #: Set when a clue fired and the WCG is under classifier watch.
    active_clue: InfectionClue | None = None
    alerted: bool = False
    terminated: bool = False

    def __post_init__(self) -> None:
        self._clues = ClueDetector(self.policy)
        self._builder = WCGBuilder(victim=self.client)

    def add(self, txn: HttpTransaction) -> InfectionClue | None:
        """Ingest one transaction; returns a clue if one fires now."""
        self.transactions.append(txn)
        self._builder.add(txn)
        session_id = extract_session_id(txn)
        if session_id:
            self.session_ids.add(session_id)
        self.hosts.add(txn.server)
        ref = txn.request.referrer_host
        if ref:
            self.hosts.add(ref)
        self.last_ts = max(self.last_ts, txn.timestamp)
        clue = self._clues.observe(txn)
        if clue is not None and self.active_clue is None:
            self.active_clue = clue
        return clue

    def wcg(self) -> WebConversationGraph:
        """The (cached, incrementally rebuilt) WCG for this session."""
        return self._builder.build()

    def matches(self, txn: HttpTransaction, session_id: str,
                idle_gap: float) -> bool:
        """Does ``txn`` belong to this watch? (clustering heuristic)"""
        if txn.client != self.client:
            return False
        if session_id and session_id in self.session_ids:
            return True
        if txn.timestamp - self.last_ts > idle_gap:
            return False
        ref = txn.request.referrer_host
        if ref and ref in self.hosts:
            return True
        if txn.server in self.hosts:
            return True
        # Timestamp-proximity fallback (Section V-B): a referrer-less
        # POST from the same client to a never-seen host inside the
        # activity window is grouped with the ongoing conversation —
        # exactly the shape of a post-infection call-back.
        from repro.core.model import HttpMethod

        return (
            txn.request.method is HttpMethod.POST
            and not ref
            and not self.terminated
        )


class SessionTable:
    """Clusters a live transaction stream into per-session watches."""

    def __init__(self, policy: CluePolicy | None = None,
                 idle_gap: float = 60.0):
        self.policy = policy or CluePolicy()
        self.idle_gap = idle_gap
        self._watches: dict[str, list[SessionWatch]] = {}
        self._serial = 0

    def route(self, txn: HttpTransaction) -> SessionWatch:
        """Find (or open) the watch that owns ``txn`` and ingest it."""
        session_id = extract_session_id(txn)
        candidates = self._watches.setdefault(txn.client, [])
        chosen: SessionWatch | None = None
        for watch in reversed(candidates):
            if watch.terminated:
                continue
            if watch.matches(txn, session_id, self.idle_gap):
                chosen = watch
                break
        if chosen is None:
            self._serial += 1
            chosen = SessionWatch(
                key=f"{txn.client}#{self._serial}",
                client=txn.client,
                policy=self.policy,
            )
            candidates.append(chosen)
        chosen.add(txn)
        return chosen

    def watches(self) -> list[SessionWatch]:
        """All watches, across clients."""
        return [w for group in self._watches.values() for w in group]

    def expire(self, now: float) -> list[SessionWatch]:
        """Terminate watches idle past the gap ("the WCG stops growing").

        Returns the watches terminated by this sweep.
        """
        expired = []
        for watch in self.watches():
            if not watch.terminated and now - watch.last_ts > self.idle_gap:
                watch.terminated = True
                expired.append(watch)
        return expired
