"""Per-session WCG watching (Section V-B, "WCG classification and update").

A :class:`SessionWatch` owns one candidate conversation: its transaction
list, its incremental WCG builder, and its clue detector.  The
:class:`SessionTable` clusters an interleaved multi-client stream into
watches using session IDs with the referrer/timestamp fallback heuristic
— the streaming counterpart of :func:`repro.core.sessions.group_sessions`.

The table's memory is bounded: terminated watches are dropped from the
routing structures (``route()`` would only skip over them), and watches
that never produced an infection clue are closed once they have been
idle longer than ``prune_after`` — on a busy wire, benign conversations
vastly outnumber suspicious ones, and keeping them around forever made
both the per-client scan and the process footprint grow without limit.
Clue-active watches are never auto-pruned; they stay until the detector
delivers their final verdict (alert, cooldown suppression, or the
end-of-capture classification in ``finalize``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import WCGBuilder
from repro.core.model import HttpMethod, HttpTransaction
from repro.core.sessions import extract_session_id
from repro.core.wcg import WebConversationGraph
from repro.detection.clues import ClueDetector, CluePolicy, InfectionClue
from repro.obs import get_registry, get_tracer

__all__ = ["SessionWatch", "SessionTable"]

#: Full-table sweep cadence: every this-many routed transactions the
#: table drops prunable watches for *all* clients (the per-route prune
#: only touches the active client's list).
_SWEEP_INTERVAL = 256


@dataclass
class SessionWatch:
    """State of one watched conversation."""

    key: str
    client: str
    policy: CluePolicy
    transactions: list[HttpTransaction] = field(default_factory=list)
    session_ids: set[str] = field(default_factory=set)
    hosts: set[str] = field(default_factory=set)
    last_ts: float = 0.0
    #: Set when a clue fired and the WCG is under classifier watch.
    active_clue: InfectionClue | None = None
    alerted: bool = False
    terminated: bool = False

    def __post_init__(self) -> None:
        self._clues = ClueDetector(self.policy)
        self._builder = WCGBuilder(victim=self.client)

    def add(self, txn: HttpTransaction) -> InfectionClue | None:
        """Ingest one transaction; returns a clue if one fires now."""
        self.transactions.append(txn)
        self._builder.add(txn)
        session_id = extract_session_id(txn)
        if session_id:
            self.session_ids.add(session_id)
        self.hosts.add(txn.server)
        ref = txn.request.referrer_host
        if ref:
            self.hosts.add(ref)
        self.last_ts = max(self.last_ts, txn.timestamp)
        clue = self._clues.observe(txn)
        if clue is not None and self.active_clue is None:
            self.active_clue = clue
        return clue

    def wcg(self) -> WebConversationGraph:
        """The live WCG for this session — grown in place on every
        :meth:`add`, so repeated calls return the same (current) graph
        object and downstream caches can key on its version counters."""
        return self._builder.build()

    def matches(self, txn: HttpTransaction, session_id: str,
                idle_gap: float) -> bool:
        """Does ``txn`` belong to this watch? (clustering heuristic)"""
        if txn.client != self.client:
            return False
        if session_id and session_id in self.session_ids:
            return True
        if txn.timestamp - self.last_ts > idle_gap:
            return False
        ref = txn.request.referrer_host
        if ref and ref in self.hosts:
            return True
        if txn.server in self.hosts:
            return True
        # Timestamp-proximity fallback (Section V-B): a referrer-less
        # POST from the same client to a never-seen host inside the
        # activity window is grouped with the ongoing conversation —
        # exactly the shape of a post-infection call-back.
        return (
            txn.request.method is HttpMethod.POST
            and not ref
            and not self.terminated
        )


class SessionTable:
    """Clusters a live transaction stream into per-session watches."""

    def __init__(self, policy: CluePolicy | None = None,
                 idle_gap: float = 60.0,
                 prune_after: float | None = None):
        self.policy = policy or CluePolicy()
        self.idle_gap = idle_gap
        #: Idle horizon after which a clue-less watch is closed and
        #: dropped.  Far larger than ``idle_gap`` so the session-ID
        #: match (which ignores the idle gap) keeps working across
        #: realistic pauses; bounded so it cannot keep working forever.
        self.prune_after = (
            prune_after if prune_after is not None
            else max(20.0 * idle_gap, 1200.0)
        )
        self._watches: dict[str, list[SessionWatch]] = {}
        self._serial = 0
        #: Per-client watch ordinals.  Watch keys are numbered within
        #: their client rather than globally so a key depends only on
        #: that client's own transaction stream — the property that
        #: lets a client-sharded fleet (repro.service) reproduce the
        #: single-process alert stream byte for byte.
        self._client_serial: dict[str, int] = {}
        self._closed = 0
        self._now = float("-inf")
        self._routed = 0
        #: Watches currently retained (routing candidates); mirrors
        #: ``sum(len(group) for group in self._watches.values())``.
        self._live = 0
        metrics = get_registry()
        self._c_opened = metrics.counter("session.watches_opened")
        self._c_pruned = metrics.counter("session.watches_pruned")
        self._c_sweeps = metrics.counter("session.sweeps")
        self._g_active = metrics.gauge("session.active_watches")
        self._tracer = get_tracer()

    @property
    def opened_count(self) -> int:
        """Total watches ever opened (pruning does not decrease this)."""
        return self._serial

    def route(self, txn: HttpTransaction) -> SessionWatch:
        """Find (or open) the watch that owns ``txn`` and ingest it."""
        if txn.timestamp > self._now:
            self._now = txn.timestamp
        self._routed += 1
        if self._routed % _SWEEP_INTERVAL == 0:
            self.sweep()
        else:
            self._prune_client(txn.client)
        session_id = extract_session_id(txn)
        candidates = self._watches.setdefault(txn.client, [])
        chosen: SessionWatch | None = None
        for watch in reversed(candidates):
            if watch.terminated:
                continue
            if watch.matches(txn, session_id, self.idle_gap):
                chosen = watch
                break
        if chosen is None:
            self._serial += 1
            ordinal = self._client_serial.get(txn.client, 0) + 1
            self._client_serial[txn.client] = ordinal
            chosen = SessionWatch(
                key=f"{txn.client}#{ordinal}",
                client=txn.client,
                policy=self.policy,
            )
            candidates.append(chosen)
            self._live += 1
            self._c_opened.inc()
            self._g_active.set(self._live)
            if self._tracer.enabled:
                self._tracer.emit("watch", ts=txn.timestamp,
                                  client=txn.client, watch=chosen.key)
        clue = chosen.add(txn)
        if clue is not None and self._tracer.enabled:
            self._tracer.emit("clue", ts=clue.timestamp, client=clue.client,
                              watch=chosen.key, **clue.as_primitives())
        return chosen

    def watches(self) -> list[SessionWatch]:
        """All retained watches, across clients."""
        return [w for group in self._watches.values() for w in group]

    def expire(self, now: float) -> list[SessionWatch]:
        """Terminate watches idle past the gap ("the WCG stops growing").

        Returns the watches terminated by this sweep; afterwards every
        terminated watch is dropped from the routing structures.
        """
        if now > self._now:
            self._now = now
        expired = []
        for watch in self.watches():
            if not watch.terminated and now - watch.last_ts > self.idle_gap:
                watch.terminated = True
                expired.append(watch)
        self.sweep()
        return expired

    # -- pruning ----------------------------------------------------------

    def _prunable(self, watch: SessionWatch) -> bool:
        if watch.terminated:
            return True
        return (
            watch.active_clue is None
            and self._now - watch.last_ts > self.prune_after
        )

    def _prune_client(self, client: str) -> None:
        group = self._watches.get(client)
        if not group:
            return
        kept = [w for w in group if not self._drop_if_prunable(w)]
        if kept:
            if len(kept) != len(group):
                self._watches[client] = kept
        else:
            del self._watches[client]
            # The client left entirely; forget its ordinal too so the
            # table stays bounded by *active* clients.  If the client
            # returns its keys restart at #1, which is fine — alert
            # session keys only disambiguate concurrent watches.
            self._client_serial.pop(client, None)

    def _drop_if_prunable(self, watch: SessionWatch) -> bool:
        if not self._prunable(watch):
            return False
        if not watch.terminated:
            watch.terminated = True
        self._closed += 1
        self._live -= 1
        self._c_pruned.inc()
        self._g_active.set(self._live)
        if self._tracer.enabled:
            # Stamped with the watch's own last stream time, not the
            # table clock: `self._now` advances with whatever clients
            # this table happens to host, so a table-clock stamp would
            # differ between a single-process run and a client-sharded
            # fleet.  The watch's last_ts depends only on its own
            # client's stream — the canonical trace stays worker-count
            # invariant even though *when* the prune runs varies.
            self._tracer.emit(
                "prune", ts=watch.last_ts, client=watch.client,
                watch=watch.key, alerted=watch.alerted,
                had_clue=watch.active_clue is not None,
                transactions=len(watch.transactions),
            )
            self._tracer.close_watch(watch.key, alerted=watch.alerted)
        return True

    def sweep(self) -> None:
        """Drop every prunable watch, for all clients."""
        self._c_sweeps.inc()
        for client in list(self._watches):
            self._prune_client(client)
