"""Workload episodes: bounded bursts of packets, benign through hostile.

Each builder returns the time-sorted packet list for ONE episode — a
browsing session, an exploit-kit run, or a pathological traffic pattern
(flood, drip, storm, ...).  Episodes are deliberately bounded (at most a
few thousand packets) so :class:`~repro.loadgen.generator.LoadGenerator`
can interleave an unbounded stream of them while holding only the
handful currently in flight.

The hostile builders use :class:`RawConnection`, a TCP conversation
emitter with *full sequence-number control*: unlike the well-formed
encoder in :mod:`repro.net.flows` it can retransmit, overlap, reorder,
and leave holes — the wire behaviours a tap must survive.
"""

from __future__ import annotations

import numpy as np

from repro.net.flows import AddressBook, packets_from_trace
from repro.net.packets import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    encode_tcp_in_ipv4_ethernet,
)
from repro.net.pcap import PcapPacket
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import EXPLOIT_KIT_FAMILIES
from repro.synthesis.infection import InfectionGenerator

__all__ = [
    "RawConnection",
    "HostAllocator",
    "benign_episode",
    "exploit_kit_episode",
    "http_flood_episode",
    "slow_drip_episode",
    "giant_pipelined_episode",
    "retrans_storm_episode",
    "malformed_burst_episode",
    "orphan_response_episode",
    "overflow_episode",
]

_FLOOD_UAS = (
    "Mozilla/5.0 (compatible; stressbot/1.0)",
    "python-requests/2.31.0",
    "curl/8.4.0",
)


class HostAllocator:
    """Deterministic endpoint allocator for hand-rolled connections.

    Clients come from 172.31/16 with ephemeral ports, servers from the
    198.51.100/16 documentation range — disjoint from the 10/8 and
    172.16/16 blocks the :class:`~repro.net.flows.AddressBook` hands to
    synthetic traces, so hostile flows never collide with benign ones.
    """

    def __init__(self) -> None:
        self._clients = 0
        self._servers = 0

    def client(self) -> tuple[str, int]:
        n = self._clients
        self._clients += 1
        ip = f"172.31.{(n // 250) % 250}.{n % 250 + 1}"
        return ip, 49152 + (n % 16000)

    def server(self) -> str:
        n = self._servers
        self._servers += 1
        return f"198.51.{(n // 250) % 100 + 100}.{n % 250 + 1}"


class RawConnection:
    """One TCP conversation with explicit per-direction stream offsets.

    ``send`` emits in-order MTU-split segments; ``segment`` places a
    payload at an *arbitrary* stream offset without bookkeeping —
    retransmissions, overlaps, and deliberate holes are all just
    ``segment`` calls.  Offsets are relative to the first payload byte
    (i.e. ISN+1).
    """

    def __init__(self, client_ip: str, client_port: int, server_ip: str,
                 server_port: int = 80):
        self.client_ip = client_ip
        self.client_port = client_port
        self.server_ip = server_ip
        self.server_port = server_port
        self.client_isn = 1_000_000
        self.server_isn = 5_000_000
        #: Next unwritten in-order offset per direction.
        self._sent = {True: 0, False: 0}

    def _frame(self, ts: float, from_client: bool, flags: int,
               payload: bytes = b"", offset: int | None = None) -> PcapPacket:
        if offset is None:
            offset = self._sent[from_client]
        isn = self.client_isn if from_client else self.server_isn
        seq = (isn + 1 + offset) % (1 << 32)
        ack = (self.server_isn if from_client else self.client_isn) + 1
        if from_client:
            src, dst = (self.client_ip, self.client_port), \
                (self.server_ip, self.server_port)
        else:
            src, dst = (self.server_ip, self.server_port), \
                (self.client_ip, self.client_port)
        data = encode_tcp_in_ipv4_ethernet(
            src[0], dst[0], src[1], dst[1], seq, ack, flags, payload
        )
        end = offset + len(payload)
        if end > self._sent[from_client]:
            self._sent[from_client] = end
        return PcapPacket(timestamp=ts, data=data)

    def open(self, ts: float) -> list[PcapPacket]:
        """Three-way handshake."""
        return [
            PcapPacket(ts, encode_tcp_in_ipv4_ethernet(
                self.client_ip, self.server_ip, self.client_port,
                self.server_port, self.client_isn, 0, SYN)),
            PcapPacket(ts + 5e-5, encode_tcp_in_ipv4_ethernet(
                self.server_ip, self.client_ip, self.server_port,
                self.client_port, self.server_isn, self.client_isn + 1,
                SYN | ACK)),
            PcapPacket(ts + 1e-4, encode_tcp_in_ipv4_ethernet(
                self.client_ip, self.server_ip, self.client_port,
                self.server_port, self.client_isn + 1, self.server_isn + 1,
                ACK)),
        ]

    def send(self, ts: float, from_client: bool, payload: bytes,
             mtu: int = 1400) -> list[PcapPacket]:
        """In-order push, split into ``mtu``-byte segments."""
        frames = []
        for cut in range(0, len(payload), mtu):
            chunk = payload[cut : cut + mtu]
            flags = PSH | ACK if cut + mtu >= len(payload) else ACK
            frames.append(
                self._frame(ts + cut * 1e-9, from_client, flags, chunk)
            )
        return frames

    def segment(self, ts: float, from_client: bool, payload: bytes,
                offset: int) -> PcapPacket:
        """One segment at an explicit stream offset (hole/overlap/dup)."""
        return self._frame(ts, from_client, PSH | ACK, payload,
                           offset=offset)

    def close(self, ts: float) -> list[PcapPacket]:
        """Graceful FIN exchange."""
        return [
            self._frame(ts, True, FIN | ACK),
            self._frame(ts + 5e-5, False, FIN | ACK),
        ]

    def reset(self, ts: float) -> list[PcapPacket]:
        """Abortive RST teardown."""
        return [self._frame(ts, True, RST)]


def _http_get(host: str, uri: str, agent: str,
              extra: str = "") -> bytes:
    return (
        f"GET {uri} HTTP/1.1\r\nHost: {host}\r\n"
        f"User-Agent: {agent}\r\n{extra}\r\n"
    ).encode("latin-1")


def _http_response(status: int, body: bytes,
                   content_type: str = "text/html") -> bytes:
    reason = {200: "OK", 204: "No Content", 404: "Not Found",
              503: "Service Unavailable"}.get(status, "OK")
    return (
        f"HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


def _rebase(packets: list[PcapPacket], start: float) -> list[PcapPacket]:
    """Shift an episode's capture so its first packet lands at ``start``."""
    if not packets:
        return packets
    shift = start - packets[0].timestamp
    return [
        PcapPacket(timestamp=p.timestamp + shift, data=p.data)
        for p in packets
    ]


def benign_episode(rng: np.random.Generator, start: float,
                   book: AddressBook) -> list[PcapPacket]:
    """One multi-tab benign browsing session, materialized on the wire."""
    trace = BenignGenerator(rng).generate_session()
    packets, _ = packets_from_trace(trace, book=book)
    return _rebase(packets, start)


def exploit_kit_episode(rng: np.random.Generator, start: float,
                        book: AddressBook) -> list[PcapPacket]:
    """One exploit-kit infection episode from a random family profile."""
    profile = EXPLOIT_KIT_FAMILIES[
        int(rng.integers(0, len(EXPLOIT_KIT_FAMILIES)))
    ]
    trace = InfectionGenerator(profile, rng).generate()
    packets, _ = packets_from_trace(trace, book=book)
    return _rebase(packets, start)


def http_flood_episode(rng: np.random.Generator, start: float,
                       alloc: HostAllocator) -> list[PcapPacket]:
    """HTTP flood: a burst of bot connections hammering one server.

    Most requests go unanswered (the server is presumed saturated);
    a few get a tiny 503.  Every connection opens, fires, and tears
    down within milliseconds — the connection-table stressor.
    """
    target = alloc.server()
    packets: list[PcapPacket] = []
    ts = start
    for _ in range(int(rng.integers(10, 40))):
        conn = RawConnection(*alloc.client(), target)
        agent = _FLOOD_UAS[int(rng.integers(0, len(_FLOOD_UAS)))]
        request = _http_get(target, f"/?x={int(rng.integers(1e9))}", agent)
        packets.extend(conn.open(ts))
        packets.extend(conn.send(ts + 2e-4, True, request))
        if rng.random() < 0.3:
            packets.extend(conn.send(
                ts + 5e-4, False, _http_response(503, b"busy")
            ))
            packets.extend(conn.close(ts + 7e-4))
        else:
            packets.extend(conn.reset(ts + 6e-4))
        ts += float(rng.uniform(5e-5, 8e-4))
    return packets


def slow_drip_episode(rng: np.random.Generator, start: float,
                      alloc: HostAllocator) -> list[PcapPacket]:
    """Slowloris-style drip: a request trickled a few bytes at a time.

    Stresses resumable-parser state retention: the tap holds partial
    message state for minutes while almost no bytes arrive.
    """
    server = alloc.server()
    conn = RawConnection(*alloc.client(), server)
    request = _http_get(server, "/form", "Mozilla/5.0 (slow)",
                        extra="X-Pad: " + "a" * 48 + "\r\n")
    packets = conn.open(start)
    ts = start + 0.01
    cursor = 0
    while cursor < len(request):
        step = int(rng.integers(1, 4))
        packets.extend(conn.send(ts, True, request[cursor:cursor + step]))
        cursor += step
        ts += float(rng.uniform(0.4, 2.0))
    response = _http_response(200, b"<html>accepted</html>")
    cursor = 0
    while cursor < len(response):
        step = int(rng.integers(1, 6))
        packets.extend(conn.send(ts, False, response[cursor:cursor + step]))
        cursor += step
        ts += float(rng.uniform(0.2, 1.0))
    packets.extend(conn.close(ts + 0.1))
    return packets


def giant_pipelined_episode(rng: np.random.Generator, start: float,
                            alloc: HostAllocator) -> list[PcapPacket]:
    """One persistent connection carrying hundreds of pipelined pairs."""
    server = alloc.server()
    conn = RawConnection(*alloc.client(), server)
    count = int(rng.integers(120, 320))
    requests = b"".join(
        _http_get(server, f"/asset/{index}", "Mozilla/5.0 (pipeline)")
        for index in range(count)
    )
    responses = b"".join(
        _http_response(200, b"%06d" % index, "application/octet-stream")
        for index in range(count)
    )
    packets = conn.open(start)
    packets.extend(conn.send(start + 0.001, True, requests))
    packets.extend(conn.send(start + 0.05, False, responses))
    packets.extend(conn.close(start + 0.2))
    return packets


def retrans_storm_episode(rng: np.random.Generator, start: float,
                          alloc: HostAllocator) -> list[PcapPacket]:
    """Out-of-order / retransmission storm with overlapping segments.

    A valid request/response pair whose response bytes arrive shuffled,
    duplicated, and re-sliced at overlapping offsets — decoded output
    must still be byte-identical to an in-order delivery.
    """
    server = alloc.server()
    conn = RawConnection(*alloc.client(), server)
    request = _http_get(server, "/download/blob", "Mozilla/5.0 (storm)")
    body = bytes(rng.integers(32, 127, size=int(rng.integers(2_000, 12_000)),
                              dtype=np.uint8))
    response = _http_response(200, body, "application/octet-stream")

    packets = conn.open(start)
    packets.extend(conn.send(start + 0.001, True, request))
    # Cut the response at random boundaries, then emit the pieces
    # shuffled, with duplicates and deliberately overlapping re-slices.
    cuts = sorted({
        int(offset)
        for offset in rng.integers(1, len(response),
                                   size=max(3, len(response) // 700))
    })
    bounds = [0] + cuts + [len(response)]
    pieces = [
        (bounds[i], response[bounds[i]:bounds[i + 1]])
        for i in range(len(bounds) - 1)
    ]
    order = list(rng.permutation(len(pieces)))
    ts = start + 0.01
    for index in order:
        offset, chunk = pieces[index]
        packets.append(conn.segment(ts, False, chunk, offset))
        ts += float(rng.uniform(1e-5, 5e-4))
        roll = rng.random()
        if roll < 0.25:
            # Straight duplicate (retransmission).
            packets.append(conn.segment(ts, False, chunk, offset))
            ts += float(rng.uniform(1e-5, 2e-4))
        elif roll < 0.5:
            # Overlapping re-slice: start earlier, run past the end.
            back = int(rng.integers(1, 40))
            lo = max(0, offset - back)
            hi = min(len(response), offset + len(chunk) + back)
            packets.append(conn.segment(ts, False, response[lo:hi], lo))
            ts += float(rng.uniform(1e-5, 2e-4))
    packets.extend(conn.close(ts + 0.01))
    return packets


def malformed_burst_episode(rng: np.random.Generator,
                            start: float) -> list[PcapPacket]:
    """A burst of frames the decoder was never meant to parse.

    Random garbage, truncated headers, bad IHL/data offsets: each must
    be counted (``decode.errors``) and skipped, never propagated.
    """
    packets: list[PcapPacket] = []
    ts = start
    for _ in range(int(rng.integers(5, 20))):
        roll = rng.random()
        if roll < 0.3:
            size = int(rng.integers(1, 13))  # shorter than an Ethernet header
        elif roll < 0.7:
            size = int(rng.integers(14, 54))  # cuts into IP/TCP headers
        else:
            size = int(rng.integers(54, 200))  # full-size random garbage
        data = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        packets.append(PcapPacket(timestamp=ts, data=data))
        ts += float(rng.uniform(1e-5, 1e-3))
    return packets


def orphan_response_episode(rng: np.random.Generator, start: float,
                            alloc: HostAllocator) -> list[PcapPacket]:
    """A server talking without being asked: responses with no request.

    The pairer must drain and count every orphan — one bad peer that
    answers twice (or speaks first) cannot be allowed to wedge a
    connection's accounting.
    """
    server = alloc.server()
    conn = RawConnection(*alloc.client(), server)
    packets = conn.open(start)
    ts = start + 0.005
    for index in range(int(rng.integers(2, 5))):
        packets.extend(conn.send(
            ts, False,
            _http_response(200, b"unsolicited %d" % index),
        ))
        ts += float(rng.uniform(0.001, 0.01))
    packets.extend(conn.close(ts + 0.01))
    return packets


def overflow_episode(rng: np.random.Generator, start: float,
                     alloc: HostAllocator,
                     oversize: int = 256 * 1024) -> list[PcapPacket]:
    """A hole that never fills: out-of-order bytes past the buffer cap.

    The server direction skips its first bytes and streams ``oversize``
    bytes beyond the hole.  A tap with a per-direction buffer cap below
    ``oversize`` must degrade that direction (``reassembly.overflows``)
    and keep serving every other connection.
    """
    server = alloc.server()
    conn = RawConnection(*alloc.client(), server)
    request = _http_get(server, "/stream", "Mozilla/5.0 (hole)")
    packets = conn.open(start)
    packets.extend(conn.send(start + 0.001, True, request))
    ts = start + 0.01
    offset = 64  # bytes [0, 64) never arrive
    while offset < oversize:
        chunk = b"\xaa" * 1400
        packets.append(conn.segment(ts, False, chunk, offset))
        offset += len(chunk)
        ts += float(rng.uniform(1e-5, 2e-4))
    packets.extend(conn.close(ts + 0.01))
    return packets
