"""Heap-interleaved streaming workload generator.

:class:`LoadGenerator` turns the bounded episodes of
:mod:`repro.loadgen.episodes` into an *unbounded* packet stream: it
keeps at most ``concurrency`` episodes alive at once in a min-heap keyed
by next-packet timestamp, yielding the globally earliest packet and
replenishing finished episodes on the fly.  Memory is O(concurrency ×
episode size) no matter how many packets are drawn — streaming a
million packets costs the same residency as streaming a thousand.

Everything is deterministic from ``seed``: the same seed and mix always
produce the same wire bytes, which is what lets the hostile differential
test compare live and batch decodes of the identical stream.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass, fields

import numpy as np

from repro.loadgen import episodes as ep
from repro.net.flows import AddressBook
from repro.net.pcap import PcapPacket

__all__ = ["WorkloadMix", "MIXED", "HOSTILE", "BENIGN_ONLY", "LoadGenerator"]

_BASE_CLOCK = 1_500_000_000.0


@dataclass(frozen=True)
class WorkloadMix:
    """Relative episode-kind weights (normalized at sampling time)."""

    benign: float = 0.5
    exploit_kit: float = 0.1
    http_flood: float = 0.08
    slow_drip: float = 0.06
    giant_pipelined: float = 0.06
    retrans_storm: float = 0.08
    malformed_burst: float = 0.05
    orphan_response: float = 0.04
    overflow: float = 0.03

    def kinds_and_weights(self) -> tuple[list[str], np.ndarray]:
        kinds = [f.name for f in fields(self)]
        weights = np.array([getattr(self, k) for k in kinds], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("WorkloadMix weights must sum to > 0")
        return kinds, weights / total


#: Realistic tap mix: mostly benign, a sprinkle of everything hostile.
MIXED = WorkloadMix()

#: Pure adversarial soak: every pathological pattern, no benign cover.
HOSTILE = WorkloadMix(
    benign=0.0, exploit_kit=0.0, http_flood=0.22, slow_drip=0.12,
    giant_pipelined=0.12, retrans_storm=0.22, malformed_burst=0.1,
    orphan_response=0.12, overflow=0.1,
)

#: Clean-traffic baseline for throughput comparison.
BENIGN_ONLY = WorkloadMix(
    benign=0.9, exploit_kit=0.1, http_flood=0.0, slow_drip=0.0,
    giant_pipelined=0.0, retrans_storm=0.0, malformed_burst=0.0,
    orphan_response=0.0, overflow=0.0,
)


class LoadGenerator:
    """Deterministic, memory-bounded mixed-workload packet stream.

    Parameters
    ----------
    seed:
        Seeds every random choice (mix sampling, episode internals).
    mix:
        Episode-kind weights; defaults to :data:`MIXED`.
    concurrency:
        Episodes interleaved at any moment.  Higher values overlap more
        connections in time (more reassembler/pairer state in the tap
        under test) without changing total packet count.
    overflow_bytes:
        Out-of-order bytes an ``overflow`` episode parks behind its
        hole; set it above the tap's per-direction buffer cap to force
        degradation.
    book:
        Shared :class:`~repro.net.flows.AddressBook` for trace-backed
        episodes; pass the same book to batch decoding for host-name
        round-trips.
    """

    def __init__(self, seed: int = 0, mix: WorkloadMix | None = None,
                 concurrency: int = 8,
                 overflow_bytes: int = 256 * 1024,
                 book: AddressBook | None = None):
        self.seed = seed
        self.mix = mix if mix is not None else MIXED
        self.concurrency = max(1, concurrency)
        self.overflow_bytes = overflow_bytes
        self.book = book if book is not None else AddressBook()
        self._kinds, self._weights = self.mix.kinds_and_weights()

    def _build(self, kind: str, rng: np.random.Generator, start: float,
               alloc: ep.HostAllocator) -> list[PcapPacket]:
        if kind == "benign":
            return ep.benign_episode(rng, start, self.book)
        if kind == "exploit_kit":
            return ep.exploit_kit_episode(rng, start, self.book)
        if kind == "http_flood":
            return ep.http_flood_episode(rng, start, alloc)
        if kind == "slow_drip":
            return ep.slow_drip_episode(rng, start, alloc)
        if kind == "giant_pipelined":
            return ep.giant_pipelined_episode(rng, start, alloc)
        if kind == "retrans_storm":
            return ep.retrans_storm_episode(rng, start, alloc)
        if kind == "malformed_burst":
            return ep.malformed_burst_episode(rng, start)
        if kind == "orphan_response":
            return ep.orphan_response_episode(rng, start, alloc)
        if kind == "overflow":
            return ep.overflow_episode(rng, start, alloc,
                                       oversize=self.overflow_bytes)
        raise ValueError(f"unknown episode kind: {kind}")

    def packets(self, limit: int | None = None) -> Iterator[PcapPacket]:
        """Stream packets in global timestamp order, lazily.

        At most ``concurrency`` episodes are materialized at once; a new
        episode starts whenever one drains, its start time advancing a
        random gap past the stream clock so load never dies out.  With
        ``limit=None`` the stream is infinite.
        """
        rng = np.random.default_rng(self.seed)
        alloc = ep.HostAllocator()
        clock = _BASE_CLOCK
        serial = 0  # heap tiebreaker + episode id
        # Heap of (next_packet_ts, serial, index, episode_packets).
        heap: list[tuple[float, int, int, list[PcapPacket]]] = []

        def start_episode() -> None:
            nonlocal clock, serial
            kind = self._kinds[
                int(rng.choice(len(self._kinds), p=self._weights))
            ]
            start = clock + float(rng.uniform(0.0, 0.5))
            packets = self._build(kind, rng, start, alloc)
            if not packets:
                return
            # Episodes interleave their own connections freely; sorting
            # here restores the per-episode time order the heap merge
            # relies on for a globally ordered stream.
            packets.sort(key=lambda p: p.timestamp)
            clock = max(clock, packets[0].timestamp)
            heapq.heappush(heap, (packets[0].timestamp, serial, 0, packets))
            serial += 1

        for _ in range(self.concurrency):
            start_episode()

        emitted = 0
        while heap and (limit is None or emitted < limit):
            ts, sid, idx, packets = heapq.heappop(heap)
            yield packets[idx]
            emitted += 1
            clock = max(clock, ts)
            if idx + 1 < len(packets):
                heapq.heappush(
                    heap, (packets[idx + 1].timestamp, sid, idx + 1, packets)
                )
            else:
                start_episode()

    def capture(self, count: int) -> list[PcapPacket]:
        """Materialize ``count`` packets (convenience for tests)."""
        return list(self.packets(limit=count))
