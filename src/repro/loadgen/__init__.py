"""Line-rate mixed-workload generation for sustained-load testing.

``repro.loadgen`` streams unbounded packet workloads that interleave
benign browsing, exploit-kit episodes, and hostile/pathological traffic
(floods, slow drips, giant pipelined connections, retransmission storms
with overlapping segments, malformed bursts, orphan responses, buffer
overflow attempts) — without ever materializing more than a handful of
episodes in memory.  See DESIGN.md §12 for the workload taxonomy.
"""

from repro.loadgen.episodes import (
    HostAllocator,
    RawConnection,
    benign_episode,
    exploit_kit_episode,
    giant_pipelined_episode,
    http_flood_episode,
    malformed_burst_episode,
    orphan_response_episode,
    overflow_episode,
    retrans_storm_episode,
    slow_drip_episode,
)
from repro.loadgen.generator import (
    BENIGN_ONLY,
    HOSTILE,
    MIXED,
    LoadGenerator,
    WorkloadMix,
)

__all__ = [
    "LoadGenerator",
    "WorkloadMix",
    "MIXED",
    "HOSTILE",
    "BENIGN_ONLY",
    "HostAllocator",
    "RawConnection",
    "benign_episode",
    "exploit_kit_episode",
    "http_flood_episode",
    "slow_drip_episode",
    "giant_pipelined_episode",
    "retrans_storm_episode",
    "malformed_burst_episode",
    "orphan_response_episode",
    "overflow_episode",
]
