"""Client-affinity packet routing for the sharded detection service.

The shard key is the **client IP**, not the :class:`FlowKey`: DynaMiner's
detection state is clustered per client (the session table groups a
client's transactions into watches, WCGs span a client's *connections*,
the alert cooldown is per client), so every connection a client opens
must land on the same shard or the shard's watch clustering would see a
fragment of the client's activity and diverge from the single-process
detector.  Flow-hashing would balance load slightly better; it would
also silently split WCGs.  Client affinity is the strongest partition
that is still byte-identical.

Routing never raises and never drops: a packet the router cannot parse
down to TCP endpoints (mangled frame, non-IPv4, non-TCP) is assigned a
deterministic fallback shard from a hash of its raw bytes — exactly one
shard sees it and counts it (``decode.errors`` etc.), so merged fleet
counters match the single-process run.  IPv4 fragments are held until
their datagram completes and then delivered *as the original pieces* to
the owning flow's shard, matching the single-process decode where a
fragmented segment surfaces at the arrival of its completing piece.
"""

from __future__ import annotations

import zlib

from repro.exceptions import PcapError
from repro.net.packets import (
    ETHERTYPE_IPV4,
    IPPROTO_TCP,
    IpFragmentReassembler,
    Ipv4Packet,
    decode_ethernet,
    decode_ipv4,
    decode_tcp,
)
from repro.net.pcap import LINKTYPE_ETHERNET, LINKTYPE_RAW_IP, PcapPacket

__all__ = ["PacketRouter", "client_ip_of", "shard_of"]

#: Well-known HTTP(S)/proxy server ports.  The router sees raw segments
#: and must decide which endpoint is the client without waiting for a
#: SYN (it may start mid-capture); a port-based heuristic is standard
#: tap practice and, crucially, *direction-stable*: both directions of
#: a connection resolve to the same client, so both route identically.
_SERVICE_PORTS = frozenset({80, 443, 8080, 3128})


def _is_service_port(port: int) -> bool:
    return port in _SERVICE_PORTS or port < 1024


def client_ip_of(src_ip: str, src_port: int,
                 dst_ip: str, dst_port: int) -> str:
    """Pick the client endpoint of a segment, direction-stably.

    When exactly one endpoint looks like a server (well-known port),
    the other is the client.  When neither or both do, fall back to the
    canonical lower ``(ip, port)`` endpoint — arbitrary but symmetric,
    so the two directions of the connection still agree and the whole
    conversation stays on one shard.
    """
    src_serves = _is_service_port(src_port)
    dst_serves = _is_service_port(dst_port)
    if dst_serves and not src_serves:
        return src_ip
    if src_serves and not dst_serves:
        return dst_ip
    return min((src_ip, src_port), (dst_ip, dst_port))[0]


def shard_of(client: str, n_shards: int) -> int:
    """Deterministic shard index for a client key.

    ``zlib.crc32`` rather than ``hash()``: the assignment must be
    identical across processes and runs (``PYTHONHASHSEED`` randomizes
    ``str.__hash__``), because the differential tests replay the same
    workload through different worker counts.
    """
    return zlib.crc32(client.encode("utf-8", "surrogateescape")) % n_shards


class PacketRouter:
    """Assigns each pcap record to a shard by client affinity.

    :meth:`route` returns ``(shard_id, packet)`` pairs — usually one,
    zero while a fragmented datagram is still incomplete, several when
    a completing fragment releases its held siblings.  The router keeps
    *no* per-connection state: only a fragment-reassembly scratchpad,
    bounded by in-flight fragmented datagrams (pieces of a datagram
    that never completes are held indefinitely, same as the decoder's
    own fragment buffer — a real deployment would age them out).
    """

    def __init__(self, n_shards: int, linktype: int = LINKTYPE_ETHERNET):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.linktype = linktype
        self._fragments = IpFragmentReassembler()
        self._held: dict[tuple[str, str, int, int], list[PcapPacket]] = {}

    def route(self, packet: PcapPacket) -> list[tuple[int, PcapPacket]]:
        """Assign ``packet`` (and any released fragments) to shards."""
        try:
            data = packet.data
            if self.linktype == LINKTYPE_ETHERNET:
                frame = decode_ethernet(data)
                if frame.ethertype != ETHERTYPE_IPV4:
                    return [(self._fallback(packet), packet)]
                data = frame.payload
            elif self.linktype != LINKTYPE_RAW_IP:
                return [(self._fallback(packet), packet)]
            ip = decode_ipv4(data)
        except PcapError:
            return [(self._fallback(packet), packet)]
        if ip.is_fragment:
            key = (ip.src, ip.dst, ip.protocol, ip.ident)
            self._held.setdefault(key, []).append(packet)
            completed = self._fragments.feed(ip)
            if completed is None:
                return []
            pieces = self._held.pop(key)
            shard = self._shard_for(completed, packet)
            return [(shard, piece) for piece in pieces]
        return [(self._shard_for(ip, packet), packet)]

    def _shard_for(self, ip: Ipv4Packet, original: PcapPacket) -> int:
        if ip.protocol != IPPROTO_TCP:
            return self._fallback(original)
        try:
            segment = decode_tcp(ip.payload)
        except PcapError:
            return self._fallback(original)
        client = client_ip_of(ip.src, segment.src_port,
                              ip.dst, segment.dst_port)
        return shard_of(client, self.n_shards)

    def _fallback(self, packet: PcapPacket) -> int:
        """Deterministic shard for traffic with no TCP endpoints."""
        return zlib.crc32(packet.data) % self.n_shards
