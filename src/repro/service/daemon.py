"""Coordinator for the sharded live detection service.

:class:`ShardedDetectionService` is the long-running daemon shape from
ROADMAP item 1: packets stream in, a :class:`~repro.service.sharding.
PacketRouter` hashes each one to its client's shard, N worker processes
each run a private :class:`~repro.detection.live.DetectionEngine`, and
the coordinator merges their alert streams and metric snapshots into
one deterministic fleet view.

**Merge contract.**  Per-shard alert streams are each already in
emission order; the fleet stream is their merge sorted by
``(timestamp, shard_id, seq)``.  Timestamp orders across shards the way
a single tap would; ``(shard_id, seq)`` breaks timestamp ties totally
and reproducibly, so *any* worker count yields the identical ordered
alert list — the differential tests assert byte-identity against the
single-process :class:`~repro.detection.live.LiveDetector` at
``workers ∈ {1, 2, 4}``.

Registry snapshots merge structurally: counters and gauges sum across
shards (each counter event happened on exactly one shard); histograms
sum ``count``/``sum``, combine ``min``/``max``, and compute fleet
quantiles from the shards' retained sample buffers — exact whenever
the combined buffer fits under the histogram cap, a deterministic
decimated approximation beyond it.  (Snapshots predating the sample
buffers fall back to the old conservative max-of-quantiles estimate.)

Trace events merge under the same ``(timestamp, shard_id, seq)`` key
as alerts (:func:`merge_traces`), so the canonical fleet trace stream
is identical for any worker count too.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.detection.alerts import Alert
from repro.detection.live import WatchSnapshot
from repro.net.pcap import PcapPacket
from repro.obs import TraceEvent
from repro.obs.registry import decimate_samples, interpolated_quantile
from repro.parallel import resolve_n_jobs
from repro.service.sharding import PacketRouter
from repro.service.worker import (
    EngineSpec,
    ShardAlert,
    ShardResult,
    shard_worker,
)

__all__ = ["FleetResult", "ShardedDetectionService", "merge_alerts",
           "merge_snapshots", "merge_traces", "merge_watch_snapshots"]

#: Packets buffered per shard before a batch crosses the queue; large
#: enough to amortize pickling, small enough to keep workers busy.
_BATCH_SIZE = 256

#: Seconds the coordinator waits for each worker's final result.  The
#: workloads here are bounded captures, so a silent worker means a bug
#: (a crash is ferried back as ``ShardResult.error``), not slowness.
_DRAIN_TIMEOUT = 600.0


class ShardError(RuntimeError):
    """A worker process died; carries its traceback."""


@dataclass
class FleetResult:
    """The merged outcome of one sharded run."""

    alerts: list[Alert]
    shards: list[ShardResult]
    snapshot: dict[str, Any]
    packets_routed: int
    #: Merged pre-finalize watch summaries (``EngineSpec.
    #: snapshot_watches`` on), canonical ``(client, key)`` order.
    watches: list[WatchSnapshot] = field(default_factory=list)
    #: Merged fleet trace stream (tracing on), in the canonical
    #: ``(timestamp, shard_id, seq)`` order of :func:`merge_traces`.
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def transactions(self) -> int:
        return sum(s.transactions for s in self.shards)

    @property
    def classifications(self) -> int:
        return sum(s.classifications for s in self.shards)

    @property
    def transactions_weeded(self) -> int:
        return sum(s.transactions_weeded for s in self.shards)

    @property
    def watches_opened(self) -> int:
        return sum(s.watches_opened for s in self.shards)


def merge_alerts(shard_alerts: Iterable[ShardAlert]) -> list[Alert]:
    """Deterministic fleet order: ``(timestamp, shard_id, seq)``."""
    ordered = sorted(
        shard_alerts,
        key=lambda sa: (sa.alert.timestamp, sa.shard_id, sa.seq),
    )
    return [sa.alert for sa in ordered]


def merge_traces(
    shard_traces: Iterable[tuple[int, list[TraceEvent]]],
) -> list[TraceEvent]:
    """Deterministic fleet trace: sort by ``(timestamp, shard_id, seq)``.

    The same total order as :func:`merge_alerts` — event timestamps are
    stream-derived, ``shard_id`` breaks cross-shard ties, and each
    tracer's own ``seq`` breaks ties within a shard — so the canonical
    fleet trace (``TraceEvent.canonical``) is identical for any worker
    count.
    """
    stamped = [
        (event.ts, shard_id, event.seq, event)
        for shard_id, events in shard_traces
        for event in events
    ]
    stamped.sort(key=lambda item: item[:3])
    return [item[3] for item in stamped]


def merge_watch_snapshots(
    shard_watches: Iterable[list[WatchSnapshot]],
) -> list[WatchSnapshot]:
    """Fleet watch view: concatenate and re-sort by ``(client, key)``.

    Client affinity means each watch lives on exactly one shard, so the
    merged list is a disjoint union; the canonical sort makes it
    identical for any worker count (the sharded differential compares
    it against the single-process engine's
    :meth:`~repro.detection.live.DetectionEngine.snapshot_watches`).
    """
    merged = [snap for watches in shard_watches for snap in watches]
    merged.sort(key=lambda s: (s.client, s.key))
    return merged


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-shard registry snapshots into one fleet snapshot."""
    enabled = [s for s in snapshots if s.get("enabled")]
    merged: dict[str, Any] = {
        "enabled": bool(enabled),
        "shards": len(snapshots),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for snap in enabled:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = dict(hist)
                continue
            into["count"] += hist["count"]
            into["sum"] += hist["sum"]
            # Empty per-shard histograms report None for the order
            # statistics; they must not poison shards that observed data.
            for stat, pick in (("min", min), ("max", max),
                               ("p50", max), ("p90", max), ("p99", max)):
                if stat not in into and stat not in hist:
                    continue
                seen = [v for v in (into.get(stat), hist.get(stat))
                        if v is not None]
                into[stat] = pick(seen) if seen else None
            # Pool retained samples for exact fleet quantiles below.
            # One sample-less contributor poisons the pool (None) — the
            # quantiles then stay on the conservative max-of estimate.
            if into.get("samples") is not None and "samples" in hist:
                into["samples"] = list(into["samples"]) + list(
                    hist["samples"]
                )
            else:
                into["samples"] = None
    for hist in merged["histograms"].values():
        if hist.get("count"):
            hist["mean"] = hist["sum"] / hist["count"]
        samples = hist.pop("samples", None)
        if samples:
            samples = decimate_samples(sorted(samples))
            for stat, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
                hist[stat] = interpolated_quantile(samples, q)
    # Deterministic key order regardless of shard arrival order.
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


class ShardedDetectionService:
    """Long-running sharded detection daemon.

    Usage::

        service = ShardedDetectionService(spec, workers=4)
        with service:
            for packet in tap:
                service.feed(packet)
            fleet = service.drain()

    ``workers`` follows the :func:`repro.parallel.resolve_n_jobs`
    convention (``None`` -> 1, ``-1`` -> all cores).  Each worker gets
    its own inbox queue — per-shard FIFO is what preserves wire order
    within a shard, and wire order within a shard is all the engine
    needs (packets of different clients never interact).
    """

    def __init__(self, spec: EngineSpec, workers: int | None = None,
                 batch_size: int = _BATCH_SIZE):
        self.spec = spec
        self.n_workers = resolve_n_jobs(workers)
        self.batch_size = batch_size
        self.router = PacketRouter(self.n_workers, linktype=spec.linktype)
        self.packets_routed = 0
        self._ctx = mp.get_context()
        self._processes: list[mp.process.BaseProcess] = []
        self._inboxes: list[Any] = []
        self._outbox: Any = None
        self._pending: list[list[PcapPacket]] = []

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._processes:
            raise RuntimeError("service already started")
        self._outbox = self._ctx.Queue()
        self._pending = [[] for _ in range(self.n_workers)]
        for shard_id in range(self.n_workers):
            inbox = self._ctx.Queue()
            process = self._ctx.Process(
                target=shard_worker,
                args=(self.spec, shard_id, inbox, self._outbox),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

    def __enter__(self) -> "ShardedDetectionService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def feed(self, packet: PcapPacket) -> None:
        """Route one pcap record to its shard's inbox."""
        for shard_id, routed in self.router.route(packet):
            self.packets_routed += 1
            batch = self._pending[shard_id]
            batch.append(routed)
            if len(batch) >= self.batch_size:
                self._inboxes[shard_id].put(batch)
                self._pending[shard_id] = []

    def feed_many(self, packets: Iterator[PcapPacket]) -> None:
        for packet in packets:
            self.feed(packet)

    def drain(self) -> FleetResult:
        """Flush every shard, collect results, merge, shut the pool."""
        if not self._processes:
            raise RuntimeError("service not started")
        for shard_id, batch in enumerate(self._pending):
            if batch:
                self._inboxes[shard_id].put(batch)
            self._inboxes[shard_id].put(None)
        self._pending = [[] for _ in range(self.n_workers)]
        results: list[ShardResult] = []
        for _ in range(self.n_workers):
            results.append(self._outbox.get(timeout=_DRAIN_TIMEOUT))
        results.sort(key=lambda r: r.shard_id)
        self.close()
        for result in results:
            if result.error is not None:
                raise ShardError(
                    f"shard {result.shard_id} died:\n{result.error}"
                )
        alerts = merge_alerts(
            sa for result in results for sa in result.alerts
        )
        snapshot = merge_snapshots([r.snapshot for r in results])
        return FleetResult(
            alerts=alerts,
            shards=results,
            snapshot=snapshot,
            packets_routed=self.packets_routed,
            watches=merge_watch_snapshots(r.watches for r in results),
            trace=merge_traces((r.shard_id, r.trace) for r in results),
        )

    def close(self) -> None:
        """Tear the pool down; idempotent, safe after drain()."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._processes = []
        self._inboxes = []
