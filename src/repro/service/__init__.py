"""Sharded multi-worker live detection service (ROADMAP item 1).

One :class:`~repro.detection.live.DetectionEngine` scales to one core;
DynaMiner's deployment story (paper Section V) needs an edge tap that
keeps up with "millions of users".  This package is the horizontal
layer: a coordinator hashes packets across N worker processes by the
*client* endpoint, each worker runs a private engine (its own
reassembler, pairing state, session table, and WCGs — no cross-worker
state whatsoever), and the coordinator merges the workers' alerts and
metric snapshots into one deterministic fleet view.

The load balancer is :class:`~repro.service.sharding.PacketRouter`
(client-affinity routing — every packet of every connection of a given
client lands on the same shard, which is exactly the state locality the
detector's per-client session clustering needs); the per-process unit
is :mod:`repro.service.worker`; the process pool and the merge contract
live in :mod:`repro.service.daemon`.  The headline property, enforced
by test and CI: the fleet's merged alert stream is byte-identical to a
single-process :class:`~repro.detection.live.LiveDetector` over the
same packets, at any worker count.
"""

from repro.service.daemon import (
    FleetResult,
    ShardedDetectionService,
    merge_alerts,
    merge_snapshots,
)
from repro.service.sharding import PacketRouter, client_ip_of, shard_of
from repro.service.worker import EngineSpec, ShardResult, run_shard

__all__ = [
    "EngineSpec",
    "FleetResult",
    "PacketRouter",
    "ShardResult",
    "ShardedDetectionService",
    "client_ip_of",
    "merge_alerts",
    "merge_snapshots",
    "run_shard",
    "shard_of",
]
