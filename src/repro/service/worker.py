"""The per-process unit of the sharded service: one shard, one engine.

A worker process owns exactly one
:class:`~repro.detection.live.DetectionEngine` — its own TCP
reassembler, HTTP pairing state, session table, WCGs, and alert
cooldown — built inside the process from a picklable
:class:`EngineSpec`.  Nothing is shared between workers: the client
affinity of :mod:`repro.service.sharding` guarantees each engine sees
every packet of its clients and no packet of anyone else's, which is
what makes the per-shard alert streams merge into the single-process
stream byte for byte.

Every function here is module-level (not a closure, not a lambda) so
the pool works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.detection.alerts import Alert
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.live import DetectionEngine, OverloadPolicy, WatchSnapshot
from repro.learning.forest import EnsembleRandomForest
from repro.net.flows import AddressBook
from repro.net.pcap import LINKTYPE_ETHERNET, PcapPacket
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    TraceEvent,
    Tracer,
    tracing_enabled,
    use_registry,
    use_tracer,
)

__all__ = ["EngineSpec", "ShardAlert", "ShardResult", "run_shard",
           "shard_worker"]


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to build its engine, picklable.

    The spec crosses the process boundary once, at pool start; the
    classifier rides along pickled (its compiled arena is dropped from
    pickles and lazily rebuilt in the worker, see
    ``repro.learning.compiled``).
    """

    classifier: EnsembleRandomForest
    clue_policy: CluePolicy | None = None
    detector_config: DetectorConfig | None = None
    overload_policy: OverloadPolicy | None = None
    linktype: int = LINKTYPE_ETHERNET
    book: AddressBook | None = None
    #: Collect a per-shard MetricsRegistry snapshot.  Off by default —
    #: matching the process-wide registry convention where telemetry is
    #: opt-in and a disabled registry is a true no-op.
    metrics: bool = False
    #: Capture per-watch :class:`~repro.detection.live.WatchSnapshot`
    #: summaries (taken after the packet stream drains, before
    #: finalization terminates the watches).  Off by default — the
    #: summaries are cheap column slices, but most callers only want
    #: alerts.
    snapshot_watches: bool = False
    #: Capture a per-shard detection trace (repro.obs.trace) and ship
    #: it back on :attr:`ShardResult.trace`.  ``None`` (the default)
    #: inherits the ambient ``REPRO_TRACE`` setting inside the worker
    #: process, so env-enabled tracing behaves identically sharded and
    #: single-process; ``True``/``False`` force it either way.
    trace: bool | None = None
    #: Trace sampling mode (``"full"`` or ``"alerts"``).
    trace_sample: str = "full"

    def build_engine(self) -> DetectionEngine:
        return DetectionEngine(
            OnTheWireDetector(
                self.classifier,
                policy=self.clue_policy,
                config=self.detector_config,
            ),
            linktype=self.linktype,
            book=self.book,
            policy=self.overload_policy,
        )


@dataclass(frozen=True)
class ShardAlert:
    """One alert stamped with its shard provenance.

    ``seq`` is the alert's position in its shard's own stream; together
    with the alert timestamp and the shard id it forms the total merge
    order ``(timestamp, shard_id, seq)`` — see
    :func:`repro.service.daemon.merge_alerts`.
    """

    shard_id: int
    seq: int
    alert: Alert


@dataclass
class ShardResult:
    """What one worker hands back to the coordinator when it drains."""

    shard_id: int
    alerts: list[ShardAlert] = field(default_factory=list)
    packets: int = 0
    transactions: int = 0
    classifications: int = 0
    transactions_weeded: int = 0
    watches_opened: int = 0
    #: Registry snapshot (``EngineSpec.metrics`` on) or the null shape.
    snapshot: dict[str, Any] = field(default_factory=dict)
    #: Pre-finalize live-watch summaries (``EngineSpec.snapshot_watches``
    #: on), already in canonical ``(client, key)`` order.
    watches: list[WatchSnapshot] = field(default_factory=list)
    #: This shard's drained trace events, in ``(ts, seq)`` order — the
    #: coordinator merges per-shard streams under ``(ts, shard_id,
    #: seq)``, the same key as alerts.
    trace: list[TraceEvent] = field(default_factory=list)
    #: Traceback text if the shard died; the coordinator re-raises.
    error: str | None = None


def run_shard(spec: EngineSpec, shard_id: int,
              packets: Iterable[PcapPacket]) -> ShardResult:
    """Run one shard's packet stream through a fresh engine, in-process.

    This is the whole shard lifecycle — build, feed, finish, summarize
    — shared by the worker-process loop (:func:`shard_worker`) and by
    tests that want a shard without a pool around it.
    """
    registry = MetricsRegistry() if spec.metrics else NullRegistry()
    tracer = _shard_tracer(spec)
    result = ShardResult(shard_id=shard_id)
    with use_registry(registry), use_tracer(tracer):
        engine = spec.build_engine()
        for packet in packets:
            result.packets += 1
            for alert in engine.feed(packet):
                result.alerts.append(
                    ShardAlert(shard_id, len(result.alerts), alert)
                )
        if spec.snapshot_watches:
            result.watches = engine.snapshot_watches()
        for alert in engine.finish():
            result.alerts.append(
                ShardAlert(shard_id, len(result.alerts), alert)
            )
    result.transactions = engine.transactions_emitted
    result.classifications = engine.detector.classifications
    result.transactions_weeded = engine.detector.transactions_weeded
    result.watches_opened = engine.detector.watch_count()
    result.snapshot = registry.snapshot()
    result.trace = tracer.drain()
    return result


def _shard_tracer(spec: EngineSpec):
    """Resolve the spec's tracing request into a tracer instance.

    A fresh :class:`Tracer` per shard — never the process-global one,
    which under ``fork`` would arrive pre-loaded with the parent's
    accumulation.  ``spec.trace=None`` defers to the ambient
    ``REPRO_TRACE`` state so env-driven tracing traces the fleet too.
    """
    want = tracing_enabled() if spec.trace is None else spec.trace
    return Tracer(sample=spec.trace_sample) if want else NULL_TRACER


def shard_worker(spec: EngineSpec, shard_id: int, inbox: Any,
                 outbox: Any) -> None:
    """Worker-process main loop: drain packet batches until sentinel.

    ``inbox`` delivers ``list[PcapPacket]`` batches in wire order (one
    queue per worker preserves per-shard ordering) and a final ``None``
    sentinel; the worker then posts its :class:`ShardResult` to the
    shared ``outbox``.  Any exception is captured into the result's
    ``error`` field instead of killing the process silently — the
    coordinator turns it back into a raise.
    """
    registry = MetricsRegistry() if spec.metrics else NullRegistry()
    tracer = _shard_tracer(spec)
    result = ShardResult(shard_id=shard_id)
    try:
        with use_registry(registry), use_tracer(tracer):
            engine = spec.build_engine()
            while True:
                batch = inbox.get()
                if batch is None:
                    break
                for packet in batch:
                    result.packets += 1
                    for alert in engine.feed(packet):
                        result.alerts.append(
                            ShardAlert(shard_id, len(result.alerts), alert)
                        )
            if spec.snapshot_watches:
                result.watches = engine.snapshot_watches()
            for alert in engine.finish():
                result.alerts.append(
                    ShardAlert(shard_id, len(result.alerts), alert)
                )
        result.transactions = engine.transactions_emitted
        result.classifications = engine.detector.classifications
        result.transactions_weeded = engine.detector.transactions_weeded
        result.watches_opened = engine.detector.watch_count()
        result.snapshot = registry.snapshot()
        result.trace = tracer.drain()
    except Exception:  # noqa: BLE001 — ferried to the coordinator
        import traceback
        result.error = traceback.format_exc()
    outbox.put(result)
