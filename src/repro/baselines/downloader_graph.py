"""Downloader-graph baseline, after Kwon et al. [12] ("The Dropper
Effect", CCS 2015).

The abstraction the paper explicitly contrasts with (Section IV-A):
nodes are *downloaded files* and edges connect a downloaded file to the
files whose retrieval it caused — the inverse of the WCG, where payloads
are edge attributes and hosts are nodes.  Features are the
downloader-graph properties [12] classifies on: growth, diameter,
density, clustering, and file-size aggregates.

Used as a comparative baseline: training the same ERF on these features
quantifies what DynaMiner's *comprehensive* conversation abstraction
adds over a download-only view.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.model import Trace
from repro.core.payloads import is_downloadable

__all__ = ["DOWNLOADER_FEATURES", "build_download_graph",
           "downloader_features", "extract_matrix"]

DOWNLOADER_FEATURES = (
    "dg_order",            # downloaded files
    "dg_size",             # provenance edges
    "dg_diameter",
    "dg_density",
    "dg_avg_clustering",
    "dg_max_out_degree",
    "dg_total_bytes",
    "dg_mean_bytes",
    "dg_distinct_hosts",
    "dg_growth_rate",      # downloads per minute
)


def build_download_graph(trace: Trace) -> nx.DiGraph:
    """Build the [12]-style download graph for one trace.

    A node is one downloaded file (URI + type + size annotations).  An
    edge ``A -> B`` means the conversation that delivered ``A``
    (identified by its serving host) later led, via referrer lineage, to
    the download of ``B``.
    """
    graph = nx.DiGraph()
    # host -> most recent download node served from (or referred by) it
    last_download_via: dict[str, str] = {}
    for index, txn in enumerate(trace.transactions):
        if txn.status != 200 or not is_downloadable(txn.payload_type):
            continue
        node = f"file{index}:{txn.request.uri.split('?')[0]}"
        graph.add_node(
            node,
            host=txn.server,
            size=txn.payload_size,
            ptype=txn.payload_type.value,
            timestamp=txn.timestamp,
        )
        ref_host = txn.request.referrer_host
        parent = last_download_via.get(ref_host) or last_download_via.get(
            txn.server
        )
        if parent is not None and parent != node:
            graph.add_edge(parent, node)
        last_download_via[txn.server] = node
        if ref_host:
            last_download_via.setdefault(ref_host, node)
    return graph


def downloader_features(trace: Trace) -> np.ndarray:
    """The [12]-style feature vector for one trace."""
    graph = build_download_graph(trace)
    order = graph.number_of_nodes()
    size = graph.number_of_edges()
    undirected = graph.to_undirected()
    if order > 1:
        components = [
            undirected.subgraph(c)
            for c in nx.connected_components(undirected)
        ]
        diameter = max(
            (nx.diameter(c) for c in components if c.number_of_nodes() > 1),
            default=0,
        )
        density = nx.density(graph)
        clustering = nx.average_clustering(undirected)
    else:
        diameter = 0
        density = 0.0
        clustering = 0.0
    out_degrees = [d for _, d in graph.out_degree()]
    sizes = [data["size"] for _, data in graph.nodes(data=True)]
    hosts = {data["host"] for _, data in graph.nodes(data=True)}
    stamps = sorted(
        data["timestamp"] for _, data in graph.nodes(data=True)
    )
    if len(stamps) > 1 and stamps[-1] > stamps[0]:
        growth = 60.0 * (len(stamps) - 1) / (stamps[-1] - stamps[0])
    else:
        growth = 0.0
    return np.array([
        float(order),
        float(size),
        float(diameter),
        float(density),
        float(clustering),
        float(max(out_degrees, default=0)),
        float(sum(sizes)),
        float(np.mean(sizes)) if sizes else 0.0,
        float(len(hosts)),
        growth,
    ])


def extract_matrix(traces: list[Trace]) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) over labelled traces using downloader-graph features."""
    rows, labels = [], []
    for trace in traces:
        if trace.label is None:
            continue
        rows.append(downloader_features(trace))
        labels.append(1.0 if trace.is_infection else 0.0)
    if not rows:
        return np.empty((0, len(DOWNLOADER_FEATURES))), np.empty(0)
    return np.vstack(rows), np.array(labels)
