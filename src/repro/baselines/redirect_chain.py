"""Redirection-chain baseline, after SpiderWeb [25] (Stringhini et al.,
CCS 2013) and Mekky et al. [14] (INFOCOM 2014).

The other abstraction the paper contrasts with: classify on the
properties of the *redirection chains* a browser traverses — chain
lengths, cross-domain hops, TLD diversity, IP-literal hops, 30x usage —
ignoring download and post-download dynamics entirely.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.model import Trace
from repro.core.redirects import (
    Redirect,
    RedirectKind,
    infer_redirects,
    redirect_chains,
)

__all__ = ["REDIRECT_FEATURES", "redirect_features", "extract_matrix"]

REDIRECT_FEATURES = (
    "rc_chain_count",
    "rc_max_chain_length",
    "rc_mean_chain_length",
    "rc_total_hops",
    "rc_cross_domain_ratio",
    "rc_tld_diversity",
    "rc_ip_literal_hops",
    "rc_http_30x_hops",
    "rc_content_hops",      # meta/JS/iframe redirects
    "rc_mean_hop_delay",
)

_IP_LITERAL = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


def _tld(host: str) -> str:
    return host.rsplit(".", 1)[-1] if "." in host else host


def redirect_features(trace: Trace) -> np.ndarray:
    """The [25]/[14]-style feature vector for one trace."""
    redirects = [
        r for r in infer_redirects(trace.transactions)
        if r.kind is not RedirectKind.REFERRER
    ]
    chains = redirect_chains(redirects)
    lengths = [len(chain) for chain in chains]
    cross = sum(1 for r in redirects if r.cross_domain)
    tlds = {_tld(r.target) for r in redirects} | {
        _tld(r.source) for r in redirects
    }
    ip_hops = sum(
        1 for r in redirects
        if _IP_LITERAL.match(r.source) or _IP_LITERAL.match(r.target)
    )
    http_hops = sum(
        1 for r in redirects if r.kind is RedirectKind.HTTP_30X
    )
    content_hops = len(redirects) - http_hops
    delays = []
    for chain in chains:
        for previous, current in zip(chain, chain[1:]):
            delays.append(max(0.0, current.timestamp - previous.timestamp))
    return np.array([
        float(len(chains)),
        float(max(lengths, default=0)),
        float(np.mean(lengths)) if lengths else 0.0,
        float(len(redirects)),
        cross / len(redirects) if redirects else 0.0,
        float(len(tlds)),
        float(ip_hops),
        float(http_hops),
        float(content_hops),
        float(np.mean(delays)) if delays else 0.0,
    ])


def extract_matrix(traces: list[Trace]) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) over labelled traces using redirection-chain features."""
    rows, labels = [], []
    for trace in traces:
        if trace.label is None:
            continue
        rows.append(redirect_features(trace))
        labels.append(1.0 if trace.is_infection else 0.0)
    if not rows:
        return np.empty((0, len(REDIRECT_FEATURES))), np.empty(0)
    return np.vstack(rows), np.array(labels)
