"""Prior-work baseline abstractions the paper positions itself against.

* :mod:`repro.baselines.downloader_graph` — Kwon et al. [12] download
  graphs (files as nodes).
* :mod:`repro.baselines.redirect_chain` — SpiderWeb [25] / Mekky et
  al. [14] redirection-chain properties.

Both feed the same ERF so the comparison isolates the *abstraction*, not
the learner — quantifying the paper's claim that DynaMiner's
comprehensive WCG "differs from this body of work in its richer
abstraction" (Section VIII).
"""

from repro.baselines.downloader_graph import (
    DOWNLOADER_FEATURES,
    build_download_graph,
    downloader_features,
)
from repro.baselines.redirect_chain import (
    REDIRECT_FEATURES,
    redirect_features,
)

__all__ = [
    "DOWNLOADER_FEATURES",
    "REDIRECT_FEATURES",
    "build_download_graph",
    "downloader_features",
    "redirect_features",
]
