"""HTTP/1.x wire-format parser and serializer.

Parses reassembled TCP byte streams into request and response message
sequences (persistent connections supported), handling ``Content-Length``
bodies, ``Transfer-Encoding: chunked``, and read-until-close responses.
The serializer is the inverse, used when materializing synthetic traces
into real pcap files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Headers
from repro.exceptions import HttpParseError

__all__ = [
    "RawHttpRequest",
    "RawHttpResponse",
    "parse_requests",
    "parse_responses",
    "serialize_request",
    "serialize_response",
]

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"
_MAX_HEADER_BYTES = 64 * 1024


@dataclass
class RawHttpRequest:
    """A parsed request line + headers + body, before domain mapping."""

    method: str
    uri: str
    version: str
    headers: Headers
    body: bytes
    #: Byte offset of the message start within its direction's stream.
    offset: int = 0


@dataclass
class RawHttpResponse:
    """A parsed status line + headers + body, before domain mapping."""

    version: str
    status: int
    reason: str
    headers: Headers
    body: bytes
    #: Byte offset of the message start within its direction's stream.
    offset: int = 0


def _split_headers(block: bytes) -> tuple[str, Headers]:
    """Split a header block into (start line, Headers)."""
    lines = block.split(_CRLF)
    start = lines[0].decode("latin-1")
    items: list[tuple[str, str]] = []
    for line in lines[1:]:
        if not line:
            continue
        if line[:1] in (b" ", b"\t") and items:
            # Obsolete header folding: append to the previous value.
            name, value = items[-1]
            items[-1] = (name, value + " " + line.strip().decode("latin-1"))
            continue
        if b":" not in line:
            raise HttpParseError(f"malformed header line: {line[:60]!r}")
        name, _, value = line.partition(b":")
        items.append((name.decode("latin-1").strip(), value.decode("latin-1").strip()))
    return start, Headers(items)


def _read_chunked(data: bytes, offset: int) -> tuple[bytes, int]:
    """Decode a chunked body starting at ``offset``; returns (body, end)."""
    body = bytearray()
    pos = offset
    while True:
        line_end = data.find(_CRLF, pos)
        if line_end < 0:
            raise HttpParseError("truncated chunk size line")
        size_token = data[pos:line_end].split(b";", 1)[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError as exc:
            raise HttpParseError(f"bad chunk size: {size_token!r}") from exc
        pos = line_end + 2
        if size == 0:
            # Skip trailers until the blank line.
            trailer_end = data.find(_HEADER_END, pos - 2)
            if data[pos : pos + 2] == _CRLF:
                return bytes(body), pos + 2
            if trailer_end < 0:
                raise HttpParseError("truncated chunk trailers")
            return bytes(body), trailer_end + 4
        if len(data) < pos + size + 2:
            raise HttpParseError("truncated chunk body")
        body.extend(data[pos : pos + size])
        pos += size
        if data[pos : pos + 2] != _CRLF:
            raise HttpParseError("missing chunk terminator")
        pos += 2


def _body_length(headers: Headers) -> int | None:
    """Declared body length, or None when unspecified."""
    declared = headers.get("Content-Length")
    if declared:
        try:
            length = int(declared)
        except ValueError as exc:
            raise HttpParseError(f"bad Content-Length: {declared!r}") from exc
        if length < 0:
            raise HttpParseError(f"negative Content-Length: {length}")
        return length
    return None


def _is_chunked(headers: Headers) -> bool:
    return "chunked" in headers.get("Transfer-Encoding", "").lower()


def parse_requests(data: bytes) -> list[RawHttpRequest]:
    """Parse a client-direction byte stream into pipelined requests.

    A trailing incomplete message (cut off by capture truncation) is
    silently dropped; a malformed *leading* message raises
    :class:`HttpParseError`.
    """
    requests: list[RawHttpRequest] = []
    pos = 0
    while pos < len(data):
        message_start = pos
        header_end = data.find(_HEADER_END, pos)
        if header_end < 0:
            if len(data) - pos > _MAX_HEADER_BYTES:
                raise HttpParseError("unterminated request header block")
            break  # truncated trailing message
        start, headers = _split_headers(data[pos:header_end])
        parts = start.split(" ", 2)
        if len(parts) < 3 or not parts[2].startswith("HTTP/"):
            raise HttpParseError(f"bad request line: {start!r}")
        method, uri, version = parts
        body_start = header_end + 4
        if _is_chunked(headers):
            body, pos = _read_chunked(data, body_start)
        else:
            length = _body_length(headers) or 0
            if len(data) < body_start + length:
                break  # truncated trailing body
            body = data[body_start : body_start + length]
            pos = body_start + length
        requests.append(
            RawHttpRequest(method, uri, version, headers, body,
                           offset=message_start)
        )
    return requests


def parse_responses(
    data: bytes,
    closed: bool = True,
    request_methods: list[str] | None = None,
) -> list[RawHttpResponse]:
    """Parse a server-direction byte stream into pipelined responses.

    ``closed`` indicates the connection terminated; a final response with
    neither ``Content-Length`` nor chunking is then read-until-close.

    ``request_methods`` (when known) positions-matches responses to the
    requests that elicited them: a response to ``HEAD`` carries headers
    describing the entity but **no body bytes**, whatever its
    ``Content-Length`` says (RFC 9110 §9.3.2) — without this the framing
    of every later response on the connection would shift.
    """
    responses: list[RawHttpResponse] = []
    pos = 0
    while pos < len(data):
        message_start = pos
        header_end = data.find(_HEADER_END, pos)
        if header_end < 0:
            if len(data) - pos > _MAX_HEADER_BYTES:
                raise HttpParseError("unterminated response header block")
            break
        start, headers = _split_headers(data[pos:header_end])
        parts = start.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpParseError(f"bad status line: {start!r}")
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpParseError(f"bad status code: {parts[1]!r}") from exc
        reason = parts[2] if len(parts) > 2 else ""
        body_start = header_end + 4
        method = (
            request_methods[len(responses)]
            if request_methods and len(responses) < len(request_methods)
            else ""
        )
        if method == "HEAD":
            responses.append(
                RawHttpResponse(version, status, reason, headers, b"",
                                offset=message_start)
            )
            pos = body_start
            continue
        if _is_chunked(headers):
            body, pos = _read_chunked(data, body_start)
        else:
            length = _body_length(headers)
            if length is None:
                if status < 200 or status in (204, 304):
                    body, pos = b"", body_start
                elif closed:
                    body, pos = data[body_start:], len(data)
                else:
                    break  # cannot delimit yet
            else:
                if len(data) < body_start + length:
                    break
                body = data[body_start : body_start + length]
                pos = body_start + length
        responses.append(
            RawHttpResponse(version, status, reason, headers, body,
                            offset=message_start)
        )
    return responses


def serialize_request(req: RawHttpRequest) -> bytes:
    """Serialize a request back to wire format (Content-Length framing)."""
    headers = req.headers.copy()
    headers.remove("Transfer-Encoding")
    if req.body or req.method in ("POST", "PUT"):
        headers.set("Content-Length", str(len(req.body)))
    lines = [f"{req.method} {req.uri} {req.version}".encode("latin-1")]
    lines.extend(
        f"{name}: {value}".encode("latin-1") for name, value in headers
    )
    return _CRLF.join(lines) + _HEADER_END + req.body


def serialize_response(res: RawHttpResponse) -> bytes:
    """Serialize a response back to wire format (Content-Length framing)."""
    headers = res.headers.copy()
    headers.remove("Transfer-Encoding")
    headers.set("Content-Length", str(len(res.body)))
    reason = res.reason or "OK"
    lines = [f"{res.version} {res.status} {reason}".encode("latin-1")]
    lines.extend(
        f"{name}: {value}".encode("latin-1") for name, value in headers
    )
    return _CRLF.join(lines) + _HEADER_END + res.body
