"""HTTP/1.x wire-format parser and serializer.

Parses reassembled TCP byte streams into request and response message
sequences (persistent connections supported), handling ``Content-Length``
bodies, ``Transfer-Encoding: chunked``, and read-until-close responses.
The serializer is the inverse, used when materializing synthetic traces
into real pcap files.

Parsing is *resumable*: :class:`RequestParser` and :class:`ResponseParser`
retain partial-message state between :meth:`~RequestParser.feed` calls and
examine each byte exactly once, so a live tap pays O(total bytes) per
connection no matter how the bytes are sliced into deliveries.  The batch
:func:`parse_requests` / :func:`parse_responses` entry points are thin
wrappers over the same machinery (one ``feed`` of the whole buffer plus a
``finish``), which keeps offline and on-the-wire decoding identical by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Headers
from repro.exceptions import HttpParseError

__all__ = [
    "RawHttpRequest",
    "RawHttpResponse",
    "RequestParser",
    "ResponseParser",
    "parse_requests",
    "parse_responses",
    "serialize_request",
    "serialize_response",
]

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"
_MAX_HEADER_BYTES = 64 * 1024


@dataclass
class RawHttpRequest:
    """A parsed request line + headers + body, before domain mapping."""

    method: str
    uri: str
    version: str
    headers: Headers
    body: bytes
    #: Byte offset of the message start within its direction's stream.
    offset: int = 0


@dataclass
class RawHttpResponse:
    """A parsed status line + headers + body, before domain mapping."""

    version: str
    status: int
    reason: str
    headers: Headers
    body: bytes
    #: Byte offset of the message start within its direction's stream.
    offset: int = 0


def _split_headers(block: bytes) -> tuple[str, Headers]:
    """Split a header block into (start line, Headers)."""
    lines = block.split(_CRLF)
    start = lines[0].decode("latin-1")
    items: list[tuple[str, str]] = []
    for line in lines[1:]:
        if not line:
            continue
        if line[:1] in (b" ", b"\t") and items:
            # Obsolete header folding: append to the previous value.
            name, value = items[-1]
            items[-1] = (name, value + " " + line.strip().decode("latin-1"))
            continue
        if b":" not in line:
            raise HttpParseError(f"malformed header line: {line[:60]!r}")
        name, _, value = line.partition(b":")
        items.append((name.decode("latin-1").strip(), value.decode("latin-1").strip()))
    return start, Headers(items)


def _body_length(headers: Headers) -> int | None:
    """Declared body length, or None when unspecified."""
    declared = headers.get("Content-Length")
    if declared:
        try:
            length = int(declared)
        except ValueError as exc:
            raise HttpParseError(f"bad Content-Length: {declared!r}") from exc
        if length < 0:
            raise HttpParseError(f"negative Content-Length: {length}")
        return length
    return None


def _is_chunked(headers: Headers) -> bool:
    return "chunked" in headers.get("Transfer-Encoding", "").lower()


class _IncrementalParser:
    """Resumable framing machinery shared by both message directions.

    The parser buffers only the not-yet-framed tail of the stream (at
    most the current partial message): framed bytes are deleted as the
    cursor advances, and repeated ``find`` scans restart from where the
    previous delivery stopped.  Malformed-content errors (bad start
    line, bad chunk size, ...) raise :class:`HttpParseError` as soon as
    the offending bytes arrive; truncation conditions merely pause the
    parser until more bytes are fed or :meth:`finish` declares the end
    of the stream.
    """

    _kind = "message"

    def __init__(self) -> None:
        self._buf = bytearray()
        #: Absolute stream offset of ``_buf[0]``.
        self._base = 0
        #: Buffer-relative restart hint for delimiter scans.
        self._scan = 0
        self._state = "headers"
        #: Absolute stream offset where the current message starts.
        self._msg_offset = 0
        self._body = bytearray()
        self._need = 0
        self._chunk_remaining = 0
        self._finishing = False
        self._done = False

    @property
    def pending_offset(self) -> int:
        """Absolute stream offset of the current (partial) message.

        Everything before this offset has been fully framed; callers may
        discard earlier per-offset bookkeeping (e.g. timestamp marks).
        """
        return self._msg_offset

    # -- byte plumbing ------------------------------------------------------

    def _consume(self, count: int) -> None:
        del self._buf[:count]
        self._base += count
        self._scan = 0

    def feed(self, data: bytes) -> list:
        """Ingest ``data``; returns the messages it completed."""
        if self._done:
            if data:
                raise HttpParseError(f"data after {self._kind} stream end")
            return []
        if data:
            self._buf += data
        out: list = []
        while self._step(out):
            pass
        return out

    def _terminate(self) -> None:
        """Raise the batch-identical truncation error for a cut-off tail."""
        state = self._state
        if state == "chunk-size":
            raise HttpParseError("truncated chunk size line")
        if state in ("chunk-data", "chunk-term"):
            raise HttpParseError("truncated chunk body")
        if state == "chunk-trailers":
            raise HttpParseError("truncated chunk trailers")
        # "headers" / "body" / "body-close": a trailing message cut off
        # by capture truncation is silently dropped.

    def _finish(self) -> list:
        """Declare end-of-stream; returns messages completable at EOF."""
        if self._done:
            return []
        self._finishing = True
        out: list = []
        while self._step(out):
            pass
        self._done = True
        self._terminate()
        return out

    # -- state machine ------------------------------------------------------

    def _step(self, out: list) -> bool:
        state = self._state
        if state == "headers":
            return self._step_headers(out)
        if state == "body":
            return self._step_body(out)
        if state == "chunk-size":
            return self._step_chunk_size()
        if state == "chunk-data":
            return self._step_chunk_data()
        if state == "chunk-term":
            return self._step_chunk_term()
        if state == "chunk-trailers":
            return self._step_chunk_trailers(out)
        return self._step_extra(out)

    def _step_headers(self, out: list) -> bool:
        if not self._buf:
            return False
        self._msg_offset = self._base
        end = self._buf.find(_HEADER_END, self._scan)
        if end < 0:
            if len(self._buf) > _MAX_HEADER_BYTES:
                raise HttpParseError(f"unterminated {self._kind} header block")
            self._scan = max(0, len(self._buf) - 3)
            return False
        block = bytes(self._buf[:end])
        self._consume(end + 4)
        start, headers = _split_headers(block)
        return self._begin_message(start, headers, out)

    def _begin_message(self, start: str, headers: Headers, out: list) -> bool:
        raise NotImplementedError

    def _step_extra(self, out: list) -> bool:
        raise HttpParseError(f"corrupt {self._kind} parser state: {self._state}")

    def _step_body(self, out: list) -> bool:
        take = min(len(self._buf), self._need)
        if take:
            self._body += self._buf[:take]
            self._consume(take)
            self._need -= take
        if self._need:
            return False
        self._emit(bytes(self._body), out)
        return True

    def _step_chunk_size(self) -> bool:
        line_end = self._buf.find(_CRLF, self._scan)
        if line_end < 0:
            self._scan = max(0, len(self._buf) - 1)
            return False
        size_token = bytes(self._buf[:line_end]).split(b";", 1)[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError as exc:
            raise HttpParseError(f"bad chunk size: {size_token!r}") from exc
        if size == 0:
            # Keep the size line's CRLF: the trailer scan below starts at
            # it so an immediately-following blank line is recognized.
            self._consume(line_end)
            self._state = "chunk-trailers"
            return True
        self._consume(line_end + 2)
        self._chunk_remaining = size
        self._state = "chunk-data"
        return True

    def _step_chunk_data(self) -> bool:
        take = min(len(self._buf), self._chunk_remaining)
        if take:
            self._body += self._buf[:take]
            self._consume(take)
            self._chunk_remaining -= take
        if self._chunk_remaining:
            return False
        self._state = "chunk-term"
        return True

    def _step_chunk_term(self) -> bool:
        if len(self._buf) < 2:
            return False
        if self._buf[:2] != _CRLF:
            raise HttpParseError("missing chunk terminator")
        self._consume(2)
        self._state = "chunk-size"
        return True

    def _step_chunk_trailers(self, out: list) -> bool:
        # _buf[0:2] is the CRLF that closed the zero-size line.
        if len(self._buf) >= 4 and self._buf[2:4] == _CRLF:
            self._consume(4)
            self._emit(bytes(self._body), out)
            return True
        end = self._buf.find(_HEADER_END, self._scan)
        if end >= 0:
            self._consume(end + 4)
            self._emit(bytes(self._body), out)
            return True
        self._scan = max(0, len(self._buf) - 3)
        return False

    def _emit(self, body: bytes, out: list) -> None:
        raise NotImplementedError


class RequestParser(_IncrementalParser):
    """Incremental client-direction parser: feed bytes, get requests.

    ``feed()`` returns the :class:`RawHttpRequest` messages completed by
    the delivered bytes; :meth:`finish` declares end-of-stream, raising
    for a stream cut off inside a chunked body (as the batch parser
    does) and silently dropping a truncated trailing message.
    """

    _kind = "request"

    def __init__(self) -> None:
        super().__init__()
        self._pending: RawHttpRequest | None = None

    def _begin_message(self, start: str, headers: Headers, out: list) -> bool:
        parts = start.split(" ", 2)
        if len(parts) < 3 or not parts[2].startswith("HTTP/"):
            raise HttpParseError(f"bad request line: {start!r}")
        method, uri, version = parts
        self._pending = RawHttpRequest(method, uri, version, headers, b"",
                                       offset=self._msg_offset)
        self._body = bytearray()
        if _is_chunked(headers):
            self._state = "chunk-size"
            return True
        length = _body_length(headers) or 0
        if length == 0:
            self._emit(b"", out)
            return True
        self._state = "body"
        self._need = length
        return True

    def _emit(self, body: bytes, out: list) -> None:
        message = self._pending
        message.body = body
        out.append(message)
        self._pending = None
        self._state = "headers"
        self._msg_offset = self._base

    def finish(self) -> list[RawHttpRequest]:
        """End of the client stream; idempotent."""
        return self._finish()


class ResponseParser(_IncrementalParser):
    """Incremental server-direction parser: feed bytes, get responses.

    ``request_methods`` is consulted positionally to frame each response
    (a ``HEAD`` response carries no body bytes whatever its
    ``Content-Length`` says, RFC 9110 §9.3.2).  The list may be shared
    with a request parser and grow between deliveries; with
    ``await_methods=True`` the parser pauses rather than guess when a
    response outruns the requests seen so far.  A response with neither
    ``Content-Length`` nor chunking is held until :meth:`finish`
    resolves whether the connection closed (read-until-close) or the
    capture was merely truncated.
    """

    _kind = "response"

    def __init__(self, request_methods: list[str] | None = None,
                 await_methods: bool = False) -> None:
        super().__init__()
        self._pending: RawHttpResponse | None = None
        self._methods = request_methods
        self._await = await_methods
        self._count = 0
        self._closed = False

    def _begin_message(self, start: str, headers: Headers, out: list) -> bool:
        parts = start.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpParseError(f"bad status line: {start!r}")
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpParseError(f"bad status code: {parts[1]!r}") from exc
        reason = parts[2] if len(parts) > 2 else ""
        self._pending = RawHttpResponse(version, status, reason, headers, b"",
                                        offset=self._msg_offset)
        self._body = bytearray()
        self._state = "frame"
        return True

    def _step_extra(self, out: list) -> bool:
        if self._state == "frame":
            return self._step_frame(out)
        if self._state == "body-close":
            return self._step_body_close(out)
        return super()._step_extra(out)

    def _step_frame(self, out: list) -> bool:
        """Pick the body framing, which may need the request's method."""
        if self._methods and self._count < len(self._methods):
            method = self._methods[self._count]
        else:
            if self._await and not self._finishing:
                return False  # the eliciting request has not parsed yet
            method = ""
        if method == "HEAD":
            self._emit(b"", out)
            return True
        headers = self._pending.headers
        if _is_chunked(headers):
            self._state = "chunk-size"
            return True
        length = _body_length(headers)
        if length is None:
            status = self._pending.status
            if status < 200 or status in (204, 304):
                self._emit(b"", out)
                return True
            self._state = "body-close"
            return True
        if length == 0:
            self._emit(b"", out)
            return True
        self._state = "body"
        self._need = length
        return True

    def _step_body_close(self, out: list) -> bool:
        if self._buf:
            self._body += self._buf
            self._consume(len(self._buf))
        if self._finishing and self._closed:
            self._emit(bytes(self._body), out)
            return True
        return False  # cannot delimit until the connection closes

    def _terminate(self) -> None:
        if self._state == "frame":
            # Method never resolved (more responses than requests): the
            # batch parser frames with an empty method, which _step_frame
            # already did under _finishing — reaching here means the
            # framed body was then truncated and dropped.
            return
        super()._terminate()

    def _emit(self, body: bytes, out: list) -> None:
        message = self._pending
        message.body = body
        out.append(message)
        self._pending = None
        self._count += 1
        self._state = "headers"
        self._msg_offset = self._base

    def finish(self, closed: bool = True) -> list[RawHttpResponse]:
        """End of the server stream; idempotent.

        ``closed`` marks a real connection teardown: a pending
        read-until-close body is then emitted; otherwise (capture
        truncation) it is dropped, matching the batch parser.
        """
        self._closed = closed
        return self._finish()


def parse_requests(data: bytes) -> list[RawHttpRequest]:
    """Parse a client-direction byte stream into pipelined requests.

    A trailing incomplete message (cut off by capture truncation) is
    silently dropped; a malformed *leading* message raises
    :class:`HttpParseError`.
    """
    parser = RequestParser()
    requests = parser.feed(data)
    requests.extend(parser.finish())
    return requests


def parse_responses(
    data: bytes,
    closed: bool = True,
    request_methods: list[str] | None = None,
) -> list[RawHttpResponse]:
    """Parse a server-direction byte stream into pipelined responses.

    ``closed`` indicates the connection terminated; a final response with
    neither ``Content-Length`` nor chunking is then read-until-close.

    ``request_methods`` (when known) positions-matches responses to the
    requests that elicited them: a response to ``HEAD`` carries headers
    describing the entity but **no body bytes**, whatever its
    ``Content-Length`` says (RFC 9110 §9.3.2) — without this the framing
    of every later response on the connection would shift.
    """
    parser = ResponseParser(request_methods=request_methods)
    responses = parser.feed(data)
    responses.extend(parser.finish(closed=closed))
    return responses


def serialize_request(req: RawHttpRequest) -> bytes:
    """Serialize a request back to wire format (Content-Length framing)."""
    headers = req.headers.copy()
    headers.remove("Transfer-Encoding")
    if req.body or req.method in ("POST", "PUT"):
        headers.set("Content-Length", str(len(req.body)))
    lines = [f"{req.method} {req.uri} {req.version}".encode("latin-1")]
    lines.extend(
        f"{name}: {value}".encode("latin-1") for name, value in headers
    )
    return _CRLF.join(lines) + _HEADER_END + req.body


def serialize_response(res: RawHttpResponse) -> bytes:
    """Serialize a response back to wire format (Content-Length framing)."""
    headers = res.headers.copy()
    headers.remove("Transfer-Encoding")
    headers.set("Content-Length", str(len(res.body)))
    reason = res.reason or "OK"
    lines = [f"{res.version} {res.status} {reason}".encode("latin-1")]
    lines.extend(
        f"{name}: {value}".encode("latin-1") for name, value in headers
    )
    return _CRLF.join(lines) + _HEADER_END + res.body
