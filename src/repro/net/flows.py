"""End-to-end flow assembly: pcap packets <-> HTTP transactions.

``transactions_from_packets`` drives the full decode pipeline
(Ethernet -> IPv4 -> TCP -> reassembly -> HTTP/1.x -> domain model), the
path the paper's offline analytics takes over its PCAP corpus.

``packets_from_trace`` is the inverse: it materializes a synthetic
:class:`~repro.core.model.Trace` as real Ethernet/IPv4/TCP packets, so the
whole substrate is exercised round-trip in tests and examples.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
)
from repro.exceptions import HttpParseError, PcapError
from repro.net.http1 import (
    RawHttpRequest,
    RawHttpResponse,
    RequestParser,
    ResponseParser,
    serialize_request,
    serialize_response,
)
from repro.net.packets import (
    ACK,
    FIN,
    IPPROTO_TCP,
    IpFragmentReassembler,
    PSH,
    SYN,
    decode_ethernet,
    decode_ipv4,
    decode_tcp,
    encode_tcp_in_ipv4_ethernet,
    ETHERTYPE_IPV4,
)
from repro.net.pcap import LINKTYPE_ETHERNET, LINKTYPE_RAW_IP, PcapPacket
from repro.net.reassembly import StreamDirection, TcpReassembler, TcpStream
from repro.obs import get_registry

__all__ = [
    "AddressBook",
    "StreamPairer",
    "transactions_from_packets",
    "packets_from_trace",
    "trace_from_packets",
]


@dataclass
class AddressBook:
    """Deterministic bidirectional host-name <-> IPv4 mapping.

    Synthetic traces speak in host names; the packet layer speaks in IP
    addresses.  Addresses are derived from a stable hash of the host name
    so the same name maps to the same address across runs, with collision
    fallback to sequential assignment.
    """

    _by_name: dict[str, str] = field(default_factory=dict)
    _by_ip: dict[str, str] = field(default_factory=dict)
    _serial: int = 0

    def ip_of(self, host: str) -> str:
        """Return (allocating if needed) the IPv4 address for ``host``."""
        known = self._by_name.get(host)
        if known is not None:
            return known
        digest = hashlib.sha256(host.encode("utf-8")).digest()
        candidate = f"10.{digest[0]}.{digest[1]}.{max(1, digest[2])}"
        while candidate in self._by_ip:
            self._serial += 1
            hi, lo = divmod(self._serial, 250)
            candidate = f"172.16.{hi % 250}.{lo + 1}"
        self._by_name[host] = candidate
        self._by_ip[candidate] = host
        return candidate

    def host_of(self, ip: str) -> str:
        """Host name previously mapped to ``ip``, or the ip itself."""
        return self._by_ip.get(ip, ip)


def _segments_of(packets: list[PcapPacket], linktype: int):
    """Decode pcap records down to (ts, src_ip, dst_ip, TcpSegment).

    IPv4 fragments are reassembled transparently; a fragmented TCP
    segment surfaces once, at the arrival time of its completing piece.
    A record that fails link/IP/TCP decoding is counted
    (``decode.errors``) and skipped: real taps carry mangled frames, and
    one of them must not abort the capture — batch and live alike.
    """
    fragments = IpFragmentReassembler()
    errors = get_registry().counter("decode.errors")
    for packet in packets:
        try:
            data = packet.data
            if linktype == LINKTYPE_ETHERNET:
                frame = decode_ethernet(data)
                if frame.ethertype != ETHERTYPE_IPV4:
                    continue
                data = frame.payload
            elif linktype != LINKTYPE_RAW_IP:
                continue
            ip = fragments.feed(decode_ipv4(data))
            if ip is None or ip.protocol != IPPROTO_TCP:
                continue
            segment = decode_tcp(ip.payload)
        except PcapError:
            errors.inc()
            continue
        yield packet.timestamp, ip.src, ip.dst, segment


class StreamPairer:
    """Incremental request/response pairing for one reassembled stream.

    Each :meth:`poll` pulls the bytes newly contiguous on either
    direction through the resumable HTTP parsers (each byte is examined
    once), pairs every freshly completed response with the oldest
    unanswered request, and compacts the direction buffers behind the
    parse cursors.  Requests the server has not answered yet stay queued
    until their response lands or a ``final`` poll (connection close /
    end of capture) flushes them unanswered — the hold-back bookkeeping
    the old decoder recomputed by re-parsing is now just this queue.

    The batch path (:func:`_pair_stream`) is a single ``poll(final=True)``
    over a fully reassembled stream, so offline and live decoding share
    one implementation and cannot disagree.

    A :class:`HttpParseError` escaping :meth:`poll` means the stream is
    not HTTP (TLS, P2P, corruption); callers should stop polling it.
    """

    def __init__(self, stream: TcpStream, book: AddressBook | None = None):
        self.stream = stream
        self.book = book
        self._methods: list[str] = []
        self._requests = RequestParser()
        self._responses = ResponseParser(request_methods=self._methods,
                                         await_methods=True)
        self._unanswered: deque[HttpRequest] = deque()
        metrics = get_registry()
        self._c_feeds = metrics.counter("http.parser_feeds")
        self._c_requests = metrics.counter("http.requests")
        self._c_responses = metrics.counter("http.responses")
        self._c_transactions = metrics.counter("http.transactions")
        self._c_orphans = metrics.counter("http.orphan_responses")
        self._c_unanswered = metrics.counter("http.unanswered_flushed")

    def poll(self, final: bool = False) -> list[HttpTransaction]:
        """Advance parsing; returns transactions completed since last poll."""
        stream = self.stream
        if stream.client is None:
            return []
        out: list[HttpTransaction] = []
        client_state = stream.directions.get(stream.client)
        server_state = None
        for src, state in stream.directions.items():
            if src != stream.client:
                server_state = state
        if client_state is not None:
            chunk = client_state.take()
            if chunk:
                self._c_feeds.inc()
            raw_requests = self._requests.feed(chunk)
            if final:
                raw_requests.extend(self._requests.finish())
            for raw_req in raw_requests:
                self._c_requests.inc()
                self._methods.append(raw_req.method)
                self._unanswered.append(
                    self._build_request(raw_req, client_state)
                )
            client_state.compact(
                keep_marks_from=self._requests.pending_offset
            )
        if server_state is not None:
            chunk = server_state.take()
            if chunk:
                self._c_feeds.inc()
            raw_responses = self._responses.feed(chunk)
            if final:
                raw_responses.extend(self._responses.finish(closed=True))
            for raw_res in raw_responses:
                self._c_responses.inc()
                if not self._unanswered:
                    # Responses outrunning requests are dropped: a
                    # pairing mismatch worth watching on a live tap.
                    # Every orphan in the batch is drained and counted
                    # individually — bailing out on the first would
                    # silently discard (and undercount) the rest.
                    self._c_orphans.inc()
                    continue
                request = self._unanswered.popleft()
                response = self._build_response(raw_res, server_state, request)
                out.append(HttpTransaction(request=request, response=response))
            server_state.compact(
                keep_marks_from=self._responses.pending_offset
            )
        if final:
            while self._unanswered:
                self._c_unanswered.inc()
                out.append(
                    HttpTransaction(request=self._unanswered.popleft(),
                                    response=None)
                )
        if out:
            self._c_transactions.inc(len(out))
        return out

    def _build_request(self, raw_req: RawHttpRequest,
                       client_state: StreamDirection) -> HttpRequest:
        stream, book = self.stream, self.book
        client_ip = stream.client[0]
        host_header = raw_req.headers.get("Host")
        server_ip = stream.server[0] if stream.server else ""
        server_name = host_header or (book.host_of(server_ip) if book else server_ip)
        client_name = book.host_of(client_ip) if book else client_ip
        return HttpRequest(
            method=HttpMethod.of(raw_req.method),
            uri=raw_req.uri,
            host=server_name.split(":", 1)[0],
            client=client_name,
            timestamp=client_state.timestamp_at(raw_req.offset),
            headers=raw_req.headers,
            body=raw_req.body,
            version=raw_req.version,
        )

    def _build_response(self, raw_res: RawHttpResponse,
                        server_state: StreamDirection,
                        request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            status=raw_res.status,
            timestamp=max(server_state.timestamp_at(raw_res.offset),
                          request.timestamp),
            headers=raw_res.headers,
            body=raw_res.body,
            version=raw_res.version,
        )


def _pair_stream(
    stream: TcpStream,
    book: AddressBook | None,
) -> list[HttpTransaction]:
    """Parse one reassembled stream and pair requests with responses."""
    try:
        return StreamPairer(stream, book).poll(final=True)
    except HttpParseError:
        # Not an HTTP conversation (TLS, P2P, corruption): real captures
        # carry plenty of those; skip the stream rather than abort the
        # whole capture.
        return []


def transactions_from_packets(
    packets: list[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    book: AddressBook | None = None,
    max_buffered: int | None = None,
) -> list[HttpTransaction]:
    """Full pipeline: pcap records -> ordered HTTP transactions.

    ``max_buffered`` caps each direction's out-of-order buffer (the
    same knob the live tap's overload policy sets), so batch and live
    decoding of a hostile capture degrade identically.
    """
    metrics = get_registry()
    if metrics.enabled:
        metrics.counter("decode.packets").inc(len(packets))
        metrics.counter("decode.bytes").inc(
            sum(len(packet.data) for packet in packets)
        )
    reassembler = (
        TcpReassembler() if max_buffered is None
        else TcpReassembler(max_buffered=max_buffered)
    )
    for ts, src, dst, segment in _segments_of(packets, linktype):
        reassembler.feed(ts, src, dst, segment)
    transactions: list[HttpTransaction] = []
    for stream in reassembler.streams():
        transactions.extend(_pair_stream(stream, book))
    transactions.sort(key=lambda t: t.timestamp)
    return transactions


def trace_from_packets(
    packets: list[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    book: AddressBook | None = None,
) -> Trace:
    """Convenience: decode packets directly into an unlabelled Trace."""
    return Trace(transactions=transactions_from_packets(packets, linktype, book))


class _ConnectionEncoder:
    """Emits a well-formed TCP conversation for one client/server pair."""

    def __init__(self, client_ip: str, server_ip: str, client_port: int):
        self.client_ip = client_ip
        self.server_ip = server_ip
        self.client_port = client_port
        self.server_port = 80
        seed = zlib.crc32(f"{client_ip}:{client_port}".encode()) & 0xFFFFFF
        self.client_seq = 1000 + seed
        self.server_seq = 2000 + seed
        self.opened = False

    def _frame(
        self, ts: float, from_client: bool, flags: int, payload: bytes = b""
    ) -> PcapPacket:
        if from_client:
            data = encode_tcp_in_ipv4_ethernet(
                self.client_ip, self.server_ip, self.client_port,
                self.server_port, self.client_seq, self.server_seq,
                flags, payload,
            )
            self.client_seq += len(payload) + (1 if flags & (SYN | FIN) else 0)
        else:
            data = encode_tcp_in_ipv4_ethernet(
                self.server_ip, self.client_ip, self.server_port,
                self.client_port, self.server_seq, self.client_seq,
                flags, payload,
            )
            self.server_seq += len(payload) + (1 if flags & (SYN | FIN) else 0)
        return PcapPacket(timestamp=ts, data=data)

    def open(self, ts: float) -> list[PcapPacket]:
        """Three-way handshake."""
        self.opened = True
        return [
            self._frame(ts, True, SYN),
            self._frame(ts + 1e-4, False, SYN | ACK),
            self._frame(ts + 2e-4, True, ACK),
        ]

    def send(self, ts: float, from_client: bool, payload: bytes) -> list[PcapPacket]:
        """One data push, split into <=1400-byte segments."""
        frames = []
        for offset in range(0, len(payload), 1400):
            chunk = payload[offset : offset + 1400]
            flags = PSH | ACK if offset + 1400 >= len(payload) else ACK
            frames.append(self._frame(ts + offset * 1e-9, from_client, flags, chunk))
        return frames

    def close(self, ts: float) -> list[PcapPacket]:
        """Graceful FIN/ACK teardown."""
        return [
            self._frame(ts, True, FIN | ACK),
            self._frame(ts + 1e-4, False, FIN | ACK),
            self._frame(ts + 2e-4, True, ACK),
        ]


def packets_from_trace(
    trace: Trace,
    book: AddressBook | None = None,
) -> tuple[list[PcapPacket], AddressBook]:
    """Materialize a synthetic trace as Ethernet/IPv4/TCP packets.

    One TCP connection is opened per (client, server) pair and all of the
    pair's transactions ride it in order (persistent connection).  Returns
    the packets sorted by timestamp together with the address book used,
    so callers can map IPs back to host names after a round-trip.
    """
    book = book or AddressBook()
    encoders: dict[tuple[str, str], _ConnectionEncoder] = {}
    packets: list[PcapPacket] = []
    next_port = 40000
    last_ts: dict[tuple[str, str], float] = {}
    for txn in trace.transactions:
        pair = (txn.client, txn.server)
        encoder = encoders.get(pair)
        if encoder is None:
            encoder = _ConnectionEncoder(
                book.ip_of(txn.client), book.ip_of(txn.server), next_port
            )
            next_port += 1
            encoders[pair] = encoder
            packets.extend(encoder.open(txn.timestamp - 5e-4))
        req = txn.request
        headers = req.headers.copy()
        headers.set("Host", txn.server)
        raw_req = RawHttpRequest(
            method=req.method.value if req.method != HttpMethod.OTHER else "TRACE",
            uri=req.uri,
            version=req.version,
            headers=headers,
            body=req.body,
        )
        packets.extend(encoder.send(req.timestamp, True, serialize_request(raw_req)))
        if txn.response is not None:
            res = txn.response
            body = res.body or b"\x00" * min(res.body_size, 2048)
            raw_res = RawHttpResponse(
                version=res.version,
                status=res.status,
                reason="",
                headers=res.headers.copy(),
                body=body,
            )
            packets.extend(
                encoder.send(res.timestamp, False, serialize_response(raw_res))
            )
            last_ts[pair] = res.timestamp
        else:
            last_ts[pair] = req.timestamp
    for pair, encoder in encoders.items():
        packets.extend(encoder.close(last_ts[pair] + 1e-3))
    packets.sort(key=lambda p: p.timestamp)
    return packets, book
