"""Ethernet / IPv4 / TCP frame codecs (pure Python).

Minimal but correct encode/decode for the protocol layers the DynaMiner
pipeline traverses between pcap records and HTTP bytes.  Checksums are
computed on encode and *verified optionally* on decode (real captures
frequently contain offloaded-checksum zeros).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.exceptions import PcapError

__all__ = [
    "ETHERTYPE_IPV4",
    "IPPROTO_TCP",
    "EthernetFrame",
    "IpFragmentReassembler",
    "Ipv4Packet",
    "TcpSegment",
    "ipv4_checksum",
    "decode_ethernet",
    "decode_ipv4",
    "decode_tcp",
    "encode_tcp_in_ipv4_ethernet",
]

ETHERTYPE_IPV4 = 0x0800
IPPROTO_TCP = 6

_ETH_HEADER = struct.Struct("!6s6sH")
_IP_HEADER = struct.Struct("!BBHHHBBH4s4s")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")

# TCP flag bits.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10


def ipv4_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class EthernetFrame:
    """Decoded Ethernet II frame."""

    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes


@dataclass(frozen=True)
class Ipv4Packet:
    """Decoded IPv4 packet (options stripped).

    Fragments are surfaced with ``more_fragments`` / ``frag_offset`` set
    and must go through :class:`IpFragmentReassembler` before the
    payload is a complete transport segment.
    """

    src: str
    dst: str
    protocol: int
    payload: bytes
    ttl: int = 64
    ident: int = 0
    more_fragments: bool = False
    frag_offset: int = 0  # in bytes

    @property
    def is_fragment(self) -> bool:
        """True when this packet is one piece of a fragmented datagram."""
        return self.more_fragments or self.frag_offset > 0


@dataclass(frozen=True)
class TcpSegment:
    """Decoded TCP segment."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes
    window: int = 65535

    @property
    def syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & ACK)


def _ip_str(raw: bytes) -> str:
    return ".".join(str(octet) for octet in raw)


def _ip_bytes(dotted: str) -> bytes:
    parts = dotted.split(".")
    if len(parts) != 4:
        raise PcapError(f"bad IPv4 address: {dotted!r}")
    try:
        values = [int(part) for part in parts]
    except ValueError as exc:
        raise PcapError(f"bad IPv4 address: {dotted!r}") from exc
    if any(value < 0 or value > 255 for value in values):
        raise PcapError(f"bad IPv4 address: {dotted!r}")
    return bytes(values)


def decode_ethernet(data: bytes) -> EthernetFrame:
    """Decode an Ethernet II frame."""
    if len(data) < _ETH_HEADER.size:
        raise PcapError("truncated Ethernet frame")
    dst, src, ethertype = _ETH_HEADER.unpack_from(data)
    return EthernetFrame(dst, src, ethertype, data[_ETH_HEADER.size :])


def decode_ipv4(data: bytes) -> Ipv4Packet:
    """Decode an IPv4 packet, honouring IHL and total length."""
    if len(data) < _IP_HEADER.size:
        raise PcapError("truncated IPv4 header")
    fields = _IP_HEADER.unpack_from(data)
    version_ihl = fields[0]
    version = version_ihl >> 4
    if version != 4:
        raise PcapError(f"not IPv4 (version={version})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < 20 or len(data) < ihl:
        raise PcapError("bad IPv4 IHL")
    total_len = fields[2]
    if total_len < ihl or total_len > len(data):
        total_len = len(data)
    flags_frag = fields[4]
    return Ipv4Packet(
        src=_ip_str(fields[8]),
        dst=_ip_str(fields[9]),
        protocol=fields[6],
        payload=data[ihl:total_len],
        ttl=fields[5],
        ident=fields[3],
        more_fragments=bool(flags_frag & 0x2000),
        frag_offset=(flags_frag & 0x1FFF) * 8,
    )


def decode_tcp(data: bytes) -> TcpSegment:
    """Decode a TCP segment, honouring the data offset."""
    if len(data) < _TCP_HEADER.size:
        raise PcapError("truncated TCP header")
    fields = _TCP_HEADER.unpack_from(data)
    offset = (fields[4] >> 4) * 4
    if offset < 20 or len(data) < offset:
        raise PcapError("bad TCP data offset")
    return TcpSegment(
        src_port=fields[0],
        dst_port=fields[1],
        seq=fields[2],
        ack=fields[3],
        flags=fields[5],
        payload=data[offset:],
        window=fields[6],
    )


def encode_tcp_in_ipv4_ethernet(
    src_ip: str,
    dst_ip: str,
    src_port: int,
    dst_port: int,
    seq: int,
    ack: int,
    flags: int,
    payload: bytes = b"",
    ident: int = 0,
) -> bytes:
    """Build a full Ethernet/IPv4/TCP frame around ``payload``.

    Used by the synthetic pcap serializer; checksums are valid so the
    output opens cleanly in standard tooling.
    """
    tcp_no_sum = _TCP_HEADER.pack(
        src_port, dst_port, seq & 0xFFFFFFFF, ack & 0xFFFFFFFF,
        (5 << 4), flags, 65535, 0, 0,
    )
    pseudo = (
        _ip_bytes(src_ip)
        + _ip_bytes(dst_ip)
        + struct.pack("!BBH", 0, IPPROTO_TCP, len(tcp_no_sum) + len(payload))
    )
    tcp_sum = ipv4_checksum(pseudo + tcp_no_sum + payload)
    tcp = (
        tcp_no_sum[:16] + struct.pack("!H", tcp_sum) + tcp_no_sum[18:] + payload
    )
    total_len = 20 + len(tcp)
    ip_no_sum = _IP_HEADER.pack(
        (4 << 4) | 5, 0, total_len, ident & 0xFFFF, 0, 64, IPPROTO_TCP, 0,
        _ip_bytes(src_ip), _ip_bytes(dst_ip),
    )
    ip_sum = ipv4_checksum(ip_no_sum)
    ip = ip_no_sum[:10] + struct.pack("!H", ip_sum) + ip_no_sum[12:]
    eth = _ETH_HEADER.pack(
        b"\x02\x00\x00\x00\x00\x02", b"\x02\x00\x00\x00\x00\x01", ETHERTYPE_IPV4
    )
    return eth + ip + tcp


class IpFragmentReassembler:
    """Reassembles fragmented IPv4 datagrams.

    Fragments are keyed by ``(src, dst, protocol, ident)``; a datagram
    completes when the no-more-fragments piece has arrived and the byte
    range [0, end) is fully covered.  Incomplete datagrams are dropped
    when more than ``max_pending`` are in flight (oldest first) — the
    defence against fragment-flood memory exhaustion.
    """

    def __init__(self, max_pending: int = 256):
        self._pending: dict[tuple, dict[int, bytes]] = {}
        self._final_end: dict[tuple, int] = {}
        self._order: list[tuple] = []
        self.max_pending = max_pending

    def feed(self, packet: Ipv4Packet) -> Ipv4Packet | None:
        """Ingest one packet; returns a completed datagram or ``None``.

        Non-fragmented packets pass straight through.
        """
        if not packet.is_fragment:
            return packet
        key = (packet.src, packet.dst, packet.protocol, packet.ident)
        parts = self._pending.get(key)
        if parts is None:
            parts = {}
            self._pending[key] = parts
            self._order.append(key)
            if len(self._order) > self.max_pending:
                oldest = self._order.pop(0)
                self._pending.pop(oldest, None)
                self._final_end.pop(oldest, None)
        parts[packet.frag_offset] = packet.payload
        if not packet.more_fragments:
            self._final_end[key] = packet.frag_offset + len(packet.payload)
        end = self._final_end.get(key)
        if end is None:
            return None
        # Check contiguous coverage of [0, end).
        covered = 0
        for offset in sorted(parts):
            if offset > covered:
                return None  # hole
            covered = max(covered, offset + len(parts[offset]))
            if covered >= end:
                break
        if covered < end:
            return None
        payload = bytearray(end)
        for offset, chunk in parts.items():
            payload[offset:offset + len(chunk)] = chunk[: end - offset]
        self._pending.pop(key, None)
        self._final_end.pop(key, None)
        if key in self._order:
            self._order.remove(key)
        return Ipv4Packet(
            src=packet.src, dst=packet.dst, protocol=packet.protocol,
            payload=bytes(payload), ttl=packet.ttl, ident=packet.ident,
        )
