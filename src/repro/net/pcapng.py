"""pcapng (next-generation capture) reader.

Modern tooling (Wireshark, tcpdump on many distros) writes pcapng by
default, so a deployable DynaMiner must ingest it.  Implements the
block structures of the pcapng specification that carry packets:

* Section Header Block (0x0A0D0D0A) — byte order + section boundaries;
* Interface Description Block (0x00000001) — linktype + timestamp
  resolution (``if_tsresol`` option honoured);
* Enhanced Packet Block (0x00000006) — the packets;
* Simple Packet Block (0x00000003) — packets without timestamps;
* every other block type is skipped by length, per the spec.

Only reading is implemented: we *write* classic pcap (universally
readable), but must *read* whatever a capture box produces.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from repro.exceptions import PcapError
from repro.net.pcap import PcapPacket

__all__ = ["PcapngReader", "read_pcapng", "read_capture"]

_SHB_TYPE = 0x0A0D0D0A
_IDB_TYPE = 0x00000001
_SPB_TYPE = 0x00000003
_EPB_TYPE = 0x00000006
_BYTE_ORDER_MAGIC = 0x1A2B3C4D


@dataclass
class _Interface:
    linktype: int
    snaplen: int
    ticks_per_second: float


class PcapngReader:
    """Iterates :class:`PcapPacket` records out of a pcapng stream.

    ``linktype`` reflects the first interface seen (captures mixing
    link types are rare; all packets are surfaced regardless).
    """

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self._endian = "<"
        self._interfaces: list[_Interface] = []
        self.linktype: int | None = None
        self._read_section_header()

    # -- block machinery ----------------------------------------------------

    def _read_exact(self, count: int) -> bytes:
        data = self._stream.read(count)
        if len(data) < count:
            raise PcapError("truncated pcapng stream")
        return data

    def _read_section_header(self) -> None:
        block_type = struct.unpack("<I", self._read_exact(4))[0]
        if block_type != _SHB_TYPE:
            raise PcapError(f"not a pcapng stream (first block 0x{block_type:08x})")
        length_raw = self._read_exact(4)
        magic_raw = self._read_exact(4)
        if struct.unpack("<I", magic_raw)[0] == _BYTE_ORDER_MAGIC:
            self._endian = "<"
        elif struct.unpack(">I", magic_raw)[0] == _BYTE_ORDER_MAGIC:
            self._endian = ">"
        else:
            raise PcapError("bad pcapng byte-order magic")
        block_length = struct.unpack(self._endian + "I", length_raw)[0]
        # Remaining SHB bytes: version (4) + section length (8) + options
        # + trailing length (4); we already consumed 12 of block_length.
        self._read_exact(block_length - 12 - 4)
        self._read_exact(4)  # trailing block length

    def _parse_idb(self, body: bytes) -> None:
        if len(body) < 8:
            raise PcapError("truncated interface description block")
        linktype, _, snaplen = struct.unpack_from(
            self._endian + "HHI", body
        )
        ticks = 1e6  # default: microseconds
        offset = 8
        while offset + 4 <= len(body):
            code, length = struct.unpack_from(self._endian + "HH", body,
                                              offset)
            offset += 4
            value = body[offset:offset + length]
            offset += (length + 3) & ~3  # options pad to 32 bits
            if code == 0:  # opt_endofopt
                break
            if code == 9 and length >= 1:  # if_tsresol
                resol = value[0]
                if resol & 0x80:
                    ticks = float(2 ** (resol & 0x7F))
                else:
                    ticks = float(10 ** resol)
        interface = _Interface(linktype=linktype, snaplen=snaplen,
                               ticks_per_second=ticks)
        self._interfaces.append(interface)
        if self.linktype is None:
            self.linktype = linktype

    def _packet_from_epb(self, body: bytes) -> PcapPacket:
        if len(body) < 20:
            raise PcapError("truncated enhanced packet block")
        iface_id, ts_high, ts_low, captured, original = struct.unpack_from(
            self._endian + "IIIII", body
        )
        if iface_id >= len(self._interfaces):
            raise PcapError(f"EPB references unknown interface {iface_id}")
        interface = self._interfaces[iface_id]
        ticks = (ts_high << 32) | ts_low
        data = body[20:20 + captured]
        if len(data) < captured:
            raise PcapError("truncated enhanced packet data")
        return PcapPacket(
            timestamp=ticks / interface.ticks_per_second,
            data=data,
            orig_len=original,
        )

    def __iter__(self) -> Iterator[PcapPacket]:
        while True:
            header = self._stream.read(8)
            if not header:
                return
            if len(header) < 8:
                raise PcapError("truncated pcapng block header")
            block_type, block_length = struct.unpack(
                self._endian + "II", header
            )
            if block_length < 12 or block_length % 4:
                raise PcapError(f"bad pcapng block length {block_length}")
            body = self._read_exact(block_length - 12)
            trailer = struct.unpack(self._endian + "I",
                                    self._read_exact(4))[0]
            if trailer != block_length:
                raise PcapError("pcapng block length mismatch")
            if block_type == _SHB_TYPE:
                # New section: rewind conceptually — re-parse its header
                # fields from the body (byte order may change mid-file;
                # we keep it simple and require a consistent one).
                self._interfaces.clear()
                self.linktype = None
            elif block_type == _IDB_TYPE:
                self._parse_idb(body)
            elif block_type == _EPB_TYPE:
                yield self._packet_from_epb(body)
            elif block_type == _SPB_TYPE:
                if not self._interfaces:
                    raise PcapError("SPB before any interface description")
                original = struct.unpack_from(self._endian + "I", body)[0]
                snaplen = self._interfaces[0].snaplen or original
                captured = min(original, snaplen)
                yield PcapPacket(timestamp=0.0,
                                 data=body[4:4 + captured],
                                 orig_len=original)
            # all other block types: skipped


def read_pcapng(path: str) -> tuple[int, list[PcapPacket]]:
    """Read a pcapng file; returns ``(linktype, packets)``."""
    with open(path, "rb") as handle:
        reader = PcapngReader(handle)
        packets = list(reader)
        if reader.linktype is None:
            raise PcapError("pcapng capture has no interface description")
        return reader.linktype, packets


def read_capture(path: str) -> tuple[int, list[PcapPacket]]:
    """Read either classic pcap or pcapng, sniffing the magic."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic == b"\x0a\x0d\x0d\x0a":
        return read_pcapng(path)
    from repro.net.pcap import read_pcap

    return read_pcap(path)
