"""TCP stream reassembly.

Turns a time-ordered sequence of decoded TCP segments into per-direction
contiguous byte streams, keyed by connection 4-tuple.  Handles SYN
handshakes, out-of-order arrival, retransmission/overlap, and FIN/RST
teardown.  This sits between the packet codecs and the HTTP parser,
mirroring the deep-packet-inspection step the paper performs on its
PCAP corpus.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.exceptions import TcpReassemblyError
from repro.net.packets import TcpSegment
from repro.obs import get_registry

__all__ = [
    "DEFAULT_MAX_BUFFERED",
    "FlowKey",
    "StreamDirection",
    "TcpStream",
    "TcpReassembler",
]

_SEQ_MOD = 1 << 32
#: Refuse to buffer more than this many out-of-order bytes per direction.
DEFAULT_MAX_BUFFERED = 32 * 1024 * 1024
_MAX_BUFFERED = DEFAULT_MAX_BUFFERED


@dataclass(frozen=True, order=True)
class FlowKey:
    """Canonical (sorted) connection identifier.

    A ``FlowKey`` identifies the *connection*, not a direction: both
    directions of one TCP connection map to the same key.
    """

    ip_a: str
    port_a: int
    ip_b: str
    port_b: int

    @classmethod
    def of(cls, src_ip: str, src_port: int, dst_ip: str, dst_port: int) -> "FlowKey":
        """Build the canonical key for a segment's endpoints."""
        if (src_ip, src_port) <= (dst_ip, dst_port):
            return cls(src_ip, src_port, dst_ip, dst_port)
        return cls(dst_ip, dst_port, src_ip, src_port)


@dataclass
class StreamDirection:
    """Reassembly state for one direction of a connection.

    Besides the append side (``feed``), the direction exposes a
    *consumable read view* for incremental consumers: :meth:`take`
    returns the contiguous bytes not yet handed out and advances a parse
    cursor, and :meth:`compact` discards the consumed prefix from the
    buffer so a long-lived connection holds O(unparsed tail) memory
    instead of its whole history.  Offsets (``marks``, ``timestamp_at``,
    the cursor) are *absolute* stream positions and stay valid across
    compaction.  Batch consumers that never ``take`` see the full stream
    in ``data``, exactly as before.
    """

    src: tuple[str, int]
    dst: tuple[str, int]
    data: bytearray = field(default_factory=bytearray)
    next_seq: int | None = None
    #: Out-of-order chunks waiting on a hole: seq -> (payload, arrival
    #: timestamp).  The timestamp rides along so bytes drained later
    #: keep their *true* arrival time in ``marks``.
    pending: dict[int, tuple[bytes, float]] = field(default_factory=dict)
    #: Out-of-order buffer cap for this direction; exceeding it raises
    #: :class:`TcpReassemblyError` from :meth:`feed`.
    max_buffered: int = DEFAULT_MAX_BUFFERED
    #: Reassembly abandoned (buffer overflow): the contiguous prefix
    #: stands, further payload on this direction is ignored.
    broken: bool = False
    fin_seen: bool = False
    first_ts: float | None = None
    last_ts: float | None = None
    #: (absolute stream byte offset, arrival timestamp) marks for
    #: contiguous data, letting the HTTP layer recover per-message
    #: timestamps.
    marks: list[tuple[int, float]] = field(default_factory=list)
    #: Absolute stream offset of ``data[0]`` (> 0 once compacted).
    base: int = 0
    #: Absolute stream offset of the parse cursor: bytes before it have
    #: been handed to a consumer via :meth:`take`.
    consumed: int = 0

    def timestamp_at(self, offset: int) -> float:
        """Arrival time of the segment containing stream ``offset``."""
        index = bisect.bisect_right(self.marks, (offset, float("inf")))
        if index:
            return self.marks[index - 1][1]
        # Compare against None: a capture legitimately starting at the
        # epoch has first_ts == 0.0, which is not "missing".
        return self.first_ts if self.first_ts is not None else 0.0

    @property
    def end_offset(self) -> int:
        """Absolute stream offset one past the last contiguous byte."""
        return self.base + len(self.data)

    def take(self) -> bytes:
        """Return contiguous bytes past the cursor and advance it."""
        start = self.consumed - self.base
        if start >= len(self.data):
            return b""
        chunk = bytes(self.data[start:])
        self.consumed = self.end_offset
        return chunk

    def compact(self, keep_marks_from: int | None = None) -> None:
        """Drop already-consumed bytes (and stale marks) from the buffer.

        ``keep_marks_from`` preserves timestamp marks at or above that
        absolute offset (plus the one straddling it) so a consumer can
        still resolve ``timestamp_at`` for a partially-delivered message
        whose start it has already buffered elsewhere.
        """
        cut = self.consumed - self.base
        if cut > 0:
            del self.data[:cut]
            self.base = self.consumed
        floor = self.consumed
        if keep_marks_from is not None:
            floor = min(floor, keep_marks_from)
        index = bisect.bisect_right(self.marks, (floor, float("inf"))) - 1
        if index > 0:
            del self.marks[:index]

    def _drain_pending(self) -> None:
        """Move buffered chunks reached by ``next_seq`` into ``data``.

        Besides exact-offset matches, chunks *straddling* ``next_seq``
        (their tail extends past it) are trimmed and drained, and chunks
        entirely behind it (fully retransmitted data) are discarded —
        without this, an overlapping out-of-order chunk would lose its
        fresh tail bytes and leak in ``pending`` forever.  Drained bytes
        are marked with the chunk's original arrival timestamp.
        """
        progressed = True
        while progressed and self.pending:
            progressed = False
            entry = self.pending.pop(self.next_seq, None)
            if entry is not None:
                chunk, arrival = entry
                self.marks.append((self.end_offset, arrival))
                self.data.extend(chunk)
                self.next_seq = (self.next_seq + len(chunk)) % _SEQ_MOD
                progressed = True
                continue
            for seq in list(self.pending):
                behind = (self.next_seq - seq) % _SEQ_MOD
                if behind >= _SEQ_MOD // 2:
                    continue  # chunk is ahead: still waiting on a hole
                chunk, arrival = self.pending.pop(seq)
                if behind >= len(chunk):
                    continue  # entirely retransmitted data: discard
                fresh = chunk[behind:]
                self.marks.append((self.end_offset, arrival))
                self.data.extend(fresh)
                self.next_seq = (self.next_seq + len(fresh)) % _SEQ_MOD
                progressed = True
                break

    def feed(self, seq: int, payload: bytes, timestamp: float) -> None:
        """Insert one segment's payload at sequence ``seq``."""
        if self.first_ts is None:
            self.first_ts = timestamp
        self.last_ts = timestamp
        if not payload or self.broken:
            return
        if self.next_seq is None:
            # No SYN observed: adopt the first payload's seq as origin.
            self.next_seq = seq
        # Relative offset modulo 2^32, interpreted as a signed distance.
        delta = (seq - self.next_seq) % _SEQ_MOD
        if delta >= _SEQ_MOD // 2:
            # Entirely retransmitted data (or overlapping prefix).
            behind = _SEQ_MOD - delta
            if behind >= len(payload):
                return
            payload = payload[behind:]
            delta = 0
        if delta == 0:
            self.marks.append((self.end_offset, timestamp))
            self.data.extend(payload)
            self.next_seq = (self.next_seq + len(payload)) % _SEQ_MOD
            self._drain_pending()
        else:
            buffered = sum(
                len(chunk) for chunk, _ in self.pending.values()
            )
            if buffered + len(payload) > self.max_buffered:
                raise TcpReassemblyError(
                    f"out-of-order buffer overflow on {self.src}->{self.dst}"
                )
            existing = self.pending.get(seq)
            if existing is None or len(existing[0]) < len(payload):
                self.pending[seq] = (payload, timestamp)

    @property
    def has_gap(self) -> bool:
        """True when out-of-order data is still waiting on a hole."""
        return bool(self.pending)


@dataclass
class TcpStream:
    """Both directions of one reassembled TCP connection."""

    key: FlowKey
    client: tuple[str, int] | None = None
    directions: dict[tuple[str, int], StreamDirection] = field(default_factory=dict)
    closed: bool = False

    def direction(
        self,
        src: tuple[str, int],
        dst: tuple[str, int],
        max_buffered: int = DEFAULT_MAX_BUFFERED,
    ) -> StreamDirection:
        """Get or create the reassembly state for ``src -> dst``."""
        state = self.directions.get(src)
        if state is None:
            state = StreamDirection(src=src, dst=dst,
                                    max_buffered=max_buffered)
            self.directions[src] = state
        return state

    @property
    def client_data(self) -> bytes:
        """Retained bytes sent by the connection initiator (requests).

        This is the full stream unless an incremental consumer has
        compacted the direction via its read view.
        """
        if self.client is None:
            return b""
        state = self.directions.get(self.client)
        return bytes(state.data) if state else b""

    @property
    def server_data(self) -> bytes:
        """Bytes sent by the accepting side (responses)."""
        if self.client is None:
            return b""
        for src, state in self.directions.items():
            if src != self.client:
                return bytes(state.data)
        return b""

    @property
    def server(self) -> tuple[str, int] | None:
        """The accepting endpoint, once known."""
        if self.client is None:
            return None
        for src in self.directions:
            if src != self.client:
                return src
        return (self.key.ip_b, self.key.port_b) if self.client == (
            self.key.ip_a,
            self.key.port_a,
        ) else (self.key.ip_a, self.key.port_a)

    @property
    def start_time(self) -> float:
        """Earliest timestamp observed on either direction."""
        stamps = [
            state.first_ts
            for state in self.directions.values()
            if state.first_ts is not None
        ]
        return min(stamps) if stamps else 0.0


class TcpReassembler:
    """Feeds decoded segments and yields completed / in-progress streams.

    Usage::

        reassembler = TcpReassembler()
        for ts, src_ip, dst_ip, segment in segments:
            reassembler.feed(ts, src_ip, dst_ip, segment)
        for stream in reassembler.streams():
            ...
    """

    def __init__(self, max_buffered: int = DEFAULT_MAX_BUFFERED) -> None:
        self._streams: dict[FlowKey, TcpStream] = {}
        #: Finished streams displaced by a 4-tuple reuse (a fresh SYN on
        #: a closed connection).  Batch consumers still see them via
        #: :meth:`streams`; the live tap evicts before reuse can happen,
        #: so this only grows in batch decoding (bounded by the capture).
        self._retired: list[TcpStream] = []
        #: Per-direction out-of-order buffer cap (overload policy knob).
        self.max_buffered = max_buffered
        metrics = get_registry()
        self._c_streams = metrics.counter("reassembly.streams_opened")
        self._c_segments = metrics.counter("reassembly.segments")
        self._c_payload = metrics.counter("reassembly.payload_bytes")
        self._c_overflows = metrics.counter("reassembly.overflows")

    def feed(
        self,
        timestamp: float,
        src_ip: str,
        dst_ip: str,
        segment: TcpSegment,
    ) -> TcpStream:
        """Process one segment; returns the (possibly new) owning stream."""
        self._c_segments.inc()
        if segment.payload:
            self._c_payload.inc(len(segment.payload))
        key = FlowKey.of(src_ip, segment.src_port, dst_ip, segment.dst_port)
        stream = self._streams.get(key)
        if stream is not None and stream.closed and segment.syn \
                and not segment.is_ack:
            # 4-tuple reuse: a fresh SYN on a finished connection opens a
            # *new* conversation.  Retire the closed stream (batch
            # consumers still drain it via streams()) instead of letting
            # the new handshake desynchronize its state.
            self._retired.append(stream)
            del self._streams[key]
            stream = None
        if stream is None:
            stream = TcpStream(key=key)
            self._streams[key] = stream
            self._c_streams.inc()
        src = (src_ip, segment.src_port)
        dst = (dst_ip, segment.dst_port)
        state = stream.direction(src, dst, max_buffered=self.max_buffered)
        if segment.syn:
            # Adopt the sequence origin only while the direction is
            # fresh: a retransmitted or forged SYN on an *established*
            # stream must not reset next_seq (it would desynchronize
            # reassembly and discard genuine in-flight bytes as
            # retransmissions), and must not flip the client
            # designation mid-connection.
            if state.next_seq is None:
                state.next_seq = (segment.seq + 1) % _SEQ_MOD
            if stream.client is None:
                stream.client = dst if segment.is_ack else src
        else:
            if stream.client is None and segment.payload:
                # Mid-capture stream: guess the initiator as the side whose
                # destination port looks like a service port.
                if segment.dst_port in (80, 443, 8080, 3128) or (
                    segment.dst_port < 1024 <= segment.src_port
                ):
                    stream.client = src
                else:
                    stream.client = dst
            try:
                state.feed(segment.seq, segment.payload, timestamp)
            except TcpReassemblyError:
                # One hostile connection must not kill the whole tap:
                # abandon reassembly for this direction (its contiguous
                # prefix stands), free the out-of-order buffer, and make
                # the degradation observable instead of fatal.
                state.broken = True
                state.pending.clear()
                self._c_overflows.inc()
        if segment.fin:
            state.fin_seen = True
        if segment.rst:
            stream.closed = True
        if all(d.fin_seen for d in stream.directions.values()) and len(
            stream.directions
        ) == 2:
            stream.closed = True
        return stream

    def streams(self) -> list[TcpStream]:
        """All streams seen so far (retired included), by start time."""
        return sorted(self._retired + list(self._streams.values()),
                      key=lambda s: s.start_time)

    def evict(self, key: FlowKey) -> TcpStream | None:
        """Remove (and return) one connection's state entirely.

        The live tap's connection-lifecycle management calls this once a
        stream is closed, fully drained, and past its linger window —
        without it, ``_streams`` grows by one dead entry per connection
        for the life of the process.
        """
        return self._streams.pop(key, None)

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._streams
