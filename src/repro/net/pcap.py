"""Classic libpcap file format reader and writer (pure Python).

Implements the 24-byte global header + per-record headers of the classic
``.pcap`` format (magic ``0xa1b2c3d4``), including byte-order and
nanosecond-magic variants.  Only what DynaMiner needs: linktype EN10MB
(Ethernet) and RAW IP captures.

The paper's pipeline starts from PCAP traces of HTTP conversations; this
module is the entry point of our equivalent pipeline:
``pcap → ethernet/ip/tcp decode → stream reassembly → HTTP transactions``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

from repro.exceptions import PcapError
from repro.obs import get_registry

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PcapPacket",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]

#: Link-layer header types (subset) per the tcpdump LINKTYPE registry.
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW_IP = 101

_MAGIC_USEC = 0xA1B2C3D4
_MAGIC_NSEC = 0xA1B23C4D

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapPacket:
    """One captured packet: a timestamp and its link-layer bytes.

    ``timestamp`` is seconds since the epoch (float, sub-second resolution
    preserved from the capture's tick unit).  ``orig_len`` is the original
    on-the-wire length; ``data`` may be truncated to the capture snaplen.
    """

    timestamp: float
    data: bytes
    orig_len: int = -1

    def __post_init__(self) -> None:
        if self.orig_len < 0:
            object.__setattr__(self, "orig_len", len(self.data))


class PcapReader:
    """Iterates :class:`PcapPacket` records out of a classic pcap stream.

    Handles both little- and big-endian captures and both microsecond and
    nanosecond timestamp magics.
    """

    def __init__(self, stream: BinaryIO):
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic_le = struct.unpack("<I", header[:4])[0]
        magic_be = struct.unpack(">I", header[:4])[0]
        if magic_le in (_MAGIC_USEC, _MAGIC_NSEC):
            self._endian = "<"
            magic = magic_le
        elif magic_be in (_MAGIC_USEC, _MAGIC_NSEC):
            self._endian = ">"
            magic = magic_be
        else:
            raise PcapError(f"bad pcap magic: 0x{magic_le:08x}")
        self._tick = 1e-9 if magic == _MAGIC_NSEC else 1e-6
        fields = struct.unpack(self._endian + "IHHiIII", header)
        _, self.version_major, self.version_minor = fields[0], fields[1], fields[2]
        self.snaplen = fields[5]
        self.linktype = fields[6]
        self._stream = stream
        self._record = struct.Struct(self._endian + "IIII")
        metrics = get_registry()
        self._c_records = metrics.counter("pcap.records")
        self._c_bytes = metrics.counter("pcap.bytes")

    def __iter__(self) -> Iterator[PcapPacket]:
        while True:
            header = self._stream.read(self._record.size)
            if not header:
                return
            if len(header) < self._record.size:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_frac, incl_len, orig_len = self._record.unpack(header)
            if incl_len > self.snaplen and self.snaplen:
                raise PcapError(
                    f"record length {incl_len} exceeds snaplen {self.snaplen}"
                )
            data = self._stream.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            self._c_records.inc()
            self._c_bytes.inc(incl_len)
            yield PcapPacket(
                timestamp=ts_sec + ts_frac * self._tick,
                data=data,
                orig_len=orig_len,
            )


class PcapWriter:
    """Writes :class:`PcapPacket` records in classic little-endian pcap."""

    def __init__(
        self,
        stream: BinaryIO,
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = 262144,
    ):
        self._stream = stream
        self.linktype = linktype
        self.snaplen = snaplen
        stream.write(
            _GLOBAL_HEADER.pack(_MAGIC_USEC, 2, 4, 0, 0, snaplen, linktype)
        )

    def write(self, packet: PcapPacket) -> None:
        """Append one packet record."""
        data = packet.data[: self.snaplen]
        ts_sec = int(packet.timestamp)
        ts_usec = int(round((packet.timestamp - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:  # rounding spill-over
            ts_sec += 1
            ts_usec -= 1_000_000
        self._stream.write(
            _RECORD_HEADER.pack(ts_sec, ts_usec, len(data), packet.orig_len)
        )
        self._stream.write(data)


def read_pcap(path: str) -> tuple[int, list[PcapPacket]]:
    """Read a pcap file; returns ``(linktype, packets)``."""
    with open(path, "rb") as handle:
        reader = PcapReader(handle)
        return reader.linktype, list(reader)


def write_pcap(
    path: str,
    packets: Iterable[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
) -> int:
    """Write packets to ``path``; returns the number written."""
    count = 0
    with open(path, "wb") as handle:
        writer = PcapWriter(handle, linktype=linktype)
        for packet in packets:
            writer.write(packet)
            count += 1
    return count
