"""Network substrate: pcap I/O, packet codecs, TCP reassembly, HTTP/1.x.

This package replaces the deep-packet-inspection tooling the paper used
on its PCAP corpus (scapy is unavailable offline; see DESIGN.md §2).
"""

from repro.net.flows import (
    AddressBook,
    packets_from_trace,
    trace_from_packets,
    transactions_from_packets,
)
from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapPacket,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from repro.net.pcapng import PcapngReader, read_capture, read_pcapng
from repro.net.reassembly import FlowKey, TcpReassembler, TcpStream

__all__ = [
    "AddressBook",
    "FlowKey",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PcapPacket",
    "PcapReader",
    "PcapngReader",
    "PcapWriter",
    "TcpReassembler",
    "TcpStream",
    "packets_from_trace",
    "read_capture",
    "read_pcap",
    "read_pcapng",
    "trace_from_packets",
    "transactions_from_packets",
    "write_pcap",
]
