"""Command-line interface: the DynaMiner tool workflow.

Experiments (regenerate paper artifacts)::

    dynaminer list
    dynaminer run table3 [--scale 0.5] [--seed 7]
    dynaminer run all

Deployment workflow (train once, detect anywhere)::

    dynaminer train --out model.json [--scale 0.5] [--seed 7]
    dynaminer synth capture.pcap --kind angler [--seed 3]
    dynaminer detect capture.pcap --model model.json [--threshold 0.7]

Observability: ``--metrics`` (or ``REPRO_METRICS=1``) turns on the
pipeline metrics registry; ``--stats-interval``/``--stats-out`` stream
JSON-lines snapshots (default sink: stderr); ``--log-level`` controls
the ``repro`` logger.  ``detect --trace-out trace.jsonl`` (or
``REPRO_TRACE=1``) records the detection trace; ``dynaminer explain
trace.jsonl`` walks each alert's provenance and ``dynaminer stats
stats.jsonl`` summarizes a snapshot stream.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    baselines,
    case_study1,
    evasion,
    families_breakdown,
    fig10,
    figures,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED

__all__ = ["main", "EXPERIMENTS"]

#: Experiment id -> report callable(seed, scale).
EXPERIMENTS = {
    "table1": table1.report,
    "fig1": figures.report_fig1,
    "fig2": figures.report_fig2,
    "fig3": figures.report_fig3,
    "fig4": figures.report_fig4,
    "table3": table3.report,
    "table4": table4.report,
    "fig10": fig10.report,
    "table5": table5.report,
    "cs1": case_study1.report,
    "table6": table6.report,
    "evasion": evasion.report,
    "baselines": baselines.report,
    "families": families_breakdown.report,
    "ablation-voting": ablations.report_voting,
    "ablation-forest": ablations.report_forest_sweep,
}


def _setup_observability(args: argparse.Namespace):
    """Apply the shared observability flags; returns the stats reporter
    (or ``None`` when metrics are off).

    Must run *before* the pipeline is constructed: components capture
    their instrument handles at ``__init__``.
    """
    from repro.obs import (
        PipelineStatsReporter,
        configure_logging,
        enable_metrics,
        metrics_enabled,
    )

    configure_logging(getattr(args, "log_level", "info"))
    if getattr(args, "metrics", False):
        enable_metrics()
    if not metrics_enabled():
        return None
    out = args.stats_out if args.stats_out else sys.stderr
    return PipelineStatsReporter(out=out, interval=args.stats_interval)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the pipeline metrics registry (same as REPRO_METRICS=1)",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=None, dest="stats_interval",
        help="seconds between JSON-lines stats snapshots (default: only a"
             " final snapshot)",
    )
    parser.add_argument(
        "--stats-out", default=None, dest="stats_out",
        help="append stats snapshots to this file (default: stderr)",
    )
    parser.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=("debug", "info", "warning", "error"),
        help="repro logger verbosity (default: info)",
    )


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="enable detection tracing (same as REPRO_TRACE=1)",
    )
    parser.add_argument(
        "--trace-out", default=None, dest="trace_out",
        help="append the detection trace as JSON lines to this file"
             " (implies --trace; inspect with `dynaminer explain`)",
    )
    parser.add_argument(
        "--trace-sample", default="full", dest="trace_sample",
        choices=("full", "alerts"),
        help="keep every watch timeline ('full') or only timelines of"
             " watches that alerted ('alerts'; default: full)",
    )


def _setup_tracing(args: argparse.Namespace) -> None:
    """Turn tracing on when the detect flags ask for it.

    Like :func:`_setup_observability`, this must run before the
    pipeline is constructed — components capture the active tracer at
    ``__init__``.
    """
    from repro.obs import enable_tracing

    if getattr(args, "trace", False) or getattr(args, "trace_out", None):
        enable_tracing(sample=args.trace_sample)


def _cmd_list() -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("  all")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.context import set_default_n_jobs
    from repro.obs import get_logger

    log = get_logger("cli")
    reporter = _setup_observability(args)
    if args.n_jobs is not None:
        set_default_n_jobs(args.n_jobs)
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        log.error("unknown experiment: %s (see `dynaminer list`)",
                  args.experiment)
        return 2
    for name in names:
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        print(EXPERIMENTS[name](args.seed, args.scale))
        print()
        if reporter is not None:
            reporter.maybe_emit()
    if reporter is not None:
        reporter.finalize()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.detection.training import training_matrix
    from repro.learning.forest import EnsembleRandomForest
    from repro.learning.persistence import save_forest
    from repro.obs import configure_logging, get_logger
    from repro.synthesis.corpus import ground_truth_corpus

    configure_logging(getattr(args, "log_level", "info"))
    log = get_logger("cli")
    log.info("building ground-truth corpus (seed=%s, scale=%s) ...",
             args.seed, args.scale)
    corpus = ground_truth_corpus(seed=args.seed, scale=args.scale)
    log.info("%d benign + %d infection traces",
             len(corpus.benign), len(corpus.infections))
    log.info("extracting WCG features (full traces + clue-time prefixes) ...")
    X, y = training_matrix(corpus.traces, augment_prefixes=True,
                           n_jobs=args.n_jobs)
    log.info("%d training vectors x %d features", X.shape[0], X.shape[1])
    log.info("training the Ensemble Random Forest (Nt=20, Nf=log2+1) ...")
    model = EnsembleRandomForest(n_trees=20, random_state=args.seed)
    model.fit(X, y, n_jobs=args.n_jobs)
    try:
        save_forest(model, args.out)
    except OSError as exc:
        log.error("cannot write model to %s: %s", args.out, exc)
        return 2
    print(f"model written to {args.out}")
    return 0


def _load_model_or_fail(path: str, log):
    """Load a saved forest, trading tracebacks for actionable errors.

    Returns ``None`` after logging when the model cannot be loaded —
    the file is missing, unreadable, not JSON, or not a model payload.
    """
    from repro.exceptions import LearningError
    from repro.learning.persistence import load_forest

    try:
        return load_forest(path)
    except FileNotFoundError:
        log.error("model file not found: %s (create one with"
                  " `dynaminer train --out %s`)", path, path)
    except (OSError, ValueError, KeyError, TypeError, LearningError) as exc:
        # json.JSONDecodeError is a ValueError; a structurally wrong
        # payload surfaces as KeyError/TypeError from the rebuilder.
        log.error("cannot load model %s: %s", path, exc)
    return None


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detection.clues import CluePolicy
    from repro.detection.detector import DetectorConfig, OnTheWireDetector
    from repro.detection.live import LiveDetector
    from repro.exceptions import PcapError
    from repro.net.pcapng import read_capture
    from repro.obs import get_logger

    log = get_logger("cli")
    reporter = _setup_observability(args)
    _setup_tracing(args)
    model = _load_model_or_fail(args.model, log)
    if model is None:
        return 2
    log.info("loaded model with %d trees from %s",
             len(model.trees_), args.model)
    try:
        linktype, packets = read_capture(args.pcap)
    except FileNotFoundError:
        log.error("capture file not found: %s", args.pcap)
        return 2
    except (OSError, PcapError) as exc:
        log.error("cannot read capture %s: %s", args.pcap, exc)
        return 2
    policy = CluePolicy(redirect_threshold=args.redirect_threshold)
    config = DetectorConfig(alert_threshold=args.threshold)
    if args.workers is not None:
        return _detect_sharded(args, log, model, linktype, packets,
                               policy, config)
    detector = OnTheWireDetector(model, policy=policy, config=config)
    live = LiveDetector(detector, linktype=linktype, reporter=reporter,
                        trace_out=args.trace_out)
    for packet in packets:
        live.feed(packet)
    live.finish()
    log.info("decoded %d packets -> %d HTTP transactions",
             len(packets), live.transactions_emitted)
    alerts = detector.alerts
    print(f"{len(alerts)} alert(s); "
          f"{detector.classifications} classifications over "
          f"{detector.watch_count()} session watches "
          f"({detector.transactions_weeded} transactions weeded as trusted)")
    _print_alerts(alerts)
    return 0 if not alerts else 1


def _print_alerts(alerts) -> None:
    for alert in alerts:
        print(
            f"  ALERT client={alert.client} server={alert.clue.server} "
            f"payload={alert.clue.payload_type.value} "
            f"score={alert.score:.2f} "
            f"wcg={alert.wcg_order}n/{alert.wcg_size}e"
        )


def _detect_sharded(args, log, model, linktype, packets, policy,
                    config) -> int:
    """``detect --workers N``: replay through the sharded daemon.

    The merge contract (DESIGN.md §13) makes this path emit exactly the
    alert stream the single-process path above would — the worker count
    only changes how the work is spread, never what comes out.
    """
    import json

    from repro.obs import metrics_enabled, tracing_enabled, write_trace
    from repro.service import EngineSpec, ShardedDetectionService

    spec = EngineSpec(
        classifier=model,
        clue_policy=policy,
        detector_config=config,
        linktype=linktype,
        metrics=metrics_enabled(),
        # None defers to each worker's ambient REPRO_TRACE; the explicit
        # True covers --trace/--trace-out, which only flip the parent.
        trace=True if tracing_enabled() else None,
        trace_sample=getattr(args, "trace_sample", "full"),
    )
    service = ShardedDetectionService(spec, workers=args.workers)
    log.info("sharded detection: %d worker process(es)", service.n_workers)
    with service:
        for packet in packets:
            service.feed(packet)
        fleet = service.drain()
    log.info("routed %d packets -> %d HTTP transactions across %d shards",
             fleet.packets_routed, fleet.transactions, len(fleet.shards))
    if metrics_enabled():
        line = json.dumps({"fleet": fleet.snapshot}, sort_keys=True)
        if args.stats_out:
            with open(args.stats_out, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        else:
            print(line, file=sys.stderr)
    if args.trace_out:
        count = write_trace(fleet.trace, args.trace_out)
        log.info("wrote %d trace events to %s", count, args.trace_out)
    alerts = fleet.alerts
    print(f"{len(alerts)} alert(s); "
          f"{fleet.classifications} classifications over "
          f"{fleet.watches_opened} session watches "
          f"({fleet.transactions_weeded} transactions weeded as trusted)")
    _print_alerts(alerts)
    return 0 if not alerts else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    """Walk each alert's provenance out of a detection-trace JSONL."""
    from repro.features import feature_names
    from repro.obs import configure_logging, get_logger, read_trace

    configure_logging(getattr(args, "log_level", "info"))
    log = get_logger("cli")
    try:
        events = read_trace(args.trace)
    except FileNotFoundError:
        log.error("trace file not found: %s (record one with"
                  " `dynaminer detect ... --trace-out %s`)",
                  args.trace, args.trace)
        return 2
    except (OSError, ValueError) as exc:
        log.error("cannot read trace %s: %s", args.trace, exc)
        return 2
    alerts = [event for event in events
              if event.get("kind") == "verdict"
              and event.get("data", {}).get("decision") == "alert"]
    print(f"{len(events)} trace event(s), {len(alerts)} alert(s)"
          f" in {args.trace}")
    for index, event in enumerate(alerts[:args.limit]):
        _print_alert_walkthrough(index, event, events, feature_names())
    if len(alerts) > args.limit:
        print(f"\n... {len(alerts) - args.limit} more alert(s);"
              f" raise --limit to see them")
    return 0


def _print_alert_walkthrough(index: int, event: dict, events: list[dict],
                             names: list[str]) -> None:
    data = event.get("data", {})
    watch, client = event.get("watch", ""), event.get("client", "")
    kinds: dict[str, int] = {}
    for other in events:
        if other.get("watch") == watch and other.get("client") == client:
            kind = other.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
    timeline = " ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    print(f"\nalert #{index}: client={client} watch={watch}"
          f" t={event.get('ts', 0.0):.3f}")
    print(f"  score={data.get('score', 0.0):.3f}"
          f" threshold={data.get('threshold', 0.0):.2f}")
    print(f"  timeline: {timeline}")
    provenance = data.get("provenance")
    if not provenance:
        print("  (no provenance recorded)")
        return
    chain = provenance.get("clue_chain", [])
    total = provenance.get("clues_total", len(chain))
    print(f"  clue chain ({total} clue(s)):")
    for clue in chain:
        print(f"    t={clue.get('timestamp', 0.0):.3f}"
              f" server={clue.get('server')}"
              f" payload={clue.get('payload_type')}"
              f" chain_length={clue.get('chain_length')}")
    ttd = provenance.get("time_to_detection")
    tfe = provenance.get("time_from_first_edge")
    if ttd is not None:
        print(f"  time to detection: {ttd:.3f}s after first clue"
              + ("" if tfe is None
                 else f", {tfe:.3f}s after first infection-stage edge"))
    print(f"  wcg at verdict: {provenance.get('wcg_order')} nodes /"
          f" {provenance.get('wcg_size')} edges"
          f" (engine={provenance.get('engine')})")
    tally = provenance.get("vote_tally")
    if tally:
        print(f"  forest vote: {tally[1]}/{tally[0] + tally[1]} trees"
              f" infectious")
    counts = provenance.get("feature_path_counts") or []
    ranked = sorted(
        ((count, name) for count, name in zip(counts, names) if count),
        reverse=True,
    )
    if ranked:
        print("  top decision-path features:")
        for count, name in ranked[:5]:
            print(f"    {name}: {count} split(s)")


def _cmd_stats(args: argparse.Namespace) -> int:
    """Summarize a JSON-lines stats stream (reporter or fleet lines)."""
    import json

    from repro.obs import configure_logging, get_logger

    configure_logging(getattr(args, "log_level", "info"))
    log = get_logger("cli")
    try:
        with open(args.stats, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
    except FileNotFoundError:
        log.error("stats file not found: %s", args.stats)
        return 2
    except (OSError, ValueError) as exc:
        log.error("cannot read stats %s: %s", args.stats, exc)
        return 2
    # Fleet snapshots arrive wrapped as {"fleet": {...}}.
    snapshots = [line.get("fleet", line) for line in lines]
    if not snapshots:
        log.error("no snapshots in %s", args.stats)
        return 2
    final = snapshots[-1]
    print(f"{len(snapshots)} snapshot(s) in {args.stats}")
    counters = final.get("counters", {})
    if counters:
        print("counters (cumulative):")
        for name in sorted(counters):
            print(f"  {name}: {counters[name]}")
    rates = final.get("rates", {})
    if rates:
        print("rates (final interval):")
        for name in sorted(rates):
            print(f"  {name}: {rates[name]:.1f}")
    histograms = final.get("histograms", {})
    if histograms:
        print("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            if not hist.get("count"):
                continue
            parts = [f"count={hist['count']}"]
            for stat in ("mean", "p50", "p90", "p99", "max"):
                value = hist.get(stat)
                if value is not None:
                    parts.append(f"{stat}={value:.6g}")
            print(f"  {name}: " + " ".join(parts))
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.net.flows import packets_from_trace
    from repro.net.pcap import write_pcap
    from repro.synthesis.benign import BenignGenerator
    from repro.synthesis.families import family_by_name
    from repro.synthesis.infection import InfectionGenerator

    rng = np.random.default_rng(args.seed)
    if args.kind.lower() == "benign":
        trace = BenignGenerator(rng).generate_session()
        label = f"benign ({trace.meta.get('scenario')})"
    else:
        try:
            profile = family_by_name(args.kind)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        trace = InfectionGenerator(profile, rng).generate()
        label = f"{profile.name} infection"
    packets, _ = packets_from_trace(trace)
    count = write_pcap(args.pcap, packets)
    print(f"wrote {label}: {len(trace.transactions)} transactions, "
          f"{count} packets -> {args.pcap}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="dynaminer",
        description="DynaMiner reproduction: experiments and deployment.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment",
                            help="experiment id (see `list`) or 'all'")
    run_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    run_parser.add_argument(
        "--n-jobs", type=int, default=None, dest="n_jobs",
        help="worker processes for feature extraction, forest fitting and"
             " cross-validation (default 1; -1 = all cores). Results are"
             " byte-identical for any value: all per-tree/per-fold seeds"
             " derive from --seed before any work is scheduled.",
    )
    _add_observability_flags(run_parser)

    train_parser = subparsers.add_parser(
        "train", help="train a classifier and save it as JSON"
    )
    train_parser.add_argument("--out", default="dynaminer-model.json")
    train_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    train_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    train_parser.add_argument(
        "--n-jobs", type=int, default=None, dest="n_jobs",
        help="worker processes for feature extraction and tree fitting"
             " (default 1; -1 = all cores). The saved model is"
             " byte-identical for any value.",
    )
    train_parser.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=("debug", "info", "warning", "error"),
        help="repro logger verbosity (default: info)",
    )

    detect_parser = subparsers.add_parser(
        "detect", help="replay a pcap through the on-the-wire detector"
    )
    detect_parser.add_argument("pcap", help="pcap file to analyze")
    detect_parser.add_argument("--model", default="dynaminer-model.json")
    detect_parser.add_argument("--threshold", type=float, default=0.7)
    detect_parser.add_argument("--redirect-threshold", type=int, default=3)
    detect_parser.add_argument(
        "--workers", type=int, default=None,
        help="shard live detection across N worker processes (-1 = all"
             " cores; default: single process). Packets are hashed to"
             " shards by client, and the merged alert stream is"
             " byte-identical to the single-process run at any N.",
    )
    _add_observability_flags(detect_parser)
    _add_trace_flags(detect_parser)

    explain_parser = subparsers.add_parser(
        "explain", help="walk alert provenance out of a detection trace"
    )
    explain_parser.add_argument(
        "trace", help="trace JSONL file (from `detect --trace-out`)"
    )
    explain_parser.add_argument(
        "--limit", type=int, default=10,
        help="maximum alerts to walk through (default: 10)",
    )
    explain_parser.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=("debug", "info", "warning", "error"),
        help="repro logger verbosity (default: info)",
    )

    stats_parser = subparsers.add_parser(
        "stats", help="summarize a JSON-lines stats snapshot stream"
    )
    stats_parser.add_argument(
        "stats", help="stats JSONL file (from `--stats-out`)"
    )
    stats_parser.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=("debug", "info", "warning", "error"),
        help="repro logger verbosity (default: info)",
    )

    synth_parser = subparsers.add_parser(
        "synth", help="synthesize a labelled pcap capture"
    )
    synth_parser.add_argument("pcap", help="output pcap path")
    synth_parser.add_argument(
        "--kind", default="benign",
        help="'benign' or an exploit-kit family name (e.g. Angler, RIG)",
    )
    synth_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "synth":
        return _cmd_synth(args)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
