"""Command-line interface: the DynaMiner tool workflow.

Experiments (regenerate paper artifacts)::

    dynaminer list
    dynaminer run table3 [--scale 0.5] [--seed 7]
    dynaminer run all

Deployment workflow (train once, detect anywhere)::

    dynaminer train --out model.json [--scale 0.5] [--seed 7]
    dynaminer synth capture.pcap --kind angler [--seed 3]
    dynaminer detect capture.pcap --model model.json [--threshold 0.7]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    baselines,
    case_study1,
    evasion,
    families_breakdown,
    fig10,
    figures,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED

__all__ = ["main", "EXPERIMENTS"]

#: Experiment id -> report callable(seed, scale).
EXPERIMENTS = {
    "table1": table1.report,
    "fig1": figures.report_fig1,
    "fig2": figures.report_fig2,
    "fig3": figures.report_fig3,
    "fig4": figures.report_fig4,
    "table3": table3.report,
    "table4": table4.report,
    "fig10": fig10.report,
    "table5": table5.report,
    "cs1": case_study1.report,
    "table6": table6.report,
    "evasion": evasion.report,
    "baselines": baselines.report,
    "families": families_breakdown.report,
    "ablation-voting": ablations.report_voting,
    "ablation-forest": ablations.report_forest_sweep,
}


def _cmd_list() -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("  all")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.context import set_default_n_jobs

    if args.n_jobs is not None:
        set_default_n_jobs(args.n_jobs)
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        print(EXPERIMENTS[name](args.seed, args.scale))
        print()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.detection.training import training_matrix
    from repro.learning.forest import EnsembleRandomForest
    from repro.learning.persistence import save_forest
    from repro.synthesis.corpus import ground_truth_corpus

    print(f"building ground-truth corpus (seed={args.seed}, "
          f"scale={args.scale}) ...")
    corpus = ground_truth_corpus(seed=args.seed, scale=args.scale)
    print(f"  {len(corpus.benign)} benign + {len(corpus.infections)} "
          f"infection traces")
    print("extracting WCG features (full traces + clue-time prefixes) ...")
    X, y = training_matrix(corpus.traces, augment_prefixes=True,
                           n_jobs=args.n_jobs)
    print(f"  {X.shape[0]} training vectors x {X.shape[1]} features")
    print("training the Ensemble Random Forest (Nt=20, Nf=log2+1) ...")
    model = EnsembleRandomForest(n_trees=20, random_state=args.seed)
    model.fit(X, y, n_jobs=args.n_jobs)
    save_forest(model, args.out)
    print(f"model written to {args.out}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.detection.clues import CluePolicy
    from repro.detection.detector import DetectorConfig, OnTheWireDetector
    from repro.detection.proxy import TrafficReplay
    from repro.learning.persistence import load_forest
    from repro.net.flows import transactions_from_packets
    from repro.net.pcapng import read_capture

    model = load_forest(args.model)
    print(f"loaded model with {len(model.trees_)} trees from {args.model}")
    linktype, packets = read_capture(args.pcap)
    transactions = transactions_from_packets(packets, linktype)
    print(f"decoded {len(packets)} packets -> {len(transactions)} "
          f"HTTP transactions")
    detector = OnTheWireDetector(
        model,
        policy=CluePolicy(redirect_threshold=args.redirect_threshold),
        config=DetectorConfig(alert_threshold=args.threshold),
    )
    report = TrafficReplay(detector).run(transactions)
    print(f"{report.alert_count} alert(s); "
          f"{report.classifications} classifications over "
          f"{report.watches} session watches "
          f"({report.weeded} transactions weeded as trusted)")
    for alert in report.alerts:
        print(
            f"  ALERT client={alert.client} server={alert.clue.server} "
            f"payload={alert.clue.payload_type.value} "
            f"score={alert.score:.2f} "
            f"wcg={alert.wcg_order}n/{alert.wcg_size}e"
        )
    return 0 if report.alert_count == 0 else 1


def _cmd_synth(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.net.flows import packets_from_trace
    from repro.net.pcap import write_pcap
    from repro.synthesis.benign import BenignGenerator
    from repro.synthesis.families import family_by_name
    from repro.synthesis.infection import InfectionGenerator

    rng = np.random.default_rng(args.seed)
    if args.kind.lower() == "benign":
        trace = BenignGenerator(rng).generate_session()
        label = f"benign ({trace.meta.get('scenario')})"
    else:
        try:
            profile = family_by_name(args.kind)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        trace = InfectionGenerator(profile, rng).generate()
        label = f"{profile.name} infection"
    packets, _ = packets_from_trace(trace)
    count = write_pcap(args.pcap, packets)
    print(f"wrote {label}: {len(trace.transactions)} transactions, "
          f"{count} packets -> {args.pcap}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="dynaminer",
        description="DynaMiner reproduction: experiments and deployment.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment",
                            help="experiment id (see `list`) or 'all'")
    run_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    run_parser.add_argument(
        "--n-jobs", type=int, default=None, dest="n_jobs",
        help="worker processes for feature extraction, forest fitting and"
             " cross-validation (default 1; -1 = all cores). Results are"
             " byte-identical for any value: all per-tree/per-fold seeds"
             " derive from --seed before any work is scheduled.",
    )

    train_parser = subparsers.add_parser(
        "train", help="train a classifier and save it as JSON"
    )
    train_parser.add_argument("--out", default="dynaminer-model.json")
    train_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    train_parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    train_parser.add_argument(
        "--n-jobs", type=int, default=None, dest="n_jobs",
        help="worker processes for feature extraction and tree fitting"
             " (default 1; -1 = all cores). The saved model is"
             " byte-identical for any value.",
    )

    detect_parser = subparsers.add_parser(
        "detect", help="replay a pcap through the on-the-wire detector"
    )
    detect_parser.add_argument("pcap", help="pcap file to analyze")
    detect_parser.add_argument("--model", default="dynaminer-model.json")
    detect_parser.add_argument("--threshold", type=float, default=0.7)
    detect_parser.add_argument("--redirect-threshold", type=int, default=3)

    synth_parser = subparsers.add_parser(
        "synth", help="synthesize a labelled pcap capture"
    )
    synth_parser.add_argument("pcap", help="output pcap path")
    synth_parser.add_argument(
        "--kind", default="benign",
        help="'benign' or an exploit-kit family name (e.g. Angler, RIG)",
    )
    synth_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "synth":
        return _cmd_synth(args)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
