"""Exception hierarchy for the DynaMiner reproduction.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing subsystem-specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PcapError(ReproError):
    """Raised when a pcap file is malformed or uses an unsupported format."""


class TcpReassemblyError(ReproError):
    """Raised when a TCP segment stream cannot be reassembled coherently."""


class HttpParseError(ReproError):
    """Raised when bytes on a TCP stream do not form valid HTTP/1.x."""


class GraphConstructionError(ReproError):
    """Raised when a WCG cannot be built from a transaction stream."""


class FeatureError(ReproError):
    """Raised when feature extraction fails or a feature is unknown."""


class LearningError(ReproError):
    """Raised for invalid training data or classifier misuse."""


class NotFittedError(LearningError):
    """Raised when predict() is called on an unfitted model."""


class DetectionError(ReproError):
    """Raised when the on-the-wire detector is misconfigured or misused."""


class SynthesisError(ReproError):
    """Raised when a trace generator is given inconsistent parameters."""
