"""Distribution helpers for calibrated synthesis.

Table I reports each quantity as ``(min, max, avg)``.  We sample such
quantities from a Beta distribution rescaled to ``[min, max]`` whose mean
is pinned to ``avg`` — skewed exactly the way heavy-tailed trace
statistics are (most mass near the minimum, a long tail to the maximum).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bounded_sample", "bounded_int", "lognormal_bounded", "poisson_at_least"]

#: Beta concentration; lower = heavier tails around the pinned mean.
_CONCENTRATION = 2.0


def bounded_sample(
    rng: np.random.Generator,
    low: float,
    high: float,
    mean: float,
    concentration: float = _CONCENTRATION,
) -> float:
    """Draw from ``[low, high]`` with expected value ``mean``.

    Uses ``Beta(a, b)`` with ``a/(a+b) = (mean-low)/(high-low)`` and
    ``a+b = concentration``.  Degenerate ranges return their midpoint.
    """
    if high <= low:
        return low
    mean = min(max(mean, low), high)
    frac = (mean - low) / (high - low)
    frac = min(max(frac, 1e-3), 1 - 1e-3)
    a = frac * concentration
    b = (1 - frac) * concentration
    return low + (high - low) * float(rng.beta(a, b))


def bounded_int(
    rng: np.random.Generator,
    low: int,
    high: int,
    mean: float,
    concentration: float = _CONCENTRATION,
) -> int:
    """Integer variant of :func:`bounded_sample` (inclusive bounds)."""
    value = bounded_sample(rng, float(low), float(high), mean, concentration)
    return int(round(min(max(value, low), high)))


def lognormal_bounded(
    rng: np.random.Generator,
    low: float,
    high: float,
    mean: float,
) -> float:
    """Heavy-tailed positive sample clipped to ``[low, high]``.

    Suits durations and payload sizes: the paper reports lifetimes of
    0.5–4061 s with an average of 123 s — a classic log-normal shape.
    """
    if high <= low:
        return low
    mean = min(max(mean, low * 1.0001), high)
    sigma = 1.0
    mu = np.log(mean) - sigma**2 / 2
    value = float(rng.lognormal(mu, sigma))
    return min(max(value, low), high)


def poisson_at_least(
    rng: np.random.Generator, mean: float, minimum: int = 0
) -> int:
    """Poisson draw with a floor — for per-trace payload counts."""
    return max(minimum, int(rng.poisson(max(mean, 0.0))))
