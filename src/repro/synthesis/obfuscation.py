"""Redirect obfuscators: hide a target URL the way exploit kits do.

Each style produces HTML/JavaScript whose redirect target is only
recoverable after the deobfuscation pass in
:mod:`repro.core.redirects` — giving us ground truth to validate the
paper's "reverse engineer obfuscated JavaScript and HTML" heuristics
(Section III-D).
"""

from __future__ import annotations

import base64
import enum

import numpy as np

__all__ = ["ObfuscationStyle", "obfuscate_redirect", "random_style"]


class ObfuscationStyle(enum.Enum):
    """Concealment technique applied to a redirect target."""

    PLAIN = "plain"
    CONCAT = "concat"
    FROMCHARCODE = "fromcharcode"
    UNESCAPE = "unescape"
    ATOB = "atob"
    ARRAY_JOIN = "array_join"
    REVERSE = "reverse"
    META_REFRESH = "meta_refresh"
    IFRAME = "iframe"


def _split_chunks(text: str, rng: np.random.Generator, n_min: int = 3,
                  n_max: int = 6) -> list[str]:
    """Split ``text`` into 3-6 random-length chunks."""
    pieces = int(rng.integers(n_min, n_max + 1))
    if pieces >= len(text):
        return [text]
    cuts = sorted(
        int(c) for c in rng.choice(range(1, len(text)), size=pieces - 1,
                                   replace=False)
    )
    chunks = []
    prev = 0
    for cut in cuts:
        chunks.append(text[prev:cut])
        prev = cut
    chunks.append(text[prev:])
    return chunks


def obfuscate_redirect(
    url: str,
    style: ObfuscationStyle,
    rng: np.random.Generator,
) -> str:
    """Return an HTML/JS snippet that redirects to ``url`` via ``style``."""
    if style is ObfuscationStyle.PLAIN:
        return f'<script>window.location.href = "{url}";</script>'
    if style is ObfuscationStyle.CONCAT:
        chunks = _split_chunks(url, rng)
        joined = " + ".join(f'"{chunk}"' for chunk in chunks)
        return f"<script>var u = {joined}; window.location = u;</script>"
    if style is ObfuscationStyle.FROMCHARCODE:
        codes = ",".join(str(ord(ch)) for ch in url)
        return (
            "<script>document.location.replace("
            f"String.fromCharCode({codes}));</script>"
        )
    if style is ObfuscationStyle.UNESCAPE:
        escaped = "".join(f"%{ord(ch):02x}" for ch in url)
        return (
            f'<script>top.location = unescape("{escaped}");</script>'
        )
    if style is ObfuscationStyle.ATOB:
        blob = base64.b64encode(url.encode("ascii")).decode("ascii")
        return f'<script>window.location.assign(atob("{blob}"));</script>'
    if style is ObfuscationStyle.ARRAY_JOIN:
        chunks = _split_chunks(url, rng)
        array = ", ".join(f'"{chunk}"' for chunk in chunks)
        return (
            f'<script>self.location = [{array}].join("");</script>'
        )
    if style is ObfuscationStyle.REVERSE:
        reversed_url = url[::-1]
        return (
            f'<script>window.location.href = '
            f'"{reversed_url}".split("").reverse().join("");</script>'
        )
    if style is ObfuscationStyle.META_REFRESH:
        return (
            '<meta http-equiv="refresh" '
            f'content="0; url={url}">'
        )
    if style is ObfuscationStyle.IFRAME:
        width = int(rng.integers(0, 3))
        return (
            f'<iframe width="{width}" height="{width}" '
            f'style="visibility:hidden" src="{url}"></iframe>'
        )
    raise ValueError(f"unknown obfuscation style: {style}")


def random_style(rng: np.random.Generator,
                 include_markup: bool = True) -> ObfuscationStyle:
    """Pick a style; exploit kits overwhelmingly favour iframes and
    heavily obfuscated JS, so weights are biased accordingly."""
    styles = [
        (ObfuscationStyle.IFRAME, 0.25 if include_markup else 0.0),
        (ObfuscationStyle.META_REFRESH, 0.10 if include_markup else 0.0),
        (ObfuscationStyle.PLAIN, 0.05),
        (ObfuscationStyle.CONCAT, 0.15),
        (ObfuscationStyle.FROMCHARCODE, 0.12),
        (ObfuscationStyle.UNESCAPE, 0.10),
        (ObfuscationStyle.ATOB, 0.10),
        (ObfuscationStyle.ARRAY_JOIN, 0.08),
        (ObfuscationStyle.REVERSE, 0.05),
    ]
    names = [s for s, _ in styles]
    weights = np.array([w for _, w in styles])
    weights = weights / weights.sum()
    return names[int(rng.choice(len(names), p=weights))]
