"""Corpus builders: ground-truth and validation datasets (Sections II, VI-B).

``ground_truth_corpus`` reproduces Table I's composition: 980 benign
traces plus 770 infections spread across the ten family rows.
``validation_corpus`` reproduces the Section VI-B independent test set:
7489 infections (ThreatGlass stand-in: a disjoint, seed-shifted,
parameter-perturbed draw) and 1500 benign traces collected "the same
way" as the benign ground truth.

A ``scale`` knob shrinks every stratum proportionally (minimum one trace
per family) so tests and quick benches can run on a reduced corpus while
full-fidelity runs use ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Trace
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import (
    BENIGN_PROFILE,
    EXPLOIT_KIT_FAMILIES,
    FamilyProfile,
)
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator

__all__ = ["Corpus", "ground_truth_corpus", "validation_corpus"]

#: Fraction of infection episodes generated in *stealth* form (no
#: redirections, compressed payload, human pacing, few hosts) — sized to
#: the paper's false-negative analysis: 206/7489 validation FNs, of
#: which 89 were compressed-no-redirect cases (Section VI-B).
_STEALTH_FRACTION = 0.03


@dataclass
class Corpus:
    """A labelled set of traces with per-family bookkeeping."""

    traces: list[Trace] = field(default_factory=list)
    seed: int = 0

    @property
    def benign(self) -> list[Trace]:
        """All benign traces."""
        return [t for t in self.traces if not t.is_infection]

    @property
    def infections(self) -> list[Trace]:
        """All infection traces."""
        return [t for t in self.traces if t.is_infection]

    def by_family(self, family: str) -> list[Trace]:
        """Infection traces of one family (case-insensitive)."""
        return [
            t for t in self.traces
            if t.family.lower() == family.lower()
        ]

    @property
    def families(self) -> list[str]:
        """Distinct infection family names present, in first-seen order."""
        seen: list[str] = []
        for trace in self.traces:
            if trace.family and trace.family not in seen:
                seen.append(trace.family)
        return seen

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)


def _scaled(count: int, scale: float) -> int:
    """Scale a stratum size, keeping at least one trace."""
    return max(1, int(round(count * scale)))


def _generate_family(
    profile: FamilyProfile,
    count: int,
    rng: np.random.Generator,
    hard_case_rate: float = _STEALTH_FRACTION,
) -> list[Trace]:
    """Generate ``count`` infections for one family profile."""
    generator = InfectionGenerator(profile, rng)
    traces: list[Trace] = []
    for _ in range(count):
        stealth = bool(rng.random() < hard_case_rate)
        traces.append(generator.generate(EpisodeConfig(stealth=stealth)))
    return traces


def ground_truth_corpus(
    seed: int = 7,
    scale: float = 1.0,
    stealth_fraction: float = _STEALTH_FRACTION,
) -> Corpus:
    """Build the Table I ground-truth corpus (980 benign + 770 infections).

    Args:
        seed: master seed; every stratum derives a child seed from it.
        scale: proportional shrink factor for quick runs (``1.0`` = full
            Table I composition).
        stealth_fraction: share of stealth-mode infections (set 0.0 for
            the zero-day evasion experiment, where the adversary adapts
            only after training).
    """
    master = np.random.SeedSequence(seed)
    children = master.spawn(len(EXPLOIT_KIT_FAMILIES) + 1)
    corpus = Corpus(seed=seed)
    benign_rng = np.random.default_rng(children[0])
    benign_gen = BenignGenerator(benign_rng)
    for _ in range(_scaled(BENIGN_PROFILE.trace_count, scale)):
        corpus.traces.append(benign_gen.generate_session())
    for child, profile in zip(children[1:], EXPLOIT_KIT_FAMILIES):
        rng = np.random.default_rng(child)
        corpus.traces.extend(
            _generate_family(
                profile, _scaled(profile.trace_count, scale), rng,
                hard_case_rate=stealth_fraction,
            )
        )
    return corpus


def validation_corpus(
    seed: int = 1301,
    scale: float = 1.0,
    drift: float = 0.15,
) -> Corpus:
    """Build the Section VI-B independent test set (7489 + 1500).

    The infection side stands in for ThreatGlass intelligence: a draw
    that is disjoint from the ground truth (different seed stream) with
    per-family parameter *drift* — host and redirect means are jittered
    by up to ``drift`` relative — modelling the distribution shift
    between the authors' own corpus and ThreatGlass captures.
    """
    master = np.random.SeedSequence(seed)
    children = master.spawn(len(EXPLOIT_KIT_FAMILIES) + 2)
    corpus = Corpus(seed=seed)

    benign_rng = np.random.default_rng(children[0])
    benign_gen = BenignGenerator(benign_rng)
    for _ in range(_scaled(1500, scale)):
        corpus.traces.append(benign_gen.generate_session())

    total_infections = _scaled(7489, scale)
    weights = np.array([f.trace_count for f in EXPLOIT_KIT_FAMILIES], float)
    weights /= weights.sum()
    counts = np.floor(weights * total_infections).astype(int)
    # Distribute the rounding remainder to the largest strata.
    remainder = total_infections - int(counts.sum())
    for index in np.argsort(weights)[::-1][:remainder]:
        counts[index] += 1

    drift_rng = np.random.default_rng(children[1])
    for child, profile, count in zip(
        children[2:], EXPLOIT_KIT_FAMILIES, counts
    ):
        if count <= 0:
            continue
        jitter = 1.0 + float(drift_rng.uniform(-drift, drift))
        from repro.synthesis.families import Range  # local to avoid cycle noise

        drifted = FamilyProfile(
            name=profile.name,
            trace_count=profile.trace_count,
            hosts=Range(
                profile.hosts.low,
                profile.hosts.high,
                min(profile.hosts.high,
                    max(profile.hosts.low, profile.hosts.mean * jitter)),
            ),
            redirects=Range(
                profile.redirects.low,
                profile.redirects.high,
                min(profile.redirects.high,
                    max(profile.redirects.low, profile.redirects.mean * jitter)),
            ),
            payload_counts=profile.payload_counts,
            post_download_prob=profile.post_download_prob,
            redirectless_prob=profile.redirectless_prob,
            signature_payloads=profile.signature_payloads,
        )
        rng = np.random.default_rng(child)
        corpus.traces.extend(_generate_family(drifted, int(count), rng))
    return corpus
