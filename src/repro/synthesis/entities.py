"""Deterministic entity generators: domains, hosts, IPs, URIs, payloads.

All randomness flows through an injected ``numpy.random.Generator`` so
corpora are reproducible from a seed (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SEARCH_ENGINES",
    "SOCIAL_SITES",
    "WEBMAIL_SITES",
    "VIDEO_SITES",
    "TRUSTED_VENDORS",
    "ALEXA_SITES",
    "NameForge",
]

#: Well-known benign sites used in enticement and benign scenarios.
SEARCH_ENGINES = ("google.com", "bing.com", "search.yahoo.com", "duckduckgo.com")
SOCIAL_SITES = ("facebook.com", "twitter.com", "linkedin.com", "reddit.com")
WEBMAIL_SITES = ("mail.google.com", "mail.yahoo.com", "outlook.live.com")
VIDEO_SITES = ("youtube.com", "vimeo.com", "dailymotion.com")

#: Trusted software vendors / app stores whose download traffic the
#: detector weeds out (Section V-B noise reduction).
TRUSTED_VENDORS = (
    "download.microsoft.com",
    "update.microsoft.com",
    "dl.google.com",
    "swcdn.apple.com",
    "downloads.mozilla.org",
    "archive.ubuntu.com",
    "pypi.org",
    "registry.npmjs.org",
    "store.steampowered.com",
)

#: A slice of popular sites standing in for Alexa Top-1M visits.
ALEXA_SITES = (
    "wikipedia.org", "amazon.com", "nytimes.com", "cnn.com", "bbc.co.uk",
    "stackoverflow.com", "github.com", "imdb.com", "espn.com", "weather.com",
    "etsy.com", "yelp.com", "tripadvisor.com", "booking.com", "wordpress.com",
)

_SYLLABLES = (
    "ban", "cor", "dex", "fin", "gal", "hub", "jin", "kol", "lum", "mor",
    "nex", "pix", "qua", "rav", "sol", "tor", "umb", "vex", "wix", "zon",
    "ark", "bel", "cin", "dra", "eon", "fur", "gro", "hex", "ivo", "jux",
)
_TLDS = ("com", "net", "org", "info", "biz", "ru", "in", "top", "xyz", "pw")
_CMS_PATHS = (
    "/wp-content/uploads/{y}/{m}/view.php",
    "/wp-includes/js/swfobject.js",
    "/wp-admin/admin-ajax.php",
    "/components/com_content/router.php",
    "/modules/mod_banners/tmpl/default.php",
    "/sites/default/files/styles/large/index.php",
)
_URI_WORDS = (
    "index", "view", "main", "page", "load", "show", "get", "feed", "item",
    "news", "post", "watch", "search", "click", "track", "count", "stat",
)
_EK_URI_WORDS = (
    "gate", "landing", "loader", "counter", "check", "flow", "stream",
    "forum", "viewtopic", "topic", "search", "player", "media",
)


@dataclass
class NameForge:
    """Deterministic factory for synthetic network entities.

    One forge per generated episode/corpus; it never repeats a malicious
    domain within its lifetime, mirroring the churn of exploit-kit
    infrastructure.
    """

    rng: np.random.Generator

    def __post_init__(self) -> None:
        self._minted: set[str] = set()

    def _word(self, syllables: int = 3) -> str:
        return "".join(
            _SYLLABLES[int(i)]
            for i in self.rng.integers(0, len(_SYLLABLES), size=syllables)
        )

    def domain(self, tld: str | None = None, syllables: int = 3) -> str:
        """A fresh registered domain (never repeats within this forge).

        When the syllable space for the requested shape is (nearly)
        exhausted — a real risk for 2-syllable single-TLD draws in
        full-scale corpora — a numeric disambiguator is appended rather
        than spinning on collisions forever.
        """
        for _ in range(24):
            chosen_tld = tld or _TLDS[int(self.rng.integers(0, len(_TLDS)))]
            name = f"{self._word(syllables)}.{chosen_tld}"
            if name not in self._minted:
                self._minted.add(name)
                return name
        while True:
            chosen_tld = tld or _TLDS[int(self.rng.integers(0, len(_TLDS)))]
            name = (
                f"{self._word(syllables)}"
                f"{int(self.rng.integers(10, 10_000))}.{chosen_tld}"
            )
            if name not in self._minted:
                self._minted.add(name)
                return name

    def dga_domain(self) -> str:
        """An algorithmically-generated-looking C&C domain."""
        length = int(self.rng.integers(10, 20))
        letters = "abcdefghijklmnopqrstuvwxyz0123456789"
        while True:
            body = "".join(
                letters[int(i)]
                for i in self.rng.integers(0, len(letters), size=length)
            )
            tld = _TLDS[int(self.rng.integers(4, len(_TLDS)))]
            name = f"{body}.{tld}"
            if name not in self._minted:
                self._minted.add(name)
                return name

    def subdomain(self, parent: str) -> str:
        """A fresh subdomain of ``parent``."""
        return f"{self._word(2)}.{parent}"

    def compromised_site(self) -> str:
        """A compromised small-business-looking site (CMS-hosted)."""
        return self.domain(tld="com", syllables=2)

    def cms_uri(self) -> str:
        """A URI matching a default CMS installation path (Section II-B).

        WordPress dominates compromised-site enticements (the paper
        matched 56 of 94 against default WordPress installs), so the
        WordPress templates carry 60% of the draw mass.
        """
        if self.rng.random() < 0.6:
            template = _CMS_PATHS[int(self.rng.integers(0, 3))]  # WordPress
        else:
            template = _CMS_PATHS[int(self.rng.integers(3, len(_CMS_PATHS)))]
        return template.format(
            y=int(self.rng.integers(2013, 2017)), m=int(self.rng.integers(1, 13))
        )

    def ip(self) -> str:
        """A public-looking IPv4 address."""
        octets = self.rng.integers(1, 254, size=4)
        return f"{int(octets[0]) % 200 + 20}.{int(octets[1])}.{int(octets[2])}.{int(octets[3])}"

    def token(self, length: int = 16) -> str:
        """A random hex token (session IDs, cache busters)."""
        digits = "0123456789abcdef"
        return "".join(
            digits[int(i)] for i in self.rng.integers(0, 16, size=length)
        )

    def uri(self, depth: int = 2, extension: str = "", query: bool = False,
            exploit_kit: bool = False) -> str:
        """A plausible URI path, optionally with extension and query."""
        words = _EK_URI_WORDS if exploit_kit else _URI_WORDS
        parts = [
            words[int(i)]
            for i in self.rng.integers(0, len(words), size=max(1, depth))
        ]
        path = "/" + "/".join(parts)
        if extension:
            path += f".{extension.lstrip('.')}"
        if query:
            path += f"?id={self.token(8)}&r={int(self.rng.integers(1, 10**6))}"
        return path

    def long_ek_uri(self, extension: str = "") -> str:
        """An exploit-kit-style long URI with encoded parameters."""
        path = self.uri(depth=2, exploit_kit=True)
        if extension:
            path += f".{extension}"
        blob = self.token(int(self.rng.integers(8, 48)))
        return f"{path}?{self.token(4)}={blob}&sid={self.token(12)}"

    def user_agent(self) -> str:
        """A browser user-agent string."""
        agents = (
            "Mozilla/5.0 (Windows NT 6.1; WOW64; Trident/7.0; rv:11.0) like Gecko",
            "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)",
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36"
            " (KHTML, like Gecko) Chrome/51.0.2704.103 Safari/537.36",
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_5) AppleWebKit/601.6.17"
            " (KHTML, like Gecko) Version/9.1.1 Safari/601.6.17",
            "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:47.0) Gecko/20100101"
            " Firefox/47.0",
        )
        return agents[int(self.rng.integers(0, len(agents)))]

    def choice(self, options: tuple[str, ...]) -> str:
        """Uniform choice from a tuple of strings."""
        return options[int(self.rng.integers(0, len(options)))]
