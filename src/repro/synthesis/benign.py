"""Benign browsing-session generators (Section II-A, benign ground truth).

Reproduces the six collection scenarios the paper captured over
05/2015–05/2016: web search (Google/Bing) with result clicks, social
networking with shared-link clicks, web-mail with attachment downloads,
video streaming with ad clicks, random Alexa-site visits, and
email-embedded link visits.  Statistics are calibrated on Table I's
benign row (2–34 hosts, average 3; 0–2 redirects; payload mix pdf 60 /
exe 30 / jar 3 / js 138 over 980 traces).

Two *hard-case* scenarios reproduce the paper's false-positive sources
(Section VI-B): downloads of benign content from unofficial sites, and
long torrent-ish sessions with very large binaries.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
    TraceLabel,
)
from repro.synthesis.entities import (
    ALEXA_SITES,
    NameForge,
    SEARCH_ENGINES,
    SOCIAL_SITES,
    TRUSTED_VENDORS,
    VIDEO_SITES,
    WEBMAIL_SITES,
)
from repro.synthesis.families import BENIGN_PROFILE
from repro.synthesis.sampling import bounded_int

__all__ = ["BenignScenario", "BenignGenerator", "SCENARIO_WEIGHTS"]


class BenignScenario(enum.Enum):
    """Benign collection scenario (Section II-A)."""

    SEARCH = "search"
    SOCIAL = "social"
    WEBMAIL = "webmail"
    VIDEO = "video"
    ALEXA = "alexa"
    EMAIL_LINK = "email_link"
    UNOFFICIAL_DOWNLOAD = "unofficial_download"  # FP hard case
    TORRENT = "torrent"  # FP hard case
    AGGRESSIVE_ADS = "aggressive_ads"  # FP hard case


#: Scenario mix for the benign corpus.  Hard cases are rare, matching the
#: paper's 49/1500 validation false positives.
SCENARIO_WEIGHTS: dict[BenignScenario, float] = {
    BenignScenario.SEARCH: 0.32,
    BenignScenario.SOCIAL: 0.16,
    BenignScenario.WEBMAIL: 0.14,
    BenignScenario.VIDEO: 0.12,
    BenignScenario.ALEXA: 0.15,
    BenignScenario.EMAIL_LINK: 0.05,
    BenignScenario.UNOFFICIAL_DOWNLOAD: 0.03,
    BenignScenario.TORRENT: 0.01,
    BenignScenario.AGGRESSIVE_ADS: 0.02,
}

_STATIC_EXTS = ("css", "js", "png", "jpg", "gif", "woff")


class BenignGenerator:
    """Generates benign :class:`Trace` objects across browsing scenarios."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.forge = NameForge(rng)
        self._base_time = 1_430_000_000.0

    def generate(self, scenario: BenignScenario | None = None) -> Trace:
        """Generate one labelled benign episode."""
        rng = self.rng
        if scenario is None:
            options = list(SCENARIO_WEIGHTS)
            weights = np.array([SCENARIO_WEIGHTS[s] for s in options])
            scenario = options[int(rng.choice(len(options), p=weights / weights.sum()))]
        self._ua = self.forge.user_agent()
        victim = f"client-{self.forge.token(6)}"
        start = self._base_time + float(rng.uniform(0, 365 * 86400))
        clock_now = [start]

        def tick(lo: float, hi: float) -> float:
            clock_now[0] += float(rng.uniform(lo, hi))
            return clock_now[0]

        builder = _SessionBuilder(self, victim, tick)
        dispatch = {
            BenignScenario.SEARCH: self._search,
            BenignScenario.SOCIAL: self._social,
            BenignScenario.WEBMAIL: self._webmail,
            BenignScenario.VIDEO: self._video,
            BenignScenario.ALEXA: self._alexa,
            BenignScenario.EMAIL_LINK: self._email_link,
            BenignScenario.UNOFFICIAL_DOWNLOAD: self._unofficial_download,
            BenignScenario.TORRENT: self._torrent,
            BenignScenario.AGGRESSIVE_ADS: self._aggressive_ads,
        }
        origin = dispatch[scenario](builder)
        transactions = builder.transactions
        return Trace(
            transactions=transactions,
            label=TraceLabel.BENIGN,
            origin=origin,
            meta={"scenario": scenario.value},
        )

    def generate_session(self) -> Trace:
        """Generate one browsing-session capture, possibly multi-tab.

        The paper's benign collection kept "multiple tabs open in the
        browser" (Section II-A), so a capture interleaves one to three
        concurrent activities of the same user.  Roughly half our
        sessions are single-tab; the rest overlay a second (sometimes
        third) scenario shifted by up to two minutes.
        """
        rng = self.rng
        roll = rng.random()
        tabs = 1 if roll < 0.5 else (2 if roll < 0.85 else 3)
        first = self.generate()
        if tabs == 1 or not first.transactions:
            return first
        victim = first.transactions[0].client
        start = first.transactions[0].timestamp
        merged = list(first.transactions)
        scenarios = [first.meta["scenario"]]
        for _ in range(tabs - 1):
            extra = self.generate()
            if not extra.transactions:
                continue
            offset = (
                start + float(rng.uniform(0.0, 120.0))
                - extra.transactions[0].timestamp
            )
            for txn in extra.transactions:
                txn.request.client = victim
                txn.request.timestamp += offset
                if txn.response is not None:
                    txn.response.timestamp += offset
                merged.append(txn)
            scenarios.append(extra.meta["scenario"])
        return Trace(
            transactions=merged,
            label=TraceLabel.BENIGN,
            origin=first.origin,
            meta={"scenario": first.meta["scenario"],
                  "tabs": scenarios},
        )

    # -- page-load machinery -----------------------------------------------

    def _page_load(
        self,
        builder: "_SessionBuilder",
        host: str,
        uri: str,
        referrer: str,
        assets: int | None = None,
        third_party: int = 0,
    ) -> str:
        """Emit a main-document GET plus its static asset fetches.

        Returns the page URL (for use as the next click's referrer).
        """
        rng = self.rng
        page_url = f"http://{host}{uri}"
        if rng.random() < 0.25:
            referrer = ""  # opened in a fresh tab / referrer policy strip
        builder.get(host, uri, referrer, "text/html",
                    size=int(rng.integers(5_000, 120_000)),
                    think=(20.0, 120.0))
        count = assets if assets is not None else int(rng.integers(2, 6))
        for _ in range(count):
            ext = _STATIC_EXTS[int(rng.integers(0, len(_STATIC_EXTS)))]
            ctype = {
                "css": "text/css", "js": "application/javascript",
                "woff": "font/woff",
            }.get(ext, "image/png")
            builder.get(host, self.forge.uri(depth=2, extension=ext),
                        page_url, ctype,
                        size=int(rng.integers(500, 60_000)),
                        think=(0.01, 0.2))
        for _ in range(third_party):
            cdn = builder.cdn_host()
            builder.get(cdn, self.forge.uri(depth=2, extension="js"),
                        page_url, "application/javascript",
                        size=int(rng.integers(1_000, 80_000)),
                        think=(0.01, 0.3))
        # Ad/analytics beacons: modern pages fire tracker requests with
        # very long query strings and frequent POSTs — benign traffic
        # that statistically shades into exploit-kit URI/method
        # territory (keeps the classes honestly overlapped).
        for _ in range(int(rng.integers(1, 4)) if rng.random() < 0.7 else 0):
            tracker = builder.tracker_host()
            blob = self.forge.token(int(rng.integers(40, 160)))
            beacon_uri = f"/collect?v=1&tid=UA-{self.forge.token(6)}&cid={blob}"
            beacon_ref = "" if rng.random() < 0.5 else page_url
            if rng.random() < 0.35:
                builder.post(tracker, beacon_uri, beacon_ref,
                             size=int(rng.integers(0, 400)))
            else:
                builder.get(tracker, beacon_uri, beacon_ref, "image/gif",
                            size=35, think=(0.01, 0.2))
        # Dead links and expired assets: the occasional 404.
        if rng.random() < 0.2:
            status = 404 if rng.random() < 0.8 else 500
            builder.error(host, self.forge.uri(depth=2, extension="png"),
                          page_url, status=status)
        return page_url

    def _maybe_ad_redirect(self, builder: "_SessionBuilder",
                           referrer: str) -> None:
        """Occasional 0–2-hop ad-click redirect (benign Table I: 0–2)."""
        rng = self.rng
        hops = bounded_int(rng, 0, BENIGN_PROFILE.redirects.high,
                           max(BENIGN_PROFILE.redirects.mean, 0.3))
        previous = referrer
        for _ in range(hops):
            tracker = self.forge.subdomain("doubleclick.net")
            target = self.forge.domain(tld="com")
            target_url = f"http://{target}/landing?utm={self.forge.token(6)}"
            builder.redirect(tracker, self.forge.uri(depth=1, query=True),
                             previous, target_url)
            previous = target_url
        if hops:
            final_host = previous.split("/")[2]
            self._page_load(builder, final_host, "/landing", previous, assets=3)

    # -- scenarios -----------------------------------------------------------

    def _search(self, builder: "_SessionBuilder") -> str:
        engine = self.forge.choice(SEARCH_ENGINES[:2])  # Google/Bing focus
        query_url = f"http://{engine}/search?q={self.forge.token(8)}"
        builder.get(engine, f"/search?q={self.forge.token(8)}", "",
                    "text/html", size=45_000, think=(5.0, 40.0))
        clicks = int(self.rng.integers(1, 3))
        for _ in range(clicks):
            site = self.forge.choice(ALEXA_SITES) if self.rng.random() < 0.6 \
                else self.forge.domain(tld="com")
            self._page_load(builder, site,
                            self.forge.uri(depth=2, extension="html"),
                            query_url, third_party=int(self.rng.integers(0, 3)))
        self._maybe_ad_redirect(builder, query_url)
        return engine

    def _social(self, builder: "_SessionBuilder") -> str:
        site = self.forge.choice(SOCIAL_SITES)
        feed_url = self._page_load(builder, site, "/feed", "", assets=6,
                                   third_party=2)
        # Likes / comments / presence pings: API POSTs.
        for _ in range(int(self.rng.integers(1, 4))):
            builder.post(site, f"/api/graphql?doc_id={self.forge.token(8)}",
                         feed_url, size=int(self.rng.integers(200, 3_000)))
        for _ in range(1):
            shared = self.forge.choice(ALEXA_SITES)
            self._page_load(builder, shared,
                            self.forge.uri(depth=2, extension="html"),
                            feed_url)
        return site

    def _webmail(self, builder: "_SessionBuilder") -> str:
        site = self.forge.choice(WEBMAIL_SITES)
        inbox_url = self._page_load(builder, site, "/mail/inbox", "",
                                    assets=8, third_party=1)
        # Mail sync / send: XHR POSTs to the mail API.
        for _ in range(int(self.rng.integers(1, 4))):
            builder.post(site, f"/sync?u=0&ik={self.forge.token(10)}",
                         inbox_url, size=int(self.rng.integers(100, 5_000)))
        # Attachment downloads: pdf / office doc / occasional exe — the
        # benign payload mix of Table I.
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            ext, ctype = "pdf", "application/pdf"
        elif roll < 0.75:
            ext, ctype = "docx", "application/octet-stream"
        elif roll < 0.95:
            ext, ctype = "exe", "application/x-msdownload"
        else:
            ext, ctype = "jar", "application/java-archive"
        builder.get(site, f"/attachments/{self.forge.token(10)}.{ext}",
                    inbox_url, ctype,
                    size=int(rng.integers(30_000, 4_000_000)),
                    think=(15.0, 120.0))
        # The mailbox keeps living after the download: sync POSTs and
        # folder navigation continue (real webmail never goes quiet the
        # moment an attachment lands).
        for _ in range(int(rng.integers(1, 4))):
            builder.post(site, f"/sync?u=0&ik={self.forge.token(10)}",
                         inbox_url, size=int(rng.integers(100, 3_000)))
        if rng.random() < 0.6:
            builder.get(site, "/mail/folder/" + self.forge.token(6),
                        inbox_url, "text/html",
                        size=int(rng.integers(8_000, 60_000)),
                        think=(5.0, 45.0))
        return site

    def _video(self, builder: "_SessionBuilder") -> str:
        site = self.forge.choice(VIDEO_SITES)
        watch_url = self._page_load(builder, site,
                                    f"/watch?v={self.forge.token(8)}", "",
                                    assets=5, third_party=2)
        cdn = self.forge.subdomain("googlevideo.com")
        for _ in range(int(self.rng.integers(3, 10))):
            builder.get(cdn, self.forge.uri(depth=1, extension="ts", query=True),
                        watch_url, "video/mp2t",
                        size=int(self.rng.integers(500_000, 3_000_000)),
                        think=(4.0, 15.0))
        # Legacy flash players announce themselves on video sites too.
        if self.rng.random() < 0.3 and builder.transactions:
            builder.transactions[-1].request.headers.set(
                "X-Flash-Version", "22,0,0,209"
            )
        self._maybe_ad_redirect(builder, watch_url)
        return site

    def _alexa(self, builder: "_SessionBuilder") -> str:
        first = self.forge.choice(ALEXA_SITES)
        url = self._page_load(builder, first, "/", "",
                              third_party=int(self.rng.integers(0, 3)))
        for _ in range(int(self.rng.integers(0, 2))):
            nxt = self.forge.choice(ALEXA_SITES)
            url = self._page_load(builder, nxt,
                                  self.forge.uri(depth=1, extension="html"),
                                  url)
        return first

    def _email_link(self, builder: "_SessionBuilder") -> str:
        # Clicking a link embedded in an email: no referrer on first hop.
        site = self.forge.domain(tld="com")
        self._page_load(builder, site,
                        self.forge.uri(depth=2, extension="html"), "")
        return ""

    def _unofficial_download(self, builder: "_SessionBuilder") -> str:
        """FP hard case: benign freeware fetched from an unofficial mirror."""
        engine = self.forge.choice(SEARCH_ENGINES[:2])
        query_url = f"http://{engine}/search?q=free+software"
        builder.get(engine, "/search?q=free+software", "", "text/html",
                    size=40_000, think=(5.0, 30.0))
        mirror = self.forge.domain()  # random-TLD unofficial mirror
        page_url = self._page_load(builder, mirror, "/download.html",
                                   query_url, assets=4)
        # One interstitial redirect through an ad gateway, then the binary.
        gateway = self.forge.domain()
        target_url = f"http://{mirror}/files/setup_{self.forge.token(4)}.exe"
        builder.redirect(gateway, "/go?b=" + self.forge.token(6), page_url,
                         target_url)
        builder.get(mirror, f"/files/setup_{self.forge.token(4)}.exe",
                    page_url, "application/x-msdownload",
                    size=int(self.rng.integers(1_000_000, 30_000_000)),
                    think=(3.0, 20.0))
        return engine

    def _aggressive_ads(self, builder: "_SessionBuilder") -> str:
        """FP hard case: an ad-saturated page — redirect chains through
        trackers, machine-paced beacon storms to fresh ad hosts, dead
        creatives — the benign traffic shape closest to an exploit-kit
        run-up."""
        rng = self.rng
        site = self.forge.domain(tld="com")
        page = self._page_load(builder, site, "/article.html", "", assets=3)
        previous = page
        for _ in range(int(rng.integers(1, 3))):
            tracker = self.forge.subdomain("doubleclick.net")
            target = self.forge.domain()
            target_url = (
                f"http://{target}/click?d={self.forge.token(60)}"
            )
            builder.redirect(tracker, "/ddm/clk/" + self.forge.token(10),
                             previous, target_url)
            previous = target_url
        # Beacon storm: rapid-fire tracker hits on many fresh hosts.
        for _ in range(int(rng.integers(4, 10))):
            ad_host = self.forge.domain()
            blob = self.forge.token(int(rng.integers(30, 120)))
            if rng.random() < 0.4:
                builder.post(ad_host, f"/pixel?e={blob}", page,
                             size=int(rng.integers(0, 200)))
            elif rng.random() < 0.15:
                builder.error(ad_host, f"/creative/{blob}.js", page,
                              status=404)
            else:
                builder.get(ad_host, f"/imp?b={blob}", page, "image/gif",
                            size=43, think=(0.02, 0.4))
        return site

    def _torrent(self, builder: "_SessionBuilder") -> str:
        """FP hard case: very large video binaries, exceptionally long."""
        site = self.forge.domain()
        page = self._page_load(builder, site, "/browse", "")
        for _ in range(int(self.rng.integers(2, 6))):
            peer = self.forge.ip()
            builder.get(peer, self.forge.uri(depth=1, extension="bin"),
                        page, "application/octet-stream",
                        size=int(self.rng.integers(246_000_000, 1_100_000_000)),
                        think=(30.0, 300.0))
            # Tracker announce: a referrer-less POST to a raw IP —
            # statistically the shape of a C&C call-back.
            if self.rng.random() < 0.5:
                builder.post(self.forge.ip(),
                             f"/announce?info_hash={self.forge.token(20)}",
                             "", size=0)
        return site


class _SessionBuilder:
    """Accumulates transactions for one benign session."""

    def __init__(self, gen: BenignGenerator, victim: str, tick):
        self._gen = gen
        self._victim = victim
        self._tick = tick
        self.transactions: list[HttpTransaction] = []
        self._cdns: list[str] = []
        self._tracker: str | None = None
        self._cookies: dict[str, str] = {}

    def tracker_host(self) -> str:
        """The session's analytics tracker (one per session, like a
        site's single analytics provider)."""
        if self._tracker is None:
            self._tracker = self._gen.forge.choice(
                ("www.google-analytics.com", "stats.g.doubleclick.net",
                 "px.ads-twitter.com", "bat.bing.com")
            )
        return self._tracker

    def cdn_host(self) -> str:
        """A CDN host, drawn from a small per-session pool (real pages
        reuse the same two or three CDNs across loads)."""
        if len(self._cdns) < 1:
            self._cdns.append(
                self._gen.forge.subdomain(
                    self._gen.forge.choice(
                        ("akamai.net", "cloudfront.net", "googleapis.com")
                    )
                )
            )
        index = int(self._gen.rng.integers(0, len(self._cdns)))
        return self._cdns[index]

    def _headers(self, host: str, referrer: str) -> Headers:
        headers = Headers()
        headers.set("Host", host)
        headers.set("User-Agent", self._gen._ua)
        headers.set("Accept", "*/*")
        if referrer:
            headers.set("Referer", referrer)
        # Per-host session cookie, as any logged-in/stateful site sets —
        # this is the session-ID signal the paper's transaction grouping
        # keys on ([18], Section V-B).
        cookie = self._cookies.get(host)
        if cookie is None:
            cookie = self._gen.forge.token(16)
            self._cookies[host] = cookie
        headers.set("Cookie", f"sid={cookie}")
        return headers

    def get(self, host: str, uri: str, referrer: str, content_type: str,
            size: int, think: tuple[float, float]) -> None:
        """Emit one GET transaction with a 200 response."""
        req_ts = self._tick(*think)
        request = HttpRequest(
            method=HttpMethod.GET, uri=uri, host=host, client=self._victim,
            timestamp=req_ts, headers=self._headers(host, referrer),
        )
        res_headers = Headers()
        res_headers.set("Content-Type", content_type)
        res_headers.set("Content-Length", str(size))
        response = HttpResponse(
            status=200, timestamp=self._tick(0.01, 0.4), headers=res_headers
        )
        self.transactions.append(HttpTransaction(request, response))

    def post(self, host: str, uri: str, referrer: str, size: int) -> None:
        """Emit one POST beacon with a small 200/204 response."""
        req_ts = self._tick(0.05, 0.5)
        request = HttpRequest(
            method=HttpMethod.POST, uri=uri, host=host, client=self._victim,
            timestamp=req_ts, headers=self._headers(host, referrer),
            body=b"\x00" * min(size, 64),
        )
        res_headers = Headers()
        res_headers.set("Content-Type", "text/plain")
        res_headers.set("Content-Length", "2")
        status = 200 if self._gen.rng.random() < 0.8 else 204
        response = HttpResponse(
            status=status, timestamp=self._tick(0.01, 0.3),
            headers=res_headers,
        )
        self.transactions.append(HttpTransaction(request, response))

    def error(self, host: str, uri: str, referrer: str,
              status: int = 404) -> None:
        """Emit one GET answered by an error status."""
        req_ts = self._tick(0.02, 0.3)
        request = HttpRequest(
            method=HttpMethod.GET, uri=uri, host=host, client=self._victim,
            timestamp=req_ts, headers=self._headers(host, referrer),
        )
        res_headers = Headers()
        res_headers.set("Content-Type", "text/html")
        res_headers.set("Content-Length", "512")
        response = HttpResponse(
            status=status, timestamp=self._tick(0.01, 0.2),
            headers=res_headers,
        )
        self.transactions.append(HttpTransaction(request, response))

    def redirect(self, host: str, uri: str, referrer: str,
                 location: str) -> None:
        """Emit one GET answered by a 302 to ``location``."""
        req_ts = self._tick(0.1, 1.0)
        request = HttpRequest(
            method=HttpMethod.GET, uri=uri, host=host, client=self._victim,
            timestamp=req_ts, headers=self._headers(host, referrer),
        )
        res_headers = Headers()
        res_headers.set("Location", location)
        res_headers.set("Content-Length", "0")
        response = HttpResponse(
            status=302, timestamp=self._tick(0.01, 0.2), headers=res_headers
        )
        self.transactions.append(HttpTransaction(request, response))
