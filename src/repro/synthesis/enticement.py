"""Enticement-origin model (Section II-B, Figures 1 and 2).

Encodes the paper's measured distribution of how victims were lured to
malware sites: search engines dominate (Google 37%, Bing 25%), referrers
are empty in 17.76% of traces (intentional concealment), compromised
sites account for 12.84%, privacy-redacted referrers 7.51%, and social
networks under 1%.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.synthesis.entities import NameForge, SOCIAL_SITES

__all__ = ["EnticementKind", "ENTICEMENT_DISTRIBUTION", "Enticement",
           "draw_enticement"]


class EnticementKind(enum.Enum):
    """How the victim reached the first hop of the conversation."""

    GOOGLE = "google"
    BING = "bing"
    COMPROMISED = "compromised"
    EMPTY = "empty"
    REDACTED = "redacted"
    SOCIAL = "social"
    LEGITIMATE = "legitimate"


#: Figure 1 distribution.  The published percentages sum slightly above
#: 100% (category overlap in the paper's accounting), so we keep the
#: published relative masses, give "legitimate sites linking to malicious
#: sites" a small explicit share, and normalize at draw time.
_RAW_DISTRIBUTION: dict[EnticementKind, float] = {
    EnticementKind.GOOGLE: 0.37,
    EnticementKind.BING: 0.25,
    EnticementKind.EMPTY: 0.1776,
    EnticementKind.COMPROMISED: 0.1284,
    EnticementKind.REDACTED: 0.0751,
    EnticementKind.SOCIAL: 0.008,
    EnticementKind.LEGITIMATE: 0.02,
}
_TOTAL = sum(_RAW_DISTRIBUTION.values())
ENTICEMENT_DISTRIBUTION: dict[EnticementKind, float] = {
    kind: mass / _TOTAL for kind, mass in _RAW_DISTRIBUTION.items()
}


class Enticement:
    """A drawn enticement: kind, origin host, referrer URL (may be '')."""

    __slots__ = ("kind", "origin_host", "referrer_url")

    def __init__(self, kind: EnticementKind, origin_host: str,
                 referrer_url: str):
        self.kind = kind
        self.origin_host = origin_host
        self.referrer_url = referrer_url

    @property
    def concealed(self) -> bool:
        """True when the victim's referrer was removed or redacted."""
        return self.kind in (EnticementKind.EMPTY, EnticementKind.REDACTED)

    def __repr__(self) -> str:
        return (
            f"Enticement(kind={self.kind.value}, origin={self.origin_host!r})"
        )


def draw_enticement(rng: np.random.Generator, forge: NameForge) -> Enticement:
    """Sample one enticement from the Figure 1 distribution."""
    kinds = list(ENTICEMENT_DISTRIBUTION)
    weights = np.array([ENTICEMENT_DISTRIBUTION[k] for k in kinds])
    weights = weights / weights.sum()
    kind = kinds[int(rng.choice(len(kinds), p=weights))]
    if kind is EnticementKind.GOOGLE:
        host = "google.com"
        url = f"http://google.com/search?q={forge.token(8)}"
    elif kind is EnticementKind.BING:
        host = "bing.com"
        url = f"http://bing.com/search?q={forge.token(8)}"
    elif kind is EnticementKind.COMPROMISED:
        host = forge.compromised_site()
        url = f"http://{host}{forge.cms_uri()}"
    elif kind is EnticementKind.SOCIAL:
        host = forge.choice(SOCIAL_SITES)
        url = f"http://{host}/l/{forge.token(10)}"
    elif kind is EnticementKind.LEGITIMATE:
        host = forge.domain(tld="com")
        url = f"http://{host}{forge.uri(depth=2, extension='html')}"
    else:  # EMPTY or REDACTED: referrer concealed
        host = ""
        url = ""
    return Enticement(kind=kind, origin_host=host, referrer_url=url)
