"""Exploit-kit infection episode generator.

Synthesizes one complete infection conversation — enticement,
pre-download redirection chain, exploit payload download(s), and
post-download C&C call-backs — calibrated on the per-family statistics of
Table I and the global properties of Section III-D (lifetimes 0.5–4061 s,
average 123 s).  The output is a labelled
:class:`~repro.core.model.Trace` of HTTP transactions; everything
downstream (WCG construction, features, learning) consumes it exactly as
it would consume transactions recovered from a real PCAP.

Hard-case knobs reproduce the paper's misclassification sources
(Section VI-B): ``redirectless`` episodes (11/770 in the corpus),
missing post-download dynamics (~8%), and compressed payload delivery
with no redirections (the paper's dominant false-negative cause).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
    TraceLabel,
)
from repro.synthesis.enticement import Enticement, EnticementKind, draw_enticement
from repro.synthesis.entities import NameForge
from repro.synthesis.families import FamilyProfile
from repro.synthesis.obfuscation import ObfuscationStyle, obfuscate_redirect, random_style
from repro.synthesis.sampling import bounded_int, lognormal_bounded

__all__ = ["EpisodeConfig", "InfectionGenerator"]

_PAYLOAD_CONTENT_TYPES = {
    "pdf": "application/pdf",
    "exe": "application/x-msdownload",
    "jar": "application/java-archive",
    "swf": "application/x-shockwave-flash",
    "xap": "application/x-silverlight-app",
    "crypt": "application/octet-stream",
    "js": "application/javascript",
    "zip": "application/zip",
    "dmg": "application/x-apple-diskimage",
}
_PAYLOAD_SIZE_RANGES = {
    "pdf": (40_000, 900_000),
    "exe": (80_000, 2_500_000),
    "jar": (10_000, 300_000),
    "swf": (20_000, 400_000),
    "xap": (20_000, 400_000),
    "crypt": (50_000, 1_500_000),
    "js": (1_000, 80_000),
    "zip": (50_000, 2_000_000),
    "dmg": (500_000, 8_000_000),
}
_RANSOM_EXTS = ("crypt", "locky", "zepto", "cerber", "encrypted", "locked")


@dataclass
class EpisodeConfig:
    """Per-episode overrides for hard-case injection.

    ``None`` means "draw from the family profile"; explicit values force
    the corresponding behaviour (used by tests and the false-negative
    analysis benches).
    """

    redirectless: bool | None = None
    with_post_download: bool | None = None
    compressed_payload: bool = False
    #: Stealth episodes reproduce the paper's false-negative causes in
    #: combination: no redirections, compressed payload delivery, few
    #: hosts, human-like pacing, no fingerprinting headers — the WCG
    #: shape of benign browsing (Section VI-B).
    stealth: bool = False
    start_time: float | None = None


class InfectionGenerator:
    """Generates infection :class:`Trace` objects for one family."""

    def __init__(self, profile: FamilyProfile, rng: np.random.Generator):
        self.profile = profile
        self.rng = rng
        self.forge = NameForge(rng)
        self._base_time = 1_400_000_000.0

    # -- low-level emit helpers -------------------------------------------

    def _request(
        self,
        method: HttpMethod,
        host: str,
        uri: str,
        ts: float,
        victim: str,
        referrer: str = "",
        user_agent: str = "",
        extra: dict[str, str] | None = None,
    ) -> HttpRequest:
        headers = Headers()
        if referrer:
            headers.set("Referer", referrer)
        headers.set("User-Agent", user_agent or self._ua)
        headers.set("Host", host)
        headers.set("Accept", "*/*")
        for name, value in (extra or {}).items():
            headers.set(name, value)
        return HttpRequest(
            method=method, uri=uri, host=host, client=victim,
            timestamp=ts, headers=headers,
        )

    def _response(
        self,
        status: int,
        ts: float,
        content_type: str = "",
        body: bytes = b"",
        size: int | None = None,
        location: str = "",
    ) -> HttpResponse:
        headers = Headers()
        if content_type:
            headers.set("Content-Type", content_type)
        if location:
            headers.set("Location", location)
        headers.set("Server", "nginx")
        length = size if size is not None else len(body)
        headers.set("Content-Length", str(length))
        return HttpResponse(status=status, timestamp=ts, headers=headers,
                            body=body)

    def _payload_response(self, ext: str, ts: float) -> HttpResponse:
        low, high = _PAYLOAD_SIZE_RANGES.get(ext, (10_000, 500_000))
        size = int(self.rng.integers(low, high))
        ctype = _PAYLOAD_CONTENT_TYPES.get(ext, "application/octet-stream")
        return self._response(200, ts, content_type=ctype, size=size)

    # -- episode assembly ---------------------------------------------------

    def generate(self, config: EpisodeConfig | None = None) -> Trace:
        """Generate one labelled infection episode."""
        config = config or EpisodeConfig()
        rng = self.rng
        profile = self.profile
        self._ua = self.forge.user_agent()
        victim = f"victim-{self.forge.token(6)}"

        duration = lognormal_bounded(rng, 0.5, 4061.0, 123.0)
        start = (
            config.start_time
            if config.start_time is not None
            else self._base_time + float(rng.uniform(0, 3 * 365 * 86400))
        )
        clock = _Clock(start, rng)

        stealth = config.stealth
        redirectless = (
            config.redirectless
            if config.redirectless is not None
            else stealth or bool(rng.random() < profile.redirectless_prob)
        )
        with_post = (
            config.with_post_download
            if config.with_post_download is not None
            else bool(
                rng.random()
                < (0.5 if stealth else profile.post_download_prob)
            )
        )

        target_hosts = (
            int(rng.integers(2, 5))
            if stealth
            else bounded_int(
                rng, profile.hosts.low, profile.hosts.high, profile.hosts.mean
            )
        )
        # Redirect chain lengths are heavy-tailed: Table I pairs means
        # of 1-2 with maxima of 18-30 (Goon), so most episodes hop once
        # or twice while a small fraction runs elaborate TDS chains.
        if redirectless:
            n_redirects = 0
        elif rng.random() < 0.07 and profile.redirects.high > 4:
            n_redirects = int(rng.integers(
                min(4, profile.redirects.high),
                profile.redirects.high + 1,
            ))
        else:
            n_redirects = bounded_int(
                rng, max(profile.redirects.low, 1),
                max(profile.redirects.high, 1),
                max(profile.redirects.mean, 1.0),
            )

        enticement = draw_enticement(rng, self.forge)
        transactions: list[HttpTransaction] = []

        # 1. Pre-download: redirection chain through intermediary hosts.
        exploit_host = self.forge.dga_domain()
        chain_hosts = self._chain_hosts(enticement, n_redirects)
        referrer = enticement.referrer_url
        session_id = self.forge.token(12)
        previous_url = referrer
        for index, host in enumerate(chain_hosts):
            is_last = index == len(chain_hosts) - 1
            next_host = exploit_host if is_last else chain_hosts[index + 1]
            next_url = f"http://{next_host}{self.forge.long_ek_uri()}"
            uri = (
                self.forge.cms_uri()
                if enticement.kind is EnticementKind.COMPROMISED and index == 0
                else self.forge.uri(depth=2, query=True, exploit_kit=index > 0)
            )
            req_ts = clock.tick(rng.uniform(0.05, 0.6))  # short redirect gaps
            request = self._request(
                HttpMethod.GET, host, uri, req_ts, victim, referrer=previous_url
            )
            # Mix of 30x Location redirects and obfuscated content redirects.
            if rng.random() < 0.45:
                response = self._response(
                    302, clock.tick(rng.uniform(0.02, 0.2)), location=next_url
                )
            else:
                style = random_style(rng)
                body = (
                    "<html><head></head><body>"
                    + obfuscate_redirect(next_url, style, rng)
                    + "</body></html>"
                ).encode()
                response = self._response(
                    200, clock.tick(rng.uniform(0.02, 0.3)),
                    content_type="text/html", body=body,
                )
            transactions.append(HttpTransaction(request, response))
            previous_url = f"http://{host}{uri}"

        # 2. Landing page on the exploit server (fingerprinting).
        if stealth:
            landing_uri = self.forge.uri(depth=2, extension="html")
        else:
            landing_uri = self.forge.long_ek_uri() + f"&sid={session_id}"
        req_ts = clock.tick(rng.uniform(0.05, 0.5))
        fingerprint = (
            {"X-Flash-Version": "11,7,700,169"}
            if not stealth and rng.random() < 0.3
            else {}
        )
        landing_req = self._request(
            HttpMethod.GET, exploit_host, landing_uri, req_ts, victim,
            referrer=previous_url,
            extra=fingerprint,
        )
        if stealth:
            landing_body = b"<html><body><p>download page</p></body></html>"
        else:
            landing_body = (
                "<html><body>" + obfuscate_redirect(
                    f"http://{exploit_host}{self.forge.long_ek_uri()}",
                    ObfuscationStyle.CONCAT, rng,
                ) + "<script>var a=navigator.plugins.length;"
                "</script></body></html>"
            ).encode()
        transactions.append(
            HttpTransaction(
                landing_req,
                self._response(200, clock.tick(rng.uniform(0.05, 0.4)),
                               content_type="text/html", body=landing_body),
            )
        )

        # 3. Download stage: exploit payloads per the family mix.
        exploit_ref = f"http://{exploit_host}{landing_uri}"
        payload_exts = self._draw_payloads(config)
        for ext in payload_exts:
            actual_ext = ext
            if ext == "crypt":
                actual_ext = _RANSOM_EXTS[int(rng.integers(0, len(_RANSOM_EXTS)))]
            # Some kits serve payloads from unremarkable short URIs.
            if stealth or rng.random() < 0.5:
                uri = self.forge.uri(depth=2, extension=actual_ext, query=True)
            else:
                uri = self.forge.long_ek_uri(extension=actual_ext)
            req_ts = clock.tick(rng.uniform(0.1, 1.5))
            request = self._request(
                HttpMethod.GET, exploit_host, uri, req_ts, victim,
                referrer=exploit_ref,
            )
            transactions.append(
                HttpTransaction(
                    request,
                    self._payload_response(ext, clock.tick(rng.uniform(0.1, 2.0))),
                )
            )

        # Landing-page furniture: a couple of images/CSS from the chain.
        if not stealth:
            furniture_host = chain_hosts[-1] if chain_hosts else exploit_host
            for _ in range(int(rng.integers(2, 6))):
                req_ts = clock.tick(rng.uniform(0.02, 0.3))
                request = self._request(
                    HttpMethod.GET, furniture_host,
                    self.forge.uri(depth=2, extension="gif"),
                    req_ts, victim, referrer=previous_url,
                )
                transactions.append(
                    HttpTransaction(
                        request,
                        self._response(
                            200, clock.tick(rng.uniform(0.01, 0.2)),
                            content_type="image/gif",
                            size=int(rng.integers(200, 20_000)),
                        ),
                    )
                )

        # Supporting JS fetches around the exploit (Table I's *.js column).
        js_rate = self.profile.payload_rate.get("js", 1.0)
        for _ in range(max(2, int(rng.poisson(min(js_rate + 2.0, 9.0))))):
            host = exploit_host if rng.random() < 0.6 else (
                chain_hosts[-1] if chain_hosts else exploit_host
            )
            req_ts = clock.tick(rng.uniform(0.02, 0.5))
            request = self._request(
                HttpMethod.GET, host, self.forge.uri(extension="js", query=True),
                req_ts, victim, referrer=exploit_ref,
            )
            transactions.append(
                HttpTransaction(request, self._payload_response("js",
                                clock.tick(rng.uniform(0.02, 0.3)))))

        # 4. Post-download: C&C call-backs to never-before-seen hosts
        #    (Section II-D: hosts unseen prior to or during download).
        if with_post:
            n_cnc = int(rng.integers(1, 4))
            for _ in range(n_cnc):
                cnc = self.forge.dga_domain() if rng.random() < 0.6 else self.forge.ip()
                for _ in range(int(rng.integers(2, 5))):
                    req_ts = clock.tick(rng.uniform(0.5, 8.0))
                    request = self._request(
                        HttpMethod.POST, cnc,
                        self.forge.uri(depth=1, extension="php", query=True),
                        req_ts, victim,
                    )
                    request.headers.remove("Referer")
                    roll = rng.random()
                    if roll < 0.7:
                        response = self._response(
                            200, clock.tick(rng.uniform(0.1, 1.0)),
                            content_type="text/plain",
                            body=self.forge.token(24).encode(),
                        )
                    elif roll < 0.92:
                        response = self._response(
                            404, clock.tick(rng.uniform(0.1, 1.0)),
                            content_type="text/html", body=b"<html>404</html>",
                        )
                    else:
                        response = None  # C&C never answered
                    transactions.append(HttpTransaction(request, response))

        # 5. Filler hosts to hit the family's conversation width: ad
        #    beacons, analytics, CDN fetches riding the same session.
        current_hosts = {victim, exploit_host, *chain_hosts}
        while len(current_hosts) < target_hosts:
            filler = self.forge.domain()
            current_hosts.add(filler)
            req_ts = clock.tick(rng.uniform(0.05, 2.0))
            ext = "js" if rng.random() < 0.5 else ""
            request = self._request(
                HttpMethod.GET, filler,
                self.forge.uri(depth=1, extension=ext, query=True),
                req_ts, victim, referrer=previous_url,
            )
            status = 200 if stealth or rng.random() < 0.8 else int(
                rng.choice((404, 404, 403))
            )
            body_type = "application/javascript" if ext else "image/gif"
            transactions.append(
                HttpTransaction(
                    request,
                    self._response(status, clock.tick(rng.uniform(0.02, 0.4)),
                                   content_type=body_type,
                                   size=int(rng.integers(100, 20_000))),
                )
            )

        # Machine-paced cap: infections run at exploit-kit speed, so the
        # episode lifetime cannot stretch past ~6 s per transaction — this
        # keeps Avg-Inter-Transact-Time *below* human browsing think time,
        # the paper's top-ranked discriminator (Table IV), while episode
        # lifetimes stay in the reported 0.5–4061 s band.  Stealth
        # episodes deliberately pace like a human instead.
        if stealth:
            duration = float(
                rng.uniform(15.0, 60.0) * max(1, len(transactions))
            )
            duration = min(duration, 4061.0)
        else:
            pace = float(rng.uniform(1.5, 5.0))
            duration = min(duration, pace * max(1, len(transactions)))
        clock.stretch_to(start, duration, transactions)
        trace = Trace(
            transactions=transactions,
            label=TraceLabel.INFECTION,
            family=self.profile.name,
            origin=enticement.origin_host,
            meta={
                "enticement": enticement.kind.value,
                "redirectless": redirectless,
                "post_download": with_post,
                "compressed_payload": config.compressed_payload,
                "stealth": config.stealth,
                "exploit_host": exploit_host,
                "payload_exts": payload_exts,
            },
        )
        return trace

    def _chain_hosts(self, enticement: Enticement, n_redirects: int) -> list[str]:
        """Intermediary hosts for the redirect chain, in hop order."""
        hosts: list[str] = []
        if enticement.kind is EnticementKind.COMPROMISED:
            hosts.append(enticement.origin_host or self.forge.compromised_site())
        elif n_redirects > 0:
            hosts.append(self.forge.compromised_site())
        for _ in range(max(0, n_redirects - 1)):
            hosts.append(self.forge.domain())
        return hosts

    def _draw_payloads(self, config: EpisodeConfig) -> list[str]:
        """Payload extensions dropped this episode, per family rates."""
        if config.compressed_payload or config.stealth:
            # FN hard case: compressed delivery hides the exploit type.
            return ["zip"]
        rng = self.rng
        exts: list[str] = []
        for ext, rate in self.profile.payload_rate.items():
            if ext == "js":
                continue  # handled as supporting fetches
            count = int(rng.poisson(min(rate, 4.0)))
            exts.extend([ext] * count)
        if not exts:
            sig = self.profile.signature_payloads
            exts.append(sig[int(rng.integers(0, len(sig)))])
        rng.shuffle(exts)
        return exts[:8]


class _Clock:
    """Monotonic episode clock with post-hoc duration normalization."""

    def __init__(self, start: float, rng: np.random.Generator):
        self.now = start
        self.rng = rng

    def tick(self, delta: float) -> float:
        """Advance by ``delta`` seconds and return the new time."""
        self.now += max(1e-3, float(delta))
        return self.now

    @staticmethod
    def stretch_to(
        start: float, duration: float, transactions: list[HttpTransaction]
    ) -> None:
        """Rescale all timestamps so the episode spans ``duration``.

        Keeps relative ordering and pacing; the paper's lifetimes span
        0.5–4061 s so raw tick accumulation is rescaled to the sampled
        episode duration.
        """
        if not transactions:
            return
        stamps = [t.request.timestamp for t in transactions]
        lo, hi = min(stamps), max(stamps)
        span = hi - lo
        if span <= 0:
            return
        scale = duration / span
        for txn in transactions:
            txn.request.timestamp = start + (txn.request.timestamp - lo) * scale
            if txn.response is not None:
                txn.response.timestamp = start + (
                    txn.response.timestamp - lo
                ) * scale
                if txn.response.timestamp < txn.request.timestamp:
                    txn.response.timestamp = txn.request.timestamp + 1e-3
