"""Exploit-kit family profiles calibrated on Table I of the paper.

Each :class:`FamilyProfile` encodes one row of the ground-truth table:
trace counts, host-count and redirect-count ranges, and per-family unique
payload counts by extension.  The infection generator draws per-episode
parameters from these profiles so the synthetic corpus reproduces the
table's marginals (the calibration is asserted in
``benchmarks/test_bench_table1.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Range", "FamilyProfile", "EXPLOIT_KIT_FAMILIES", "BENIGN_PROFILE",
           "family_by_name", "TOTAL_INFECTION_TRACES"]


@dataclass(frozen=True)
class Range:
    """A (min, max, avg) triple as reported in Table I."""

    low: int
    high: int
    mean: float


@dataclass(frozen=True)
class FamilyProfile:
    """One Table I row plus behavioural knobs used by the generator.

    ``payload_counts`` are *corpus-wide unique payload counts* per
    extension; dividing by ``trace_count`` yields the per-episode rate the
    generator targets.  ``post_download_prob`` defaults to the paper's
    708/770 call-back prevalence; ``redirectless_prob`` to the 11/770
    WCGs observed with no redirections (Section VII).
    """

    name: str
    trace_count: int
    hosts: Range
    redirects: Range
    payload_counts: dict[str, int] = field(default_factory=dict)
    post_download_prob: float = 708 / 770
    redirectless_prob: float = 11 / 770
    #: Exploit payload of choice when the episode drops a single file.
    signature_payloads: tuple[str, ...] = ("exe", "jar")

    @property
    def payload_rate(self) -> dict[str, float]:
        """Expected payloads per episode, by extension."""
        return {
            ext: count / self.trace_count
            for ext, count in self.payload_counts.items()
        }


#: Table I, infection rows.  payload_counts keys use extension names
#: (pdf/exe/jar/swf/crypt/js) exactly as the table's columns.
EXPLOIT_KIT_FAMILIES: tuple[FamilyProfile, ...] = (
    FamilyProfile(
        name="Angler", trace_count=253,
        hosts=Range(2, 74, 6), redirects=Range(0, 18, 1),
        payload_counts={"pdf": 0, "exe": 80, "jar": 133, "swf": 0,
                        "crypt": 64, "js": 1163},
        signature_payloads=("jar", "exe", "crypt", "swf"),
    ),
    FamilyProfile(
        name="RIG", trace_count=62,
        hosts=Range(2, 17, 4), redirects=Range(0, 3, 1),
        payload_counts={"pdf": 0, "exe": 35, "jar": 74, "swf": 13,
                        "crypt": 0, "js": 240},
        signature_payloads=("jar", "exe", "swf"),
    ),
    FamilyProfile(
        name="Nuclear", trace_count=132,
        hosts=Range(2, 213, 8), redirects=Range(0, 18, 1),
        payload_counts={"pdf": 8, "exe": 730, "jar": 146, "swf": 13,
                        "crypt": 11, "js": 935},
        signature_payloads=("exe", "jar"),
    ),
    FamilyProfile(
        name="Magnitude", trace_count=43,
        hosts=Range(2, 231, 20), redirects=Range(0, 12, 2),
        payload_counts={"pdf": 0, "exe": 862, "jar": 22, "swf": 0,
                        "crypt": 2, "js": 330},
        signature_payloads=("exe",),
    ),
    FamilyProfile(
        name="SweetOrange", trace_count=33,
        hosts=Range(2, 90, 8), redirects=Range(0, 6, 1),
        payload_counts={"pdf": 0, "exe": 310, "jar": 22, "swf": 0,
                        "crypt": 0, "js": 227},
        signature_payloads=("exe", "jar"),
    ),
    FamilyProfile(
        name="FlashPack", trace_count=29,
        hosts=Range(2, 15, 5), redirects=Range(0, 8, 2),
        payload_counts={"pdf": 0, "exe": 556, "jar": 35, "swf": 0,
                        "crypt": 0, "js": 159},
        signature_payloads=("exe", "swf"),
    ),
    FamilyProfile(
        name="Neutrino", trace_count=40,
        hosts=Range(2, 30, 6), redirects=Range(0, 14, 2),
        payload_counts={"pdf": 0, "exe": 45, "jar": 31, "swf": 5,
                        "crypt": 6, "js": 217},
        signature_payloads=("jar", "exe"),
    ),
    FamilyProfile(
        name="Goon", trace_count=19,
        hosts=Range(2, 90, 9), redirects=Range(0, 30, 2),
        payload_counts={"pdf": 0, "exe": 78, "jar": 15, "swf": 10,
                        "crypt": 0, "js": 71},
        signature_payloads=("exe", "swf"),
    ),
    FamilyProfile(
        name="Fiesta", trace_count=89,
        hosts=Range(2, 182, 7), redirects=Range(0, 3, 1),
        payload_counts={"pdf": 21, "exe": 226, "jar": 72, "swf": 63,
                        "crypt": 0, "js": 414},
        signature_payloads=("exe", "jar", "swf", "pdf"),
    ),
    FamilyProfile(
        name="OtherKits", trace_count=70,
        hosts=Range(2, 68, 4), redirects=Range(0, 5, 1),
        payload_counts={"pdf": 1, "exe": 420, "jar": 13, "swf": 4,
                        "crypt": 0, "js": 271},
        signature_payloads=("exe",),
    ),
)

#: Table I, benign row.
BENIGN_PROFILE = FamilyProfile(
    name="Benign", trace_count=980,
    hosts=Range(2, 34, 3), redirects=Range(0, 2, 0),
    payload_counts={"pdf": 60, "exe": 30, "jar": 3, "swf": 0,
                    "crypt": 0, "js": 138},
    post_download_prob=0.0,
    redirectless_prob=0.0,
)

TOTAL_INFECTION_TRACES = sum(f.trace_count for f in EXPLOIT_KIT_FAMILIES)

_BY_NAME = {profile.name.lower(): profile for profile in EXPLOIT_KIT_FAMILIES}
_BY_NAME["benign"] = BENIGN_PROFILE


def family_by_name(name: str) -> FamilyProfile:
    """Look up a profile by (case-insensitive) family name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown family {name!r}; known: {known}") from None
