"""Case-study scenario generators (Sections VI-C and VI-D).

``forensic_streaming_session`` reproduces the free-live-streaming capture
of Case Study 1: a 90-minute session on a streaming site with 18 tabs,
3 player interruptions each followed by a fake "out-of-date player"
download lure, 32 downloaded payloads, a longest redirect chain of 4,
12 unique remote domains, and ~3,011 HTTP transactions in total —
of which 5 download sequences are genuinely infectious (3 fake Flash
player executables, 1 JAR, 1 PDF with an embedded exploit that AV
engines initially miss).

``enterprise_live_session`` reproduces the Case Study 2 mini-enterprise
stream: three hosts (Windows/IE, Ubuntu/Firefox, MacOS/Chrome) browsing
for 48 hours, 62 downloads with Table VI's per-host payload mix, and 8
infectious episodes (4 Windows, 3 Ubuntu, 1 MacOS) plus 2 malicious PDFs
on the Windows host whose maliciousness is content-borne (DynaMiner's
expected misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Trace
from repro.synthesis.benign import BenignGenerator, BenignScenario
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator

__all__ = [
    "StreamedSession",
    "DownloadRecord",
    "forensic_streaming_session",
    "enterprise_live_session",
]


@dataclass
class DownloadRecord:
    """One downloaded payload with its ground-truth maliciousness."""

    host: str
    client: str
    extension: str
    malicious: bool
    content_borne: bool = False  # malicious only via embedded content
    sha256: str = ""


@dataclass
class StreamedSession:
    """A merged multi-episode HTTP stream plus per-download ground truth."""

    trace: Trace
    downloads: list[DownloadRecord] = field(default_factory=list)
    infectious_episodes: int = 0
    clients: list[str] = field(default_factory=list)

    @property
    def transaction_count(self) -> int:
        """Total request/response pairs in the stream."""
        return len(self.trace.transactions)


_DOWNLOAD_EXTS = ("exe", "jar", "pdf", "swf", "zip", "dmg", "docx", "bin")


def _downloads_in(trace: Trace, malicious: bool,
                  content_borne: bool = False) -> list[DownloadRecord]:
    """Extract download records from a trace's transactions."""
    records = []
    for txn in trace.transactions:
        uri = txn.request.uri
        ext = uri.split("?")[0].rsplit(".", 1)[-1].lower() if "." in uri.split("?")[0].rsplit("/", 1)[-1] else ""
        if ext in _DOWNLOAD_EXTS and txn.status == 200:
            records.append(
                DownloadRecord(
                    host=txn.server, client=txn.client, extension=ext,
                    malicious=malicious, content_borne=content_borne,
                    sha256=f"{hash((txn.server, uri)) & 0xFFFFFFFFFFFF:012x}",
                )
            )
    return records


def forensic_streaming_session(seed: int = 2016) -> StreamedSession:
    """Build the Case Study 1 stream (free live-streaming replay)."""
    rng = np.random.default_rng(seed)
    victim = "fan-laptop"
    streaming_host = "atdhe.net"
    benign_gen = BenignGenerator(rng)
    benign_gen._base_time = 1_468_166_400.0  # 2016-07-10, kickoff
    forge = benign_gen.forge

    all_traces: list[Trace] = []
    downloads: list[DownloadRecord] = []
    infectious = 0

    # Background: the streaming session itself + the 18 open tabs.
    # Streaming segments dominate the 3,011-transaction volume.
    stream_trace = benign_gen.generate(BenignScenario.VIDEO)
    all_traces.append(stream_trace)
    for _ in range(17):
        scenario = (BenignScenario.ALEXA if rng.random() < 0.7
                    else BenignScenario.SEARCH)
        all_traces.append(benign_gen.generate(scenario))

    # Benign downloads clicked during the session (bulk of the 32).
    for _ in range(16):
        trace = benign_gen.generate(BenignScenario.WEBMAIL)
        all_traces.append(trace)
        downloads.extend(_downloads_in(trace, malicious=False))

    # The 3 player interruptions -> fake "out-of-date player" lures.
    # 3 executables + 1 JAR + 1 PDF are genuinely infectious (5 alerts).
    angler = family_by_name("Angler")
    fiesta = family_by_name("Fiesta")
    lures = [("Angler", angler), ("Angler", angler), ("Angler", angler),
             ("Neutrino", family_by_name("Neutrino")),
             ("Fiesta", fiesta)]
    for _, profile in lures:
        gen = InfectionGenerator(profile, rng)
        gen._base_time = 1_468_166_400.0
        trace = gen.generate(EpisodeConfig(with_post_download=True))
        # Re-home the episode onto the streaming victim.
        for txn in trace.transactions:
            txn.request.client = victim
        all_traces.append(trace)
        infectious += 1
        content_borne = profile is fiesta  # the PDF AV initially misses
        downloads.extend(
            _downloads_in(trace, malicious=True, content_borne=content_borne)
        )

    merged = _merge(all_traces, victim_override=victim,
                    target_transactions=3011, rng=rng,
                    filler_host=streaming_host, forge=forge,
                    benign_gen=benign_gen)
    return StreamedSession(
        trace=merged,
        downloads=downloads[:32],
        infectious_episodes=infectious,
        clients=[victim],
    )


#: Table VI per-host benign download mixes: (pdf, exe, jar).
_ENTERPRISE_MIX = {
    "win-host": {"pdf": 11, "exe": 6, "jar": 5},
    "ubuntu-host": {"pdf": 15, "exe": 0, "jar": 8},
    "macos-host": {"pdf": 6, "exe": 8, "jar": 3},
}
#: Infectious episodes per host (Table VI alert row): payload of each.
_ENTERPRISE_INFECTIONS = {
    "win-host": ["swf", "swf", "swf", "jar"],
    "ubuntu-host": ["jar", "jar", "jar"],
    "macos-host": ["dmg"],
}


def enterprise_live_session(seed: int = 48) -> StreamedSession:
    """Build the Case Study 2 stream (48 h, 3-host mini-enterprise)."""
    rng = np.random.default_rng(seed)
    benign_gen = BenignGenerator(rng)
    all_traces: list[Trace] = []
    downloads: list[DownloadRecord] = []
    infectious = 0

    for host, mix in _ENTERPRISE_MIX.items():
        # Routine browsing background per host.
        for _ in range(6):
            trace = benign_gen.generate()
            for txn in trace.transactions:
                txn.request.client = host
            all_traces.append(trace)
        # Benign downloads matching the Table VI mix (minus the
        # infectious ones accounted for below).
        for ext, count in mix.items():
            for _ in range(count):
                trace = benign_gen.generate(BenignScenario.WEBMAIL)
                for txn in trace.transactions:
                    txn.request.client = host
                all_traces.append(trace)
                recs = _downloads_in(trace, malicious=False)
                for rec in recs:
                    rec.extension = ext
                    rec.client = host
                downloads.extend(recs[:1])

    # Infectious episodes per Table VI.
    profile_for = {"swf": "Angler", "jar": "Neutrino", "dmg": "OtherKits"}
    for host, payloads in _ENTERPRISE_INFECTIONS.items():
        for ext in payloads:
            profile = family_by_name(profile_for[ext])
            gen = InfectionGenerator(profile, rng)
            trace = gen.generate(EpisodeConfig(with_post_download=True))
            for txn in trace.transactions:
                txn.request.client = host
            all_traces.append(trace)
            infectious += 1
            recs = _downloads_in(trace, malicious=True)
            for rec in recs:
                rec.client = host
                rec.extension = ext  # Table VI's per-host payload type
            downloads.extend(recs[:1])

    # The 2 content-borne malicious PDFs on the Windows host: benign-shaped
    # conversations whose payload carries an embedded Flash exploit.
    for _ in range(2):
        trace = benign_gen.generate(BenignScenario.WEBMAIL)
        for txn in trace.transactions:
            txn.request.client = "win-host"
        all_traces.append(trace)
        recs = _downloads_in(trace, malicious=True, content_borne=True)
        for rec in recs:
            rec.client = "win-host"
            rec.extension = "pdf"
        downloads.extend(recs[:1])

    merged = _merge(all_traces, victim_override=None,
                    target_transactions=None, rng=rng,
                    window=48 * 3600.0)
    return StreamedSession(
        trace=merged,
        downloads=downloads,
        infectious_episodes=infectious,
        clients=list(_ENTERPRISE_MIX),
    )


def _merge(
    traces: list[Trace],
    victim_override: str | None,
    target_transactions: int | None,
    rng: np.random.Generator,
    filler_host: str = "",
    forge=None,
    benign_gen: BenignGenerator | None = None,
    window: float = 5400.0,
) -> Trace:
    """Interleave episode traces into one wall-clock-ordered stream.

    Episode start times scatter uniformly over ``window`` seconds — the
    90-minute streaming session for Case Study 1, the 48-hour capture
    for Case Study 2 (dense packing would fuse unrelated sessions in the
    detector's session table, which the real timelines do not).
    """
    transactions = []
    base = min(
        (t.transactions[0].timestamp for t in traces if t.transactions),
        default=0.0,
    )
    for trace in traces:
        if not trace.transactions:
            continue
        offset = base + float(rng.uniform(0, window)) - trace.transactions[0].timestamp
        for txn in trace.transactions:
            txn.request.timestamp += offset
            if txn.response is not None:
                txn.response.timestamp += offset
            if victim_override is not None:
                txn.request.client = victim_override
            transactions.append(txn)
    # Pad with streaming-segment fetches to reach the published volume.
    if target_transactions is not None and filler_host and benign_gen is not None:
        builder_rng = rng
        ts = base
        from repro.core.model import (
            Headers, HttpMethod, HttpRequest, HttpResponse, HttpTransaction,
        )
        while len(transactions) < target_transactions:
            ts += float(builder_rng.uniform(1.0, 3.0))
            headers = Headers({"Host": filler_host,
                               "Referer": f"http://{filler_host}/live"})
            request = HttpRequest(
                method=HttpMethod.GET,
                uri=f"/segments/{forge.token(8)}.ts",
                host=filler_host,
                client=victim_override or "fan-laptop",
                timestamp=ts,
                headers=headers,
            )
            res_headers = Headers({"Content-Type": "video/mp2t",
                                   "Content-Length": "1400000"})
            response = HttpResponse(status=200, timestamp=ts + 0.2,
                                    headers=res_headers)
            transactions.append(HttpTransaction(request, response))
        transactions = transactions[:target_transactions]
    return Trace(transactions=transactions, label=None,
                 meta={"merged_episodes": len(traces)})
