"""Calibrated trace synthesis standing in for the paper's PCAP corpora.

See DESIGN.md §2 for the substitution rationale: every generator is
calibrated on statistics published in the paper (Table I, Figures 1-4,
Section III-D global properties) so the feature distributions the
classifier sees match the paper's.
"""

from repro.synthesis.benign import BenignGenerator, BenignScenario, SCENARIO_WEIGHTS
from repro.synthesis.casestudy import (
    DownloadRecord,
    StreamedSession,
    enterprise_live_session,
    forensic_streaming_session,
)
from repro.synthesis.corpus import Corpus, ground_truth_corpus, validation_corpus
from repro.synthesis.enticement import (
    ENTICEMENT_DISTRIBUTION,
    Enticement,
    EnticementKind,
    draw_enticement,
)
from repro.synthesis.entities import NameForge, TRUSTED_VENDORS
from repro.synthesis.families import (
    BENIGN_PROFILE,
    EXPLOIT_KIT_FAMILIES,
    FamilyProfile,
    Range,
    family_by_name,
)
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator
from repro.synthesis.obfuscation import ObfuscationStyle, obfuscate_redirect

__all__ = [
    "BENIGN_PROFILE",
    "BenignGenerator",
    "BenignScenario",
    "Corpus",
    "DownloadRecord",
    "ENTICEMENT_DISTRIBUTION",
    "EXPLOIT_KIT_FAMILIES",
    "Enticement",
    "EnticementKind",
    "EpisodeConfig",
    "FamilyProfile",
    "InfectionGenerator",
    "NameForge",
    "ObfuscationStyle",
    "Range",
    "SCENARIO_WEIGHTS",
    "StreamedSession",
    "TRUSTED_VENDORS",
    "draw_enticement",
    "enterprise_live_session",
    "family_by_name",
    "forensic_streaming_session",
    "ground_truth_corpus",
    "obfuscate_redirect",
    "validation_corpus",
]
