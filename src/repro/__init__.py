"""DynaMiner reproduction: payload-agnostic web-conversation-graph
analytics for on-the-wire malware detection (Eshete & Venkatakrishnan,
DSN 2017).

Public API tour:

* :mod:`repro.core` — the WCG abstraction: HTTP domain model, graph
  construction, redirect inference, stage labeling, session grouping.
* :mod:`repro.net` — pcap/TCP/HTTP wire substrate (round-trips synthetic
  traces through real packet bytes).
* :mod:`repro.synthesis` — calibrated corpus generators standing in for
  the paper's PCAP datasets (see DESIGN.md §2).
* :mod:`repro.features` — the 37 payload-agnostic features of Table II.
* :mod:`repro.learning` — from-scratch CART + probability-averaging
  Ensemble Random Forest, metrics, CV, gain-ratio ranking.
* :mod:`repro.detection` — the on-the-wire detector (clues, session
  watches, vendor weeding, alerts, replay drivers).
* :mod:`repro.obs` — pipeline observability: metrics registry, timing
  spans, structured logging, JSON-lines stats snapshots (DESIGN.md §11).
* :mod:`repro.vtsim` — simulated VirusTotal baseline with signature lag.
* :mod:`repro.analytics` / :mod:`repro.experiments` — the offline study
  and one runner per paper table/figure.

Quickstart::

    from repro import quick_detector
    detector, corpus = quick_detector(scale=0.2)
    for trace in corpus.infections[:3]:
        alerts = detector.process_stream(trace.transactions)
        print(trace.family, "->", len(alerts), "alert(s)")
"""

from repro.core import Trace, WebConversationGraph, build_wcg
from repro.detection import CluePolicy, DetectorConfig, OnTheWireDetector
from repro.features import FeatureExtractor, extract_matrix
from repro.learning import EnsembleRandomForest
from repro.synthesis import Corpus, ground_truth_corpus, validation_corpus

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "CluePolicy",
    "DetectorConfig",
    "EnsembleRandomForest",
    "FeatureExtractor",
    "OnTheWireDetector",
    "Trace",
    "WebConversationGraph",
    "build_wcg",
    "extract_matrix",
    "ground_truth_corpus",
    "quick_detector",
    "validation_corpus",
]


def quick_detector(
    seed: int = 7, scale: float = 0.25
) -> tuple[OnTheWireDetector, Corpus]:
    """Train a paper-configured detector on a ground-truth corpus.

    Returns the ready-to-stream detector together with the corpus it was
    trained on.  Intended for quickstarts and demos; real deployments
    should train at ``scale=1.0``.
    """
    from repro.detection.training import training_matrix

    corpus = ground_truth_corpus(seed=seed, scale=scale)
    X, y = training_matrix(corpus.traces, augment_prefixes=True)
    classifier = EnsembleRandomForest(n_trees=20, random_state=seed)
    classifier.fit(X, y)
    return OnTheWireDetector(classifier), corpus
