"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "table5" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["run", "fig1", "--scale", "0.05", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "nonexistent"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_complete(self):
        expected = {"table1", "fig1", "fig2", "fig3", "fig4", "table3", "table4",
                    "fig10", "table5", "cs1", "table6", "evasion", "baselines", "families",
                    "ablation-voting", "ablation-forest"}
        assert expected == set(EXPERIMENTS)


class TestToolWorkflow:
    """train -> synth -> detect, the deployment path."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "model.json")
        assert main(["train", "--out", path, "--scale", "0.05",
                     "--seed", "11"]) == 0
        return path

    def test_train_writes_model(self, model_path):
        import json
        with open(model_path) as handle:
            payload = json.load(handle)
        assert payload["model"] == "EnsembleRandomForest"
        assert len(payload["trees"]) == 20

    def test_synth_benign(self, tmp_path, capsys):
        pcap = str(tmp_path / "b.pcap")
        assert main(["synth", pcap, "--kind", "benign", "--seed", "3"]) == 0
        assert "benign" in capsys.readouterr().out

    def test_synth_unknown_family(self, tmp_path, capsys):
        pcap = str(tmp_path / "x.pcap")
        assert main(["synth", pcap, "--kind", "NotAKit"]) == 2

    def test_detect_infection_pcap(self, model_path, tmp_path, capsys):
        pcap = str(tmp_path / "angler.pcap")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "5"]) == 0
        code = main(["detect", pcap, "--model", model_path,
                     "--threshold", "0.5"])
        out = capsys.readouterr().out
        assert code == 1  # alert raised -> nonzero exit
        assert "ALERT" in out

    def test_detect_benign_pcap(self, model_path, tmp_path, capsys):
        pcap = str(tmp_path / "benign.pcap")
        assert main(["synth", pcap, "--kind", "benign", "--seed", "9"]) == 0
        code = main(["detect", pcap, "--model", model_path])
        assert code == 0
        assert "0 alert(s)" in capsys.readouterr().out
