"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "table5" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["run", "fig1", "--scale", "0.05", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "nonexistent"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_complete(self):
        expected = {"table1", "fig1", "fig2", "fig3", "fig4", "table3", "table4",
                    "fig10", "table5", "cs1", "table6", "evasion", "baselines", "families",
                    "ablation-voting", "ablation-forest"}
        assert expected == set(EXPERIMENTS)


class TestToolWorkflow:
    """train -> synth -> detect, the deployment path."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "model.json")
        assert main(["train", "--out", path, "--scale", "0.05",
                     "--seed", "11"]) == 0
        return path

    def test_train_writes_model(self, model_path):
        import json
        with open(model_path) as handle:
            payload = json.load(handle)
        assert payload["model"] == "EnsembleRandomForest"
        assert len(payload["trees"]) == 20

    def test_synth_benign(self, tmp_path, capsys):
        pcap = str(tmp_path / "b.pcap")
        assert main(["synth", pcap, "--kind", "benign", "--seed", "3"]) == 0
        assert "benign" in capsys.readouterr().out

    def test_synth_unknown_family(self, tmp_path, capsys):
        pcap = str(tmp_path / "x.pcap")
        assert main(["synth", pcap, "--kind", "NotAKit"]) == 2

    def test_detect_infection_pcap(self, model_path, tmp_path, capsys):
        pcap = str(tmp_path / "angler.pcap")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "5"]) == 0
        code = main(["detect", pcap, "--model", model_path,
                     "--threshold", "0.5"])
        out = capsys.readouterr().out
        assert code == 1  # alert raised -> nonzero exit
        assert "ALERT" in out

    def test_detect_benign_pcap(self, model_path, tmp_path, capsys):
        pcap = str(tmp_path / "benign.pcap")
        assert main(["synth", pcap, "--kind", "benign", "--seed", "9"]) == 0
        code = main(["detect", pcap, "--model", model_path])
        assert code == 0
        assert "0 alert(s)" in capsys.readouterr().out

    def test_detect_workers_matches_single_process(self, model_path,
                                                   tmp_path, capsys):
        """``detect --workers 2`` runs the sharded daemon and must
        print the identical alert lines and summary counts the
        single-process path prints (the CLI face of the parity
        contract)."""
        pcap = str(tmp_path / "angler2.pcap")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "7"]) == 0
        capsys.readouterr()  # drop the synth line
        single_code = main(["detect", pcap, "--model", model_path,
                            "--threshold", "0.5"])
        single_out = capsys.readouterr().out
        sharded_code = main(["detect", pcap, "--model", model_path,
                             "--threshold", "0.5", "--workers", "2"])
        sharded_out = capsys.readouterr().out
        assert sharded_code == single_code == 1
        assert sharded_out == single_out
        assert "ALERT" in sharded_out


@pytest.fixture(scope="module")
def cli_model(tmp_path_factory):
    """One trained model JSON shared by the error/metrics tests."""
    path = str(tmp_path_factory.mktemp("cli-model") / "model.json")
    assert main(["train", "--out", path, "--scale", "0.05",
                 "--seed", "11"]) == 0
    return path


class TestCliErrors:
    """Actionable errors, not tracebacks, for operator mistakes."""

    def _pcap(self, tmp_path):
        pcap = str(tmp_path / "b.pcap")
        assert main(["synth", pcap, "--kind", "benign", "--seed", "3"]) == 0
        return pcap

    def test_detect_missing_model(self, tmp_path, capsys):
        pcap = self._pcap(tmp_path)
        missing = str(tmp_path / "nope.json")
        assert main(["detect", pcap, "--model", missing]) == 2
        err = capsys.readouterr().err
        assert "model file not found" in err
        assert "Traceback" not in err

    def test_detect_corrupt_model(self, tmp_path, capsys):
        pcap = self._pcap(tmp_path)
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json at all")
        assert main(["detect", pcap, "--model", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert "cannot load model" in err
        assert "Traceback" not in err

    def test_detect_wrong_payload_model(self, tmp_path, capsys):
        pcap = self._pcap(tmp_path)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"model": "SomethingElse"}')
        assert main(["detect", pcap, "--model", str(wrong)]) == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_detect_missing_capture(self, cli_model, tmp_path, capsys):
        assert main(["detect", str(tmp_path / "missing.pcap"),
                     "--model", cli_model]) == 2
        assert "capture file not found" in capsys.readouterr().err

    def test_train_unwritable_out(self, tmp_path, capsys):
        out = str(tmp_path / "no" / "such" / "dir" / "model.json")
        assert main(["train", "--out", out, "--scale", "0.05",
                     "--seed", "11"]) == 2
        assert "cannot write model" in capsys.readouterr().err


class TestCliTracing:
    def _traced_detect(self, cli_model, tmp_path, extra=()):
        from repro.obs import get_tracer, set_tracer

        pcap = str(tmp_path / "angler.pcap")
        trace = str(tmp_path / "trace.jsonl")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "5"]) == 0
        previous = get_tracer()
        try:
            code = main(["detect", pcap, "--model", cli_model,
                         "--threshold", "0.5", "--trace-out", trace,
                         *extra])
        finally:
            # --trace swaps the process-wide tracer; put it back.
            set_tracer(previous)
        assert code == 1  # the Angler capture alerts
        return trace

    def test_detect_trace_out_writes_jsonl(self, cli_model, tmp_path):
        from repro.obs import read_trace

        trace = self._traced_detect(cli_model, tmp_path)
        events = read_trace(trace)
        assert events
        kinds = {event["kind"] for event in events}
        assert {"watch", "clue", "score", "verdict"} <= kinds
        alerts = [e for e in events
                  if e["kind"] == "verdict"
                  and e["data"]["decision"] == "alert"]
        assert alerts and all("provenance" in a["data"] for a in alerts)

    def test_sharded_trace_matches_single_process(self, cli_model,
                                                  tmp_path):
        from repro.obs import read_trace

        single = self._traced_detect(cli_model, tmp_path)
        sharded_dir = tmp_path / "sharded"
        sharded_dir.mkdir()
        sharded = self._traced_detect(cli_model, sharded_dir,
                                      extra=("--workers", "2"))

        def canon(path):
            events = read_trace(path)
            for event in events:
                event.pop("mono", None)
                event["data"].pop("latency_s", None)
                event["data"].pop("batch", None)
            return events

        assert canon(sharded) == canon(single)

    def test_explain_walks_alert_provenance(self, cli_model, tmp_path,
                                            capsys):
        trace = self._traced_detect(cli_model, tmp_path)
        capsys.readouterr()
        assert main(["explain", trace]) == 0
        out = capsys.readouterr().out
        assert "alert #0" in out
        assert "clue chain" in out
        assert "time to detection" in out
        assert "wcg at verdict" in out
        assert "forest vote" in out
        assert "top decision-path features" in out

    def test_explain_missing_file(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "trace file not found" in err
        assert "Traceback" not in err

    def test_explain_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["explain", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stats_summarizes_snapshots(self, cli_model, tmp_path, capsys):
        from repro.obs import get_registry, set_registry

        pcap = str(tmp_path / "angler.pcap")
        stats = str(tmp_path / "stats.jsonl")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "5"]) == 0
        previous = get_registry()
        try:
            assert main(["detect", pcap, "--model", cli_model,
                         "--threshold", "0.5", "--metrics",
                         "--stats-out", stats]) == 1
        finally:
            set_registry(previous)
        capsys.readouterr()
        assert main(["stats", stats]) == 0
        out = capsys.readouterr().out
        assert "snapshot(s)" in out
        assert "decode.packets" in out
        assert "histograms:" in out

    def test_stats_handles_fleet_lines(self, tmp_path, capsys):
        import json

        stats = tmp_path / "fleet.jsonl"
        stats.write_text(json.dumps({"fleet": {
            "enabled": True, "shards": 2,
            "counters": {"decode.packets": 10},
            "gauges": {}, "histograms": {},
        }}) + "\n")
        assert main(["stats", str(stats)]) == 0
        assert "decode.packets: 10" in capsys.readouterr().out

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "stats file not found" in capsys.readouterr().err


class TestCliMetrics:
    def test_detect_with_metrics_writes_snapshots(self, cli_model, tmp_path):
        from repro.obs import get_registry, read_snapshots, set_registry

        pcap = str(tmp_path / "angler.pcap")
        stats = str(tmp_path / "stats.jsonl")
        assert main(["synth", pcap, "--kind", "Angler", "--seed", "5"]) == 0
        previous = get_registry()
        try:
            code = main(["detect", pcap, "--model", cli_model,
                         "--threshold", "0.5", "--metrics",
                         "--stats-out", stats])
        finally:
            # --metrics swaps the process-wide registry; put it back.
            set_registry(previous)
        assert code in (0, 1)
        snapshots = read_snapshots(stats)
        assert len(snapshots) >= 1
        final = snapshots[-1]
        assert final["reason"] == "finalize"
        assert final["counters"]["decode.packets"] > 0
        assert final["counters"]["http.transactions"] > 0
