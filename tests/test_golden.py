"""Golden pins: exact expected outputs for a hand-built conversation.

These freeze the *semantics* of WCG construction and feature extraction
on a fixed, hand-written trace (the ``simple_trace`` fixture: a search
referral, one 302 hop, a landing page, and one image).  If a change
breaks one of these pins, it changed what a feature *means* — that must
be a deliberate decision, not a side effect.
"""

import pytest

from repro.core.builder import build_wcg
from repro.features.extractor import extract_features
from repro.features.registry import feature_names


@pytest.fixture()
def golden(simple_trace):
    wcg = build_wcg(simple_trace)
    vector = extract_features(wcg)
    names = feature_names()
    return wcg, dict(zip(names, vector))


class TestGoldenWcg:
    def test_structure(self, golden):
        wcg, _ = golden
        # victim + origin(google.com) + start.com + mid.com
        assert wcg.order == 4
        # 4 requests + 4 responses + 1 http-30x redirect + 1 origin link
        assert wcg.size == 10
        assert wcg.origin == "google.com"

    def test_edge_kinds(self, golden):
        wcg, _ = golden
        assert len(wcg.request_edges()) == 4
        assert len(wcg.response_edges()) == 4
        assert len(wcg.redirect_edges()) == 2  # 302 hop + origin link


class TestGoldenFeatures:
    def test_high_level(self, golden):
        _, features = golden
        assert features["origin"] == 1.0
        assert features["x_flash_version"] == 0.0
        assert features["wcg_size"] == 4.0
        assert features["conversation_length"] == 3.0
        assert features["avg_uris_per_host"] == 2.0
        # URIs: "/", "/jump", "/land", "/logo.png" -> (1+5+5+9)/4
        assert features["avg_uri_length"] == pytest.approx(5.0)

    def test_graph(self, golden):
        _, features = golden
        assert features["order"] == 4.0
        assert features["size"] == 10.0
        assert features["volume"] == 20.0
        assert features["avg_pagerank"] == pytest.approx(0.25)
        assert features["avg_in_degree"] == pytest.approx(10 / 4)
        assert features["diameter"] == 2.0

    def test_header(self, golden):
        _, features = golden
        assert features["gets"] == 4.0
        assert features["posts"] == 0.0
        assert features["http_20x"] == 3.0
        assert features["http_30x"] == 1.0
        assert features["http_40x"] == 0.0
        assert features["referrer_ctrs"] == 4.0
        assert features["no_referrer_ctrs"] == 0.0

    def test_temporal(self, golden):
        _, features = golden
        # Request timestamps 10, 11, 12, 13 -> mean gap 1.0.
        assert features["avg_inter_transaction_time"] == pytest.approx(1.0)
        # Duration 10.0 .. 13.1 = 3.1 s over 4 URIs.
        assert features["duration"] == pytest.approx(3.1 / 4)

    def test_full_vector_deterministic(self, golden, simple_trace):
        _, features = golden
        again = extract_features(build_wcg(simple_trace))
        rebuilt = dict(zip(feature_names(), again))
        assert rebuilt == features
