"""Tests for the mixed-workload stream generator (repro.loadgen)."""

import itertools
import tracemalloc

import numpy as np
import pytest

from repro.loadgen import (
    BENIGN_ONLY,
    HOSTILE,
    MIXED,
    HostAllocator,
    LoadGenerator,
    RawConnection,
    WorkloadMix,
    benign_episode,
    exploit_kit_episode,
    giant_pipelined_episode,
    http_flood_episode,
    malformed_burst_episode,
    orphan_response_episode,
    overflow_episode,
    retrans_storm_episode,
    slow_drip_episode,
)
from repro.net.flows import AddressBook, transactions_from_packets
from repro.obs import MetricsRegistry, use_registry


def _decode(packets, book=None):
    registry = MetricsRegistry()
    with use_registry(registry):
        recovered = transactions_from_packets(packets, book=book)
    return recovered, registry.snapshot()["counters"]


class TestRawConnection:
    def _conn(self):
        return RawConnection("172.31.0.1", 50000, "198.51.100.1")

    def test_simple_exchange_decodes(self):
        conn = self._conn()
        packets = conn.open(1.0)
        packets.extend(conn.send(
            1.1, True, b"GET /x HTTP/1.1\r\nHost: s\r\n\r\n"
        ))
        packets.extend(conn.send(
            1.2, False, b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
        ))
        packets.extend(conn.close(1.3))
        recovered, _ = _decode(packets)
        assert len(recovered) == 1
        assert recovered[0].request.uri == "/x"
        assert recovered[0].response.body == b"hi"

    def test_segment_places_bytes_at_offset(self):
        conn = self._conn()
        packets = conn.open(1.0)
        request = b"GET / HTTP/1.1\r\nHost: s\r\n\r\n"
        # Emit the tail before the head: decode must still succeed.
        packets.append(conn.segment(1.2, True, request[10:], 10))
        packets.append(conn.segment(1.3, True, request[:10], 0))
        packets.extend(conn.close(1.4))
        recovered, _ = _decode(packets)
        assert len(recovered) == 1

    def test_mtu_split(self):
        conn = self._conn()
        frames = conn.send(1.0, True, b"x" * 3000, mtu=1400)
        assert len(frames) == 3


class TestEpisodes:
    """Each builder produces decodable (or deliberately hostile) wire."""

    def test_benign_decodes(self):
        book = AddressBook()
        packets = benign_episode(np.random.default_rng(1), 100.0, book)
        recovered, _ = _decode(packets, book=book)
        assert len(recovered) > 0
        assert packets[0].timestamp == pytest.approx(100.0)

    def test_exploit_kit_decodes(self):
        book = AddressBook()
        packets = exploit_kit_episode(np.random.default_rng(2), 100.0, book)
        recovered, _ = _decode(packets, book=book)
        assert len(recovered) > 0

    def test_flood_is_many_short_connections(self):
        packets = http_flood_episode(
            np.random.default_rng(3), 100.0, HostAllocator()
        )
        _, counters = _decode(packets)
        assert counters["reassembly.streams_opened"] >= 10

    def test_slow_drip_request_survives_fragmentation(self):
        packets = slow_drip_episode(
            np.random.default_rng(4), 100.0, HostAllocator()
        )
        recovered, _ = _decode(packets)
        assert len(recovered) == 1
        assert recovered[0].status == 200

    def test_giant_pipelined_recovers_every_pair(self):
        packets = giant_pipelined_episode(
            np.random.default_rng(5), 100.0, HostAllocator()
        )
        recovered, _ = _decode(packets)
        assert len(recovered) >= 120
        assert all(t.status == 200 for t in recovered)

    def test_retrans_storm_decodes_byte_identical(self):
        # Shuffled/duplicated/overlapping delivery must not corrupt the
        # recovered response body.
        packets = retrans_storm_episode(
            np.random.default_rng(6), 100.0, HostAllocator()
        )
        recovered, _ = _decode(packets)
        assert len(recovered) == 1
        assert recovered[0].status == 200
        assert len(recovered[0].response.body) > 0

    def test_malformed_burst_counted_not_fatal(self):
        packets = malformed_burst_episode(np.random.default_rng(7), 100.0)
        recovered, counters = _decode(packets)
        assert recovered == []
        assert counters["decode.errors"] > 0

    def test_orphan_responses_counted(self):
        packets = orphan_response_episode(
            np.random.default_rng(8), 100.0, HostAllocator()
        )
        _, counters = _decode(packets)
        assert counters["http.orphan_responses"] >= 2

    def test_overflow_degrades_capped_reassembler(self):
        packets = overflow_episode(
            np.random.default_rng(9), 100.0, HostAllocator(),
            oversize=64 * 1024,
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            transactions_from_packets(packets, max_buffered=16 * 1024)
        assert registry.snapshot()["counters"]["reassembly.overflows"] == 1


class TestLoadGenerator:
    def test_deterministic_from_seed(self):
        a = LoadGenerator(seed=42).capture(2000)
        b = LoadGenerator(seed=42).capture(2000)
        assert [(p.timestamp, p.data) for p in a] == \
            [(p.timestamp, p.data) for p in b]

    def test_different_seeds_differ(self):
        a = LoadGenerator(seed=1).capture(500)
        b = LoadGenerator(seed=2).capture(500)
        assert [p.data for p in a] != [p.data for p in b]

    def test_globally_time_sorted(self):
        packets = LoadGenerator(seed=3, mix=HOSTILE).capture(3000)
        stamps = [p.timestamp for p in packets]
        assert stamps == sorted(stamps)

    def test_stream_is_lazy_and_bounded(self):
        # Drawing 50k packets must not materialize 50k packets: peak
        # traced memory stays orders of magnitude below the stream size.
        generator = LoadGenerator(seed=4, concurrency=8)
        tracemalloc.start()
        total = sum(len(p.data) for p in generator.packets(limit=50_000))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert total > 10 * 2**20  # the stream itself is tens of MiB
        assert peak < total / 4  # but never resident at once

    def test_infinite_stream_no_limit(self):
        generator = LoadGenerator(seed=5)
        taken = list(itertools.islice(generator.packets(), 1234))
        assert len(taken) == 1234

    def test_mix_respected(self):
        # A benign-only mix never emits hostile endpoints (172.31/16).
        packets = LoadGenerator(seed=6, mix=BENIGN_ONLY).capture(2000)
        recovered, counters = _decode(
            packets, book=LoadGenerator(seed=6, mix=BENIGN_ONLY).book
        )
        assert len(recovered) > 0
        assert counters["decode.errors"] == 0
        assert counters["http.orphan_responses"] == 0

    def test_mixed_stream_decodes_with_hostile_signals(self):
        generator = LoadGenerator(seed=7, mix=HOSTILE,
                                  overflow_bytes=64 * 1024)
        packets = generator.capture(6000)
        registry = MetricsRegistry()
        with use_registry(registry):
            transactions_from_packets(packets, book=generator.book,
                                      max_buffered=16 * 1024)
        counters = registry.snapshot()["counters"]
        assert counters["reassembly.overflows"] > 0
        assert counters["http.orphan_responses"] > 0
        assert counters["decode.errors"] > 0

    def test_zero_weight_mix_rejected(self):
        mix = WorkloadMix(benign=0.0, exploit_kit=0.0, http_flood=0.0,
                          slow_drip=0.0, giant_pipelined=0.0,
                          retrans_storm=0.0, malformed_burst=0.0,
                          orphan_response=0.0, overflow=0.0)
        with pytest.raises(ValueError):
            LoadGenerator(seed=1, mix=mix)

    def test_default_mix_is_mixed(self):
        assert LoadGenerator().mix is MIXED
