"""Unit tests for conversation-stage assignment (Section III-C rules)."""

from repro.core.model import HttpMethod, Trace
from repro.core.stages import Stage, assign_stages
from tests.conftest import make_txn


def _infection_like_transactions():
    """Redirect run-up -> exploit download -> C&C POSTs."""
    return [
        make_txn(host="compromised.com", uri="/page", ts=1.0, status=302,
                 content_type="",
                 extra_res_headers={"Location": "http://landing.net/l"}),
        make_txn(host="landing.net", uri="/l", ts=2.0, status=302,
                 content_type="",
                 extra_res_headers={"Location": "http://exploit.pw/g"}),
        make_txn(host="exploit.pw", uri="/g", ts=3.0,
                 content_type="text/html"),
        make_txn(host="exploit.pw", uri="/drop.exe", ts=4.0,
                 content_type="application/x-msdownload", size=150_000),
        make_txn(host="cnc.top", uri="/beacon.php", ts=5.0,
                 method=HttpMethod.POST, content_type="text/plain"),
        make_txn(host="cnc2.top", uri="/report.php", ts=6.0,
                 method=HttpMethod.POST, status=404),
    ]


class TestAssignStages:
    def test_empty(self):
        assert assign_stages([]) == []

    def test_full_infection_shape(self):
        txns = _infection_like_transactions()
        stages = assign_stages(txns)
        assert stages[0] is Stage.PRE_DOWNLOAD  # 302 before download
        assert stages[1] is Stage.PRE_DOWNLOAD
        assert stages[3] is Stage.DOWNLOAD      # the exe
        assert stages[4] is Stage.POST_DOWNLOAD  # POST 200 to fresh host
        assert stages[5] is Stage.POST_DOWNLOAD  # POST 40x to fresh host

    def test_landing_page_between_redirects_is_pre_download(self):
        txns = _infection_like_transactions()
        # txn[2] (landing 200) arrives before the last 30x? No — after.
        # Insert a 200 page BETWEEN the two 30x hops: it is run-up.
        txns.insert(1, make_txn(host="tds.biz", uri="/check", ts=1.5))
        stages = assign_stages(txns)
        assert stages[1] is Stage.PRE_DOWNLOAD

    def test_post_to_exploit_host_is_not_post_download(self):
        # POST to a host that served an exploit payload stays DOWNLOAD.
        txns = [
            make_txn(host="exploit.pw", uri="/drop.exe", ts=1.0,
                     content_type="application/x-msdownload"),
            make_txn(host="exploit.pw", uri="/confirm", ts=2.0,
                     method=HttpMethod.POST),
        ]
        stages = assign_stages(txns)
        assert stages[1] is Stage.DOWNLOAD

    def test_post_before_download_complete_not_post_download(self):
        txns = [
            make_txn(host="a.com", uri="/x", ts=1.0, method=HttpMethod.POST),
            make_txn(host="exploit.pw", uri="/drop.exe", ts=2.0,
                     content_type="application/x-msdownload"),
        ]
        stages = assign_stages(txns)
        assert stages[0] is Stage.DOWNLOAD

    def test_all_benign_gets_are_download_stage(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="a.com", uri="/s.css", ts=2.0,
                     content_type="text/css"),
        ]
        stages = assign_stages(txns)
        assert all(s is Stage.DOWNLOAD for s in stages)

    def test_redirects_after_exploit_not_pre_download(self):
        txns = [
            make_txn(host="exploit.pw", uri="/drop.exe", ts=1.0,
                     content_type="application/x-msdownload"),
            make_txn(host="ads.com", uri="/click", ts=2.0, status=302,
                     content_type="",
                     extra_res_headers={"Location": "http://shop.com/"}),
        ]
        stages = assign_stages(txns)
        assert stages[1] is Stage.DOWNLOAD

    def test_unanswered_post_can_be_post_download(self):
        txns = _infection_like_transactions()
        dead = make_txn(host="dead-cnc.ru", uri="/gate.php", ts=7.0,
                        method=HttpMethod.POST)
        dead.response = None
        txns.append(dead)
        stages = assign_stages(txns)
        assert stages[-1] is Stage.POST_DOWNLOAD

    def test_stage_values_match_paper_encoding(self):
        assert Stage.PRE_DOWNLOAD == 0
        assert Stage.DOWNLOAD == 1
        assert Stage.POST_DOWNLOAD == 2

    def test_input_order_preserved_when_unsorted(self):
        txns = _infection_like_transactions()
        shuffled = [txns[3], txns[0], txns[4], txns[1], txns[2], txns[5]]
        stages = assign_stages(shuffled)
        # stage of the exe (now index 0) must still be DOWNLOAD
        assert stages[0] is Stage.DOWNLOAD
        # stage of the first 302 (now index 1) must still be PRE_DOWNLOAD
        assert stages[1] is Stage.PRE_DOWNLOAD
