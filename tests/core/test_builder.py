"""Unit tests for WCG construction from transaction streams."""

import pytest

from repro.core.builder import WCGBuilder, build_wcg
from repro.core.model import HttpMethod, Trace
from repro.core.payloads import PayloadType
from repro.core.stages import Stage
from repro.core.wcg import EdgeKind, NodeKind
from repro.exceptions import GraphConstructionError
from tests.conftest import make_txn


class TestBuildWcg:
    def test_empty_raises(self):
        with pytest.raises(GraphConstructionError):
            WCGBuilder().build()

    def test_basic_shape(self, simple_trace):
        wcg = build_wcg(simple_trace)
        # victim + origin + start.com + mid.com
        assert wcg.order == 4
        assert wcg.victim == "victim"
        assert wcg.origin == "google.com"

    def test_victim_inferred_from_first_client(self):
        wcg = build_wcg([make_txn(client="host-9")])
        assert wcg.victim == "host-9"

    def test_origin_from_first_referrer(self):
        txns = [make_txn(referrer="http://bing.com/search")]
        assert build_wcg(txns).origin == "bing.com"

    def test_origin_empty_when_first_hop_unreferred(self):
        txns = [
            make_txn(ts=1.0),
            make_txn(ts=2.0, referrer="http://example.com/"),
        ]
        wcg = build_wcg(txns)
        assert wcg.origin == "empty"
        assert not wcg.has_known_origin

    def test_request_and_response_edges(self, simple_trace):
        wcg = build_wcg(simple_trace)
        requests = wcg.request_edges()
        responses = wcg.response_edges()
        assert len(requests) == 4
        assert len(responses) == 4
        # request edges point victim -> server; responses the other way
        assert all(src == "victim" for src, _, _ in requests)
        assert all(dst == "victim" for _, dst, _ in responses)

    def test_redirect_edge_from_30x(self, simple_trace):
        wcg = build_wcg(simple_trace)
        redirect_pairs = {(s, t) for s, t, _ in wcg.redirect_edges()}
        assert ("start.com", "mid.com") in redirect_pairs

    def test_origin_linked_to_first_host(self, simple_trace):
        wcg = build_wcg(simple_trace)
        redirect_pairs = {(s, t) for s, t, d in wcg.redirect_edges()}
        assert ("google.com", "start.com") in redirect_pairs

    def test_malicious_marking(self):
        txns = [
            make_txn(host="evil.pw", uri="/drop.exe",
                     content_type="application/x-msdownload"),
        ]
        wcg = build_wcg(txns)
        assert wcg.node_data("evil.pw").kind is NodeKind.MALICIOUS

    def test_benign_server_not_malicious(self):
        wcg = build_wcg([make_txn(host="ok.com")])
        assert wcg.node_data("ok.com").kind is not NodeKind.MALICIOUS

    def test_exploit_download_to_other_client_not_marking(self):
        # Only downloads to the WCG's victim designate a node malicious.
        txns = [
            make_txn(host="evil.pw", uri="/page.html", client="victim",
                     content_type="text/html"),
            make_txn(host="evil.pw", uri="/drop2.exe", client="other",
                     content_type="application/x-msdownload", ts=101.0),
        ]
        wcg = build_wcg(txns, victim="victim")
        assert wcg.node_data("evil.pw").kind is not NodeKind.MALICIOUS

    def test_uri_and_payload_annotations(self, simple_trace):
        wcg = build_wcg(simple_trace)
        assert "/land" in wcg.node_data("mid.com").uris
        assert wcg.node_data("mid.com").payloads.count(PayloadType.IMAGE) == 1

    def test_dnt_and_flash_graph_annotations(self):
        txns = [
            make_txn(extra_req_headers={"DNT": "1",
                                        "X-Flash-Version": "22,0"}),
        ]
        wcg = build_wcg(txns)
        assert wcg.dnt
        assert wcg.x_flash_version == "22,0"

    def test_unanswered_transaction_has_request_edge_only(self):
        txn = make_txn(host="dead.ru")
        txn.response = None
        wcg = build_wcg([txn])
        assert len(wcg.request_edges()) == 1
        assert len(wcg.response_edges()) == 0

    def test_edge_attributes(self, simple_trace):
        wcg = build_wcg(simple_trace)
        req = next(
            d for _, t, d in wcg.request_edges() if t == "start.com"
        )
        assert req.method == "GET"
        assert req.uri_length >= 1
        res = next(
            d for s, _, d in wcg.response_edges() if s == "mid.com"
            and d.status == 200
        )
        assert res.payload_size >= 0


class TestIncrementalBuilder:
    def test_cache_reuse(self, simple_trace):
        builder = WCGBuilder()
        builder.extend(simple_trace.transactions)
        first = builder.build()
        second = builder.build()
        assert first is second

    def test_add_grows_live_graph_in_place(self, simple_trace):
        # The builder maintains one live graph: add() appends into it
        # (bumping its version) instead of building a replacement.
        builder = WCGBuilder()
        builder.extend(simple_trace.transactions[:2])
        first = builder.build()
        size_before = first.size
        version_before = first.version
        builder.add(simple_trace.transactions[2])
        second = builder.build()
        assert second is first
        assert second.size > size_before
        assert second.version > version_before

    def test_transaction_count(self, simple_trace):
        builder = WCGBuilder()
        builder.extend(simple_trace.transactions)
        assert builder.transaction_count == 4

    def test_explicit_victim_and_origin(self):
        builder = WCGBuilder(victim="me", origin="facebook.com")
        builder.add(make_txn(client="someone-else"))
        wcg = builder.build()
        assert wcg.victim == "me"
        assert wcg.origin == "facebook.com"

    def test_trace_origin_respected(self):
        trace = Trace(transactions=[make_txn()], origin="twitter.com")
        wcg = build_wcg(trace)
        assert wcg.origin == "twitter.com"


class TestStageAnnotation:
    def test_stages_propagate_to_edges(self):
        txns = [
            make_txn(host="hop.com", ts=1.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://ek.pw/g"}),
            make_txn(host="ek.pw", uri="/drop.jar", ts=2.0,
                     content_type="application/java-archive"),
            make_txn(host="cnc.xyz", uri="/p.php", ts=3.0,
                     method=HttpMethod.POST, content_type="text/plain"),
        ]
        wcg = build_wcg(txns)
        stages_by_target = {}
        for _, target, data in wcg.request_edges():
            stages_by_target[target] = data.stage
        assert stages_by_target["hop.com"] is Stage.PRE_DOWNLOAD
        assert stages_by_target["ek.pw"] is Stage.DOWNLOAD
        assert stages_by_target["cnc.xyz"] is Stage.POST_DOWNLOAD
