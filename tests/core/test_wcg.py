"""Unit tests for the WebConversationGraph structure."""

import pytest

from repro.core.payloads import PayloadType
from repro.core.stages import Stage
from repro.core.wcg import (
    EdgeData,
    EdgeKind,
    NodeKind,
    WebConversationGraph,
)


def _edge(kind=EdgeKind.REQUEST, ts=1.0, stage=Stage.DOWNLOAD, **kwargs):
    return EdgeData(kind=kind, timestamp=ts, stage=stage, **kwargs)


class TestConstruction:
    def test_initial_nodes(self):
        wcg = WebConversationGraph(victim="v", origin="google.com")
        assert wcg.order == 2
        assert wcg.node_data("v").kind is NodeKind.VICTIM
        assert wcg.node_data("google.com").kind is NodeKind.ORIGIN

    def test_empty_origin_placeholder(self):
        wcg = WebConversationGraph(victim="v")
        assert wcg.origin == "empty"
        assert not wcg.has_known_origin

    def test_known_origin(self):
        wcg = WebConversationGraph(victim="v", origin="bing.com")
        assert wcg.has_known_origin


class TestMutation:
    def test_add_edge_creates_endpoints(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_edge("v", "srv.com", _edge())
        assert "srv.com" in wcg.hosts()
        assert wcg.size == 1

    def test_parallel_edges_coexist(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_edge("v", "s", _edge(ts=1.0))
        wcg.add_edge("v", "s", _edge(ts=2.0))
        wcg.add_edge("s", "v", _edge(kind=EdgeKind.RESPONSE, ts=2.1))
        assert wcg.size == 3

    def test_node_kind_sticky_for_victim(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_node("v", kind=NodeKind.MALICIOUS)
        assert wcg.node_data("v").kind is NodeKind.VICTIM

    def test_mark_malicious_upgrades_remote(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_node("evil.pw")
        wcg.mark_malicious("evil.pw")
        assert wcg.node_data("evil.pw").kind is NodeKind.MALICIOUS

    def test_mark_malicious_creates_missing_node(self):
        wcg = WebConversationGraph(victim="v")
        wcg.mark_malicious("new.pw")
        assert wcg.node_data("new.pw").kind is NodeKind.MALICIOUS

    def test_record_uri_and_payload(self):
        wcg = WebConversationGraph(victim="v")
        wcg.record_uri("s.com", "/a")
        wcg.record_uri("s.com", "/a")  # duplicate ignored (set)
        wcg.record_uri("s.com", "/b")
        wcg.record_payload("s.com", PayloadType.EXE)
        assert len(wcg.node_data("s.com").uris) == 2
        assert wcg.node_data("s.com").payloads.count(PayloadType.EXE) == 1

    def test_ip_filled_once(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_node("s.com", ip="1.2.3.4")
        wcg.add_node("s.com", ip="5.6.7.8")
        assert wcg.node_data("s.com").ip == "1.2.3.4"


class TestViews:
    def _populated(self):
        wcg = WebConversationGraph(victim="v", origin="google.com")
        wcg.add_edge("v", "a", _edge(ts=1.0, method="GET"))
        wcg.add_edge("a", "v", _edge(kind=EdgeKind.RESPONSE, ts=1.1,
                                     status=200))
        wcg.add_edge("a", "b", _edge(kind=EdgeKind.REDIRECT, ts=1.2,
                                     stage=Stage.PRE_DOWNLOAD))
        wcg.add_edge("v", "b", _edge(ts=2.0, method="POST",
                                     stage=Stage.POST_DOWNLOAD))
        return wcg

    def test_edge_kind_views(self):
        wcg = self._populated()
        assert len(wcg.request_edges()) == 2
        assert len(wcg.response_edges()) == 1
        assert len(wcg.redirect_edges()) == 1

    def test_remote_hosts_excludes_victim_and_origin(self):
        wcg = self._populated()
        assert set(wcg.remote_hosts()) == {"a", "b"}

    def test_duration(self):
        wcg = self._populated()
        assert wcg.duration == pytest.approx(1.0)

    def test_duration_single_edge(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_edge("v", "a", _edge(ts=5.0))
        assert wcg.duration == 0.0

    def test_stage_edges(self):
        wcg = self._populated()
        assert len(wcg.stage_edges(Stage.POST_DOWNLOAD)) == 1
        assert wcg.has_post_download_dynamics()

    def test_no_post_download(self):
        wcg = WebConversationGraph(victim="v")
        wcg.add_edge("v", "a", _edge())
        assert not wcg.has_post_download_dynamics()

    def test_simple_graph_collapses_multiplicity(self):
        wcg = self._populated()
        wcg.add_edge("v", "a", _edge(ts=3.0))
        simple = wcg.simple_graph()
        assert simple.number_of_edges() < wcg.size
        assert simple["v"]["a"]["weight"] == 2

    def test_simple_graph_excluding_origin(self):
        wcg = self._populated()
        simple = wcg.simple_graph(include_origin=False)
        assert "google.com" not in simple.nodes

    def test_copy_is_deep_enough(self):
        wcg = self._populated()
        clone = wcg.copy()
        clone.add_edge("v", "c", _edge(ts=9.0))
        clone.record_uri("a", "/new")
        assert wcg.size == 4
        assert "/new" not in wcg.node_data("a").uris
        assert clone.size == 5

    def test_repr(self):
        wcg = self._populated()
        text = repr(wcg)
        assert "victim='v'" in text
        assert "order=" in text
