"""Unit tests for the HTTP domain model."""

import pytest

from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
    TraceLabel,
)
from repro.core.payloads import PayloadType
from tests.conftest import make_txn


class TestHttpMethod:
    def test_known_verbs(self):
        assert HttpMethod.of("GET") is HttpMethod.GET
        assert HttpMethod.of("post") is HttpMethod.POST
        assert HttpMethod.of("Delete") is HttpMethod.DELETE

    def test_unknown_verb_maps_to_other(self):
        assert HttpMethod.of("BREW") is HttpMethod.OTHER


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_default(self):
        assert Headers().get("X-Nope", "fallback") == "fallback"

    def test_set_replaces_all(self):
        headers = Headers([("X-A", "1"), ("x-a", "2")])
        headers.set("X-A", "3")
        assert headers.get_all("x-a") == ["3"]

    def test_add_preserves_duplicates(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]

    def test_remove(self):
        headers = Headers({"A": "1", "B": "2"})
        headers.remove("a")
        assert "A" not in headers
        assert "B" in headers

    def test_contains(self):
        headers = Headers({"Referer": "x"})
        assert "referer" in headers
        assert 42 not in headers

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original.get("A") == "1"

    def test_len_and_iter(self):
        headers = Headers([("A", "1"), ("B", "2")])
        assert len(headers) == 2
        assert list(headers) == [("A", "1"), ("B", "2")]

    def test_equality(self):
        assert Headers({"A": "1"}) == Headers([("A", "1")])
        assert Headers({"A": "1"}) != Headers({"A": "2"})


class TestHttpRequest:
    def test_referrer_host_extraction(self):
        txn = make_txn(referrer="http://google.com:8080/search?q=x")
        assert txn.request.referrer_host == "google.com"

    def test_referrer_empty(self):
        txn = make_txn()
        assert txn.request.referrer == ""
        assert txn.request.referrer_host == ""

    def test_uri_length(self):
        txn = make_txn(uri="/abcde")
        assert txn.request.uri_length == 6

    def test_full_url_relative(self):
        txn = make_txn(host="h.com", uri="/p")
        assert txn.request.full_url == "http://h.com/p"

    def test_full_url_absolute(self):
        txn = make_txn(host="h.com", uri="http://other.com/p")
        assert txn.request.full_url == "http://other.com/p"

    def test_dnt(self):
        txn = make_txn(extra_req_headers={"DNT": "1"})
        assert txn.request.dnt
        assert not make_txn().request.dnt


class TestHttpResponse:
    def test_body_size_prefers_actual_body(self):
        txn = make_txn(body=b"12345")
        assert txn.response.body_size == 5

    def test_body_size_falls_back_to_content_length(self):
        txn = make_txn(size=1024)
        assert txn.response.body_size == 1024

    def test_is_redirect(self):
        txn = make_txn(status=302,
                       extra_res_headers={"Location": "http://x.com/"})
        assert txn.response.is_redirect

    def test_30x_without_location_is_not_redirect(self):
        txn = make_txn(status=304)
        assert not txn.response.is_redirect


class TestHttpTransaction:
    def test_payload_type_classification(self):
        txn = make_txn(uri="/x.exe", content_type="application/x-msdownload")
        assert txn.payload_type is PayloadType.EXE

    def test_payload_type_cached_and_settable(self):
        txn = make_txn()
        assert txn.payload_type is PayloadType.HTML
        txn.payload_type = PayloadType.JAR
        assert txn.payload_type is PayloadType.JAR

    def test_unanswered_transaction(self):
        txn = make_txn()
        txn.response = None
        txn.payload_type = None  # reset cache
        txn._payload_type = None
        assert txn.status == 0
        assert txn.payload_size == 0
        assert txn.duration == 0.0
        assert txn.payload_type is PayloadType.EMPTY

    def test_duration(self):
        txn = make_txn(ts=10.0, res_delay=0.5)
        assert txn.duration == pytest.approx(0.5)

    def test_server_and_client(self):
        txn = make_txn(host="srv.com", client="me")
        assert txn.server == "srv.com"
        assert txn.client == "me"


class TestTrace:
    def test_sorts_transactions_on_init(self):
        txns = [make_txn(ts=30.0), make_txn(ts=10.0), make_txn(ts=20.0)]
        trace = Trace(transactions=txns)
        stamps = [t.timestamp for t in trace]
        assert stamps == sorted(stamps)

    def test_hosts(self):
        trace = Trace(transactions=[
            make_txn(host="a.com"), make_txn(host="b.com"),
        ])
        assert trace.hosts == {"victim", "a.com", "b.com"}

    def test_duration_spans_responses(self):
        trace = Trace(transactions=[
            make_txn(ts=10.0, res_delay=0.1),
            make_txn(ts=20.0, res_delay=2.0),
        ])
        assert trace.duration == pytest.approx(12.0)

    def test_empty_trace_duration(self):
        assert Trace(transactions=[]).duration == 0.0

    def test_labels(self):
        infection = Trace(transactions=[], label=TraceLabel.INFECTION)
        benign = Trace(transactions=[], label=TraceLabel.BENIGN)
        assert infection.is_infection
        assert not benign.is_infection
        assert not Trace(transactions=[]).is_infection

    def test_len_and_iter(self):
        trace = Trace(transactions=[make_txn(), make_txn(ts=101.0)])
        assert len(trace) == 2
        assert len(list(trace)) == 2
