"""Unit tests for session-ID extraction and session grouping."""

from repro.core.sessions import extract_session_id, group_sessions
from tests.conftest import make_txn


class TestExtractSessionId:
    def test_query_param(self):
        txn = make_txn(uri="/page?sid=abc123&x=1")
        assert extract_session_id(txn) == "abc123"

    def test_phpsessid_param(self):
        txn = make_txn(uri="/p?PHPSESSID=deadbeef")
        assert extract_session_id(txn) == "deadbeef"

    def test_jsessionid_path(self):
        txn = make_txn(uri="/app/page;jsessionid=XYZ789?x=1")
        assert extract_session_id(txn) == "XYZ789"

    def test_cookie_header(self):
        txn = make_txn(extra_req_headers={"Cookie": "theme=dark; sid=c00kie"})
        assert extract_session_id(txn) == "c00kie"

    def test_set_cookie_response(self):
        txn = make_txn(extra_res_headers={"Set-Cookie":
                                          "JSESSIONID=server-side; Path=/"})
        assert extract_session_id(txn) == "server-side"

    def test_no_session(self):
        assert extract_session_id(make_txn(uri="/plain")) == ""

    def test_query_precedence_over_cookie(self):
        txn = make_txn(uri="/p?session_id=fromquery",
                       extra_req_headers={"Cookie": "sid=fromcookie"})
        assert extract_session_id(txn) == "fromquery"


class TestGroupSessions:
    def test_same_session_id_groups(self):
        txns = [
            make_txn(host="a.com", uri="/1?sid=S", ts=1.0),
            make_txn(host="b.com", uri="/2?sid=S", ts=200.0),  # past idle gap
        ]
        clusters = group_sessions(txns, idle_gap=60.0)
        assert len(clusters) == 1

    def test_referrer_within_gap_groups(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="b.com", ts=10.0, referrer="http://a.com/"),
        ]
        assert len(group_sessions(txns)) == 1

    def test_idle_gap_splits(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="a.com", ts=500.0),
        ]
        assert len(group_sessions(txns, idle_gap=60.0)) == 2

    def test_different_clients_never_group(self):
        txns = [
            make_txn(host="a.com", ts=1.0, client="alice"),
            make_txn(host="a.com", ts=2.0, client="bob"),
        ]
        clusters = group_sessions(txns)
        assert len(clusters) == 2
        assert {c.client for c in clusters} == {"alice", "bob"}

    def test_same_host_within_gap_groups(self):
        txns = [
            make_txn(host="a.com", uri="/1", ts=1.0),
            make_txn(host="a.com", uri="/2", ts=5.0),
        ]
        assert len(group_sessions(txns)) == 1

    def test_unrelated_host_opens_new_cluster(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="z.org", ts=2.0),  # no referrer, new host
        ]
        assert len(group_sessions(txns)) == 2

    def test_clusters_ordered_by_first_timestamp(self):
        txns = [
            make_txn(host="late.com", ts=100.0),
            make_txn(host="early.com", ts=1.0),
        ]
        clusters = group_sessions(txns)
        assert clusters[0].transactions[0].server == "early.com"

    def test_cluster_collects_session_ids_and_hosts(self):
        txns = [
            make_txn(host="a.com", uri="/1?sid=S1", ts=1.0),
            make_txn(host="b.com", uri="/2?sid=S2", ts=2.0,
                     referrer="http://a.com/1"),
        ]
        clusters = group_sessions(txns)
        assert len(clusters) == 1
        assert clusters[0].session_ids == {"S1", "S2"}
        assert {"a.com", "b.com"} <= clusters[0].hosts

    def test_empty_input(self):
        assert group_sessions([]) == []
