"""Regression tests for the struct-of-arrays edge store (DESIGN.md §14)."""

import numpy as np

from repro.core.columns import EdgeColumnStore, StringTable
from repro.obs import MetricsRegistry, use_registry


class TestStringTable:
    def test_codes_are_dense_and_stable(self):
        table = StringTable()
        assert table.code("GET") == 0
        assert table.code("POST") == 1
        assert table.code("GET") == 0  # re-intern: same code
        assert table.string(1) == "POST"
        assert len(table) == 2


class TestGrowth:
    def test_amortized_doubling(self):
        store = EdgeColumnStore(capacity=2)
        capacities = []
        for i in range(9):
            store.append(timestamp=float(i), kind=0, stage=0, src=0, dst=1)
            capacities.append(store.capacity)
        assert len(store) == 9
        # 2 -> 4 -> 8 -> 16: strictly doubling, never shrinking.
        assert capacities == [2, 2, 4, 4, 8, 8, 8, 8, 16]
        # Data survived every reallocation.
        assert store.column("timestamp").tolist() == [float(i)
                                                      for i in range(9)]

    def test_growth_reallocations_counted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = EdgeColumnStore(capacity=2)
            for i in range(9):
                store.append(timestamp=float(i), kind=0, stage=0,
                             src=0, dst=1)
        # 2->4, 4->8, 8->16: three reallocations for nine appends.
        assert registry.snapshot()["counters"]["wcg.column_reallocs"] == 3

    def test_column_views_track_live_prefix(self):
        store = EdgeColumnStore()
        store.append(timestamp=1.0, kind=0, stage=0, src=0, dst=1)
        assert len(store.column("kind")) == 1
        store.append(timestamp=2.0, kind=1, stage=2, src=1, dst=0,
                     status=200)
        assert store.column("status").tolist() == [0, 200]
        assert store.column("stage").tolist() == [0, 2]


class TestMutation:
    def test_set_stage_relabels_in_place(self):
        store = EdgeColumnStore()
        index = store.append(timestamp=1.0, kind=0, stage=0, src=0, dst=1)
        store.set_stage(index, 2)
        assert store.column("stage").tolist() == [2]

    def test_append_records_every_column(self):
        store = EdgeColumnStore()
        store.append(
            timestamp=3.5, kind=1, stage=1, src=2, dst=0, method=1,
            uri_length=17, status=404, payload=5, size=2048, redirect=2,
            cross=True, referrer="http://a/", user_agent="ua",
        )
        assert store.column("timestamp").tolist() == [3.5]
        assert store.column("uri_length").tolist() == [17]
        assert store.column("payload").tolist() == [5]
        assert store.column("size").tolist() == [2048]
        assert store.column("cross").tolist() == [True]
        assert store.column("has_ref").tolist() == [True]
        assert store.referrer == ["http://a/"]
        assert store.user_agent == ["ua"]


class TestCopy:
    def test_copy_is_compact_and_independent(self):
        store = EdgeColumnStore(capacity=4)
        for i in range(3):
            store.append(timestamp=float(i), kind=0, stage=0, src=0, dst=1)
        clone = store.copy()
        assert len(clone) == 3
        assert clone.capacity == 3  # compact: no slack rows
        for name, _ in EdgeColumnStore._NUMERIC:
            assert np.array_equal(clone.column(name), store.column(name))
        # Diverge the original; the clone must not move.
        store.append(timestamp=9.0, kind=2, stage=2, src=1, dst=0)
        store.set_stage(0, 2)
        assert len(clone) == 3
        assert clone.column("stage").tolist() == [0, 0, 0]

    def test_copy_of_empty_store(self):
        clone = EdgeColumnStore().copy()
        assert len(clone) == 0
        clone.append(timestamp=1.0, kind=0, stage=0, src=0, dst=1)
        assert len(clone) == 1
