"""Property tests for the resumable stage assigner.

The incremental :class:`StageAssigner` must agree with the original
batch three-sweep algorithm on *every prefix of every feed order* —
including the nasty cases where a late-arriving 30x or exploit-20x
moves a stage boundary backwards or forwards over already-labelled
transactions.  The three-sweep algorithm is reproduced verbatim below
as the oracle so the equivalence is checked against the independent
formulation, not against the code under test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import HttpMethod, HttpTransaction
from repro.core.payloads import is_exploit_type
from repro.core.stages import Stage, StageAssigner, assign_stages
from tests.conftest import make_txn

_HOSTS = ["a.com", "b.net", "c.org", "d.io"]
_STATUSES = [200, 204, 301, 302, 304, 404, 500, 0]

_EXPLOIT_CT = "application/x-msdownload"


def _oracle(transactions: list[HttpTransaction]) -> list[Stage]:
    """The seed batch algorithm, three sweeps over the sorted stream."""
    if not transactions:
        return []
    order = sorted(range(len(transactions)),
                   key=lambda i: transactions[i].timestamp)

    first_exploit_ts: float | None = None
    last_exploit_ts: float | None = None
    exploit_hosts: set[str] = set()
    for index in order:
        txn = transactions[index]
        if txn.response is None:
            continue
        if 200 <= txn.status < 300 and is_exploit_type(txn.payload_type):
            exploit_hosts.add(txn.server)
            if first_exploit_ts is None:
                first_exploit_ts = txn.response.timestamp
            last_exploit_ts = txn.response.timestamp

    last_30x_ts: float | None = None
    for index in order:
        txn = transactions[index]
        if txn.request.method is not HttpMethod.GET:
            continue
        if not 300 <= txn.status < 400:
            continue
        if first_exploit_ts is not None and txn.timestamp >= first_exploit_ts:
            continue
        last_30x_ts = txn.response.timestamp if txn.response else txn.timestamp

    stages: list[Stage] = [Stage.DOWNLOAD] * len(transactions)
    for index in order:
        txn = transactions[index]
        is_post_method = txn.request.method is HttpMethod.POST
        response_ts = txn.response.timestamp if txn.response else txn.timestamp
        if (
            txn.request.method is HttpMethod.GET
            and 300 <= txn.status < 400
            and (first_exploit_ts is None or txn.timestamp < first_exploit_ts)
        ):
            stages[index] = Stage.PRE_DOWNLOAD
            continue
        if (
            last_30x_ts is not None
            and response_ts <= last_30x_ts
            and not is_post_method
        ):
            stages[index] = Stage.PRE_DOWNLOAD
            continue
        if (
            is_post_method
            and txn.server not in exploit_hosts
            and (txn.status == 200 or 400 <= txn.status < 500
                 or txn.status == 0)
            and last_exploit_ts is not None
            and txn.timestamp >= last_exploit_ts
        ):
            stages[index] = Stage.POST_DOWNLOAD
            continue
        stages[index] = Stage.DOWNLOAD
    return stages


def _txn_from(spec) -> HttpTransaction:
    host_index, is_post, status, exploit, ts_units, delay_units = spec
    return make_txn(
        host=_HOSTS[host_index],
        uri=f"/r/{status}",
        ts=ts_units * 0.5,
        method=HttpMethod.POST if is_post else HttpMethod.GET,
        status=status,
        content_type=_EXPLOIT_CT if exploit else "text/html",
        res_delay=delay_units * 0.25,
    )


_SPEC = st.tuples(
    st.integers(min_value=0, max_value=len(_HOSTS) - 1),  # host
    st.booleans(),                                        # POST?
    st.sampled_from(_STATUSES),
    st.booleans(),                                        # exploit payload?
    st.integers(min_value=0, max_value=30),               # ts (ties likely)
    st.integers(min_value=0, max_value=8),                # response delay
)
_STREAMS = st.lists(_SPEC, min_size=0, max_size=24)


class TestAgainstOracle:
    @settings(max_examples=120, deadline=None)
    @given(_STREAMS)
    def test_batch_wrapper_matches_three_sweep(self, specs):
        txns = [_txn_from(s) for s in specs]
        assert assign_stages(txns) == _oracle(txns)

    @settings(max_examples=120, deadline=None)
    @given(_STREAMS)
    def test_every_prefix_matches_cold_rebuild(self, specs):
        # Feed in arrival order (arbitrary, out-of-order, tied
        # timestamps); after every single add the incremental state must
        # equal the three-sweep run on exactly the fed prefix.
        txns = [_txn_from(s) for s in specs]
        assigner = StageAssigner()
        for count, txn in enumerate(txns, start=1):
            assigner.add(txn)
            assert assigner.stages() == _oracle(txns[:count]), (
                f"divergence after prefix of {count}"
            )


class TestBoundaryMoves:
    """Targeted regressions for boundary-moving late arrivals."""

    def _feed(self, txns):
        assigner = StageAssigner()
        for txn in txns:
            assigner.add(txn)
        return assigner

    def test_late_exploit_moves_first_boundary_backward(self):
        # A 30x at t=10 is PRE_DOWNLOAD while no exploit landed; an
        # exploit 20x arriving late with an *earlier* timestamp (t=5)
        # invalidates rule 1 for it (10 >= 5) and must flip it.
        txns = [
            make_txn(host="hop.com", ts=10.0, status=302, content_type=""),
            make_txn(host="ek.pw", ts=5.0, content_type=_EXPLOIT_CT),
        ]
        assigner = self._feed(txns)
        assert assigner.stages() == _oracle(txns)
        assert assigner.stages()[0] is Stage.DOWNLOAD

    def test_late_exploit_extends_last_boundary(self):
        # A qualifying POST at t=20 is POST_DOWNLOAD after the exploit
        # at t=10; a second exploit arriving with t=30 moves the
        # last-exploit boundary past the POST, demoting it.
        txns = [
            make_txn(host="ek.pw", ts=10.0, content_type=_EXPLOIT_CT),
            make_txn(host="cnc.xyz", ts=20.0, method=HttpMethod.POST,
                     content_type="text/plain"),
            make_txn(host="ek2.pw", ts=30.0, content_type=_EXPLOIT_CT),
        ]
        assigner = StageAssigner()
        assigner.add(txns[0])
        assigner.add(txns[1])
        assert assigner.current_stage(1) is Stage.POST_DOWNLOAD
        changes = assigner.add(txns[2])
        assert (1, Stage.DOWNLOAD) in changes
        assert assigner.stages() == _oracle(txns)

    def test_late_30x_extends_pre_download(self):
        # A landing-page 20x fetch at t=12 is DOWNLOAD until a later
        # 30x (t=15, still before any exploit) extends the run-up
        # window over its response timestamp.
        txns = [
            make_txn(host="hop.com", ts=10.0, status=302, content_type=""),
            make_txn(host="land.com", ts=12.0),
            make_txn(host="hop2.com", ts=15.0, status=302, content_type=""),
        ]
        assigner = StageAssigner()
        assigner.add(txns[0])
        assigner.add(txns[1])
        assert assigner.current_stage(1) is Stage.DOWNLOAD
        changes = assigner.add(txns[2])
        assert (1, Stage.PRE_DOWNLOAD) in changes
        assert assigner.stages() == _oracle(txns)

    def test_exploit_host_disqualifies_posts(self):
        # A POST to a host is POST_DOWNLOAD until that very host turns
        # out to serve exploit payloads.
        txns = [
            make_txn(host="ek.pw", ts=10.0, content_type=_EXPLOIT_CT),
            make_txn(host="dual.com", ts=20.0, method=HttpMethod.POST,
                     content_type="text/plain"),
            make_txn(host="dual.com", ts=6.0, content_type=_EXPLOIT_CT),
        ]
        assigner = StageAssigner()
        assigner.add(txns[0])
        assigner.add(txns[1])
        assert assigner.current_stage(1) is Stage.POST_DOWNLOAD
        changes = assigner.add(txns[2])
        assert (1, Stage.DOWNLOAD) in changes
        assert assigner.stages() == _oracle(txns)

    def test_late_exploit_collapses_last_30x(self):
        # The landing fetch rides on the last-30x boundary; an exploit
        # arriving with a timestamp *before* the 30x disqualifies the
        # 30x entirely, collapsing the boundary to None.
        txns = [
            make_txn(host="hop.com", ts=10.0, status=302, content_type=""),
            make_txn(host="land.com", ts=9.0),
            make_txn(host="ek.pw", ts=8.0, content_type=_EXPLOIT_CT),
        ]
        assigner = StageAssigner()
        for txn in txns[:2]:
            assigner.add(txn)
        assert assigner.current_stage(1) is Stage.PRE_DOWNLOAD
        assigner.add(txns[2])
        assert assigner.stages() == _oracle(txns)
        assert assigner.current_stage(1) is Stage.DOWNLOAD
