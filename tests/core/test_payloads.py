"""Unit tests for the payload taxonomy."""

import pytest

from repro.core.payloads import (
    EXPLOIT_EXTENSIONS,
    PayloadClass,
    PayloadSummary,
    PayloadType,
    RANSOMWARE_EXTENSIONS,
    classify,
    classify_content_type,
    classify_extension,
    classify_magic,
    classify_uri,
    is_downloadable,
    is_exploit_type,
)


class TestClassifyExtension:
    def test_exploit_extensions(self):
        assert classify_extension("jar") is PayloadType.JAR
        assert classify_extension("exe") is PayloadType.EXE
        assert classify_extension("pdf") is PayloadType.PDF
        assert classify_extension("xap") is PayloadType.XAP
        assert classify_extension("swf") is PayloadType.SWF

    def test_case_insensitive_and_dotted(self):
        assert classify_extension("EXE") is PayloadType.EXE
        assert classify_extension(".Jar") is PayloadType.JAR

    def test_ransomware_extensions_all_map_to_crypt(self):
        for ext in RANSOMWARE_EXTENSIONS:
            assert classify_extension(ext) is PayloadType.CRYPT

    def test_forty_five_ransomware_extensions(self):
        # The paper compiled 45 distinct crypto-locker extensions [10].
        assert len(RANSOMWARE_EXTENSIONS) == 45

    def test_common_extensions(self):
        assert classify_extension("html") is PayloadType.HTML
        assert classify_extension("js") is PayloadType.JAVASCRIPT
        assert classify_extension("png") is PayloadType.IMAGE
        assert classify_extension("zip") is PayloadType.ARCHIVE

    def test_unknown_extension_returns_none(self):
        assert classify_extension("weirdext") is None


class TestClassifyUri:
    def test_uri_with_query_string(self):
        assert classify_uri("/a/b/file.exe?x=1&y=2") is PayloadType.EXE

    def test_uri_without_extension(self):
        assert classify_uri("/gate/flow") is None

    def test_uri_with_dotted_directory(self):
        assert classify_uri("/v1.2/path") is None

    def test_absolute_url(self):
        assert classify_uri("http://evil.com/drop.jar") is PayloadType.JAR


class TestClassifyContentType:
    @pytest.mark.parametrize(
        "ctype,expected",
        [
            ("application/x-msdownload", PayloadType.EXE),
            ("application/pdf", PayloadType.PDF),
            ("application/x-shockwave-flash", PayloadType.SWF),
            ("application/x-silverlight-app", PayloadType.XAP),
            ("text/html; charset=utf-8", PayloadType.HTML),
            ("image/png", PayloadType.IMAGE),
            ("application/octet-stream", PayloadType.OCTET),
        ],
    )
    def test_known_types(self, ctype, expected):
        assert classify_content_type(ctype) is expected

    def test_unknown_type(self):
        assert classify_content_type("application/x-fancy") is None

    def test_empty(self):
        assert classify_content_type("") is None


class TestClassifyMagic:
    def test_pe_header(self):
        assert classify_magic(b"MZ\x90\x00rest") is PayloadType.EXE

    def test_pdf(self):
        assert classify_magic(b"%PDF-1.5") is PayloadType.PDF

    def test_flash_variants(self):
        for magic in (b"CWS", b"FWS", b"ZWS"):
            assert classify_magic(magic + b"rest") is PayloadType.SWF

    def test_unknown(self):
        assert classify_magic(b"\x00\x01\x02") is None


class TestClassifyCombined:
    def test_uri_exploit_dominates_content_type(self):
        # Kits frequently mislabel Content-Type; the .jar URI wins.
        assert classify("/drop.jar", "text/plain") is PayloadType.JAR

    def test_content_type_wins_over_common_uri(self):
        assert classify("/page.html", "application/pdf") is PayloadType.PDF

    def test_archive_content_with_jar_uri_is_jar(self):
        assert classify("/x.jar", "application/zip") is PayloadType.JAR

    def test_magic_fallback(self):
        assert classify("", "", b"MZ\x00\x00") is PayloadType.EXE

    def test_unclassifiable_with_body_is_octet(self):
        assert classify("", "", b"\xde\xad\xbe\xef") is PayloadType.OCTET

    def test_nothing_is_empty(self):
        assert classify() is PayloadType.EMPTY

    def test_ransomware_uri(self):
        assert classify("/files/readme.locky", "") is PayloadType.CRYPT


class TestPayloadClass:
    def test_exploit_class(self):
        assert PayloadType.EXE.payload_class is PayloadClass.EXPLOIT
        assert PayloadType.DMG.payload_class is PayloadClass.EXPLOIT

    def test_ransomware_class(self):
        assert PayloadType.CRYPT.payload_class is PayloadClass.RANSOMWARE

    def test_common_class(self):
        assert PayloadType.HTML.payload_class is PayloadClass.COMMON

    def test_unknown_class(self):
        assert PayloadType.OCTET.payload_class is PayloadClass.UNKNOWN


class TestPredicates:
    def test_is_exploit_type(self):
        assert is_exploit_type(PayloadType.JAR)
        assert is_exploit_type(PayloadType.CRYPT)
        assert not is_exploit_type(PayloadType.HTML)
        assert not is_exploit_type(PayloadType.IMAGE)

    def test_is_downloadable(self):
        assert is_downloadable(PayloadType.EXE)
        assert is_downloadable(PayloadType.ARCHIVE)
        assert not is_downloadable(PayloadType.CSS)
        assert not is_downloadable(PayloadType.IMAGE)


class TestPayloadSummary:
    def test_add_and_count(self):
        summary = PayloadSummary()
        summary.add(PayloadType.EXE)
        summary.add(PayloadType.EXE)
        summary.add(PayloadType.HTML)
        assert summary.count(PayloadType.EXE) == 2
        assert summary.count(PayloadType.HTML) == 1
        assert summary.count(PayloadType.JAR) == 0

    def test_totals(self):
        summary = PayloadSummary()
        for ptype in (PayloadType.EXE, PayloadType.JAR, PayloadType.HTML,
                      PayloadType.CRYPT):
            summary.add(ptype)
        assert summary.total == 4
        assert summary.exploit_total == 3  # exe + jar + crypt

    def test_empty_summary(self):
        summary = PayloadSummary()
        assert summary.total == 0
        assert summary.exploit_total == 0
