"""Unit + property tests for redirect inference and deobfuscation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Trace
from repro.core.redirects import (
    Redirect,
    RedirectKind,
    deobfuscate,
    extract_content_redirects,
    infer_redirects,
    longest_chain_length,
    redirect_chains,
)
from repro.synthesis.obfuscation import ObfuscationStyle, obfuscate_redirect
from tests.conftest import make_txn


class TestDeobfuscate:
    def test_fromcharcode(self):
        encoded = 'String.fromCharCode(104,105)'
        assert '"hi"' in deobfuscate(encoded)

    def test_atob(self):
        import base64
        blob = base64.b64encode(b"http://x.com/").decode()
        assert "http://x.com/" in deobfuscate(f'atob("{blob}")')

    def test_concat_folding(self):
        assert '"http://evil.com/"' in deobfuscate('"http://" + "evil.com/"')

    def test_multi_chunk_concat(self):
        code = '"ht" + "tp://" + "e.com" + "/p"'
        assert '"http://e.com/p"' in deobfuscate(code)

    def test_unescape(self):
        escaped = "".join(f"%{ord(c):02x}" for c in "http://a.biz/")
        assert "http://a.biz/" in deobfuscate(f'unescape("{escaped}")')

    def test_hex_escapes(self):
        assert "AB" in deobfuscate(r"\x41\x42")

    def test_unicode_escapes(self):
        assert "AB" in deobfuscate(r"AB")

    def test_array_join(self):
        code = '["http://", "x.ru", "/gate"].join("")'
        assert '"http://x.ru/gate"' in deobfuscate(code)

    def test_reverse(self):
        code = '"' + "http://rev.com/"[::-1] + '".split("").reverse().join("")'
        assert '"http://rev.com/"' in deobfuscate(code)

    def test_plain_text_unchanged(self):
        text = "var x = 1; // nothing to undo"
        assert deobfuscate(text) == text

    def test_invalid_atob_left_alone(self):
        code = 'atob("!!notbase64!!")'
        assert deobfuscate(code) == code

    def test_nested_layers(self):
        # concat inside produces a string that then needs nothing more;
        # multiple rounds still terminate.
        code = '"a" + "b" + String.fromCharCode(99)'
        result = deobfuscate(code)
        assert '"abc"' in result


class TestExtractContentRedirects:
    def test_meta_refresh(self):
        html = '<meta http-equiv="refresh" content="0; url=http://t.com/x">'
        found = extract_content_redirects(html)
        assert (RedirectKind.META_REFRESH, "http://t.com/x") in found

    def test_iframe(self):
        html = '<iframe width="0" src="http://bad.ru/land"></iframe>'
        found = extract_content_redirects(html)
        assert (RedirectKind.IFRAME, "http://bad.ru/land") in found

    def test_js_location_variants(self):
        for expr in (
            'window.location = "http://a.com/1"',
            'document.location.replace("http://a.com/1")',
            'top.location.href = "http://a.com/1"',
            'location.assign("http://a.com/1")',
        ):
            found = extract_content_redirects(f"<script>{expr}</script>")
            assert found, expr
            assert found[0][1] == "http://a.com/1"

    def test_window_open(self):
        found = extract_content_redirects(
            '<script>window.open("http://pop.com/ad")</script>'
        )
        assert (RedirectKind.JAVASCRIPT, "http://pop.com/ad") in found

    def test_deduplication(self):
        html = (
            '<script>window.location="http://a.com/x";'
            'window.location="http://a.com/x";</script>'
        )
        assert len(extract_content_redirects(html)) == 1

    def test_no_redirects(self):
        assert extract_content_redirects("<p>hello</p>") == []

    @settings(max_examples=30, deadline=None)
    @given(style=st.sampled_from(list(ObfuscationStyle)), seed=st.integers(0, 10**6))
    def test_every_obfuscation_style_recoverable(self, style, seed):
        """Property: the deobfuscator recovers every obfuscator style."""
        rng = np.random.default_rng(seed)
        url = "http://target-host.biz/gate?x=1"
        snippet = obfuscate_redirect(url, style, rng)
        found = extract_content_redirects(snippet)
        assert any(u == url for _, u in found), (style, snippet)


class TestInferRedirects:
    def test_http_30x(self, simple_trace):
        redirects = infer_redirects(simple_trace.transactions)
        http = [r for r in redirects if r.kind is RedirectKind.HTTP_30X]
        assert len(http) == 1
        assert http[0].source == "start.com"
        assert http[0].target == "mid.com"

    def test_relative_location_resolved(self):
        txn = make_txn(host="a.com", status=302, content_type="",
                       extra_res_headers={"Location": "/other"})
        redirects = infer_redirects([txn])
        assert redirects == []  # same-host redirect: source == target

    def test_content_redirect(self):
        body = b'<script>window.location = "http://next.com/l";</script>'
        txn = make_txn(host="first.com", body=body)
        redirects = infer_redirects([txn])
        assert any(
            r.kind is RedirectKind.JAVASCRIPT and r.target == "next.com"
            for r in redirects
        )

    def test_referrer_corroboration(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="b.com", ts=2.0, referrer="http://a.com/"),
        ]
        redirects = infer_redirects(txns)
        assert any(
            r.kind is RedirectKind.REFERRER and (r.source, r.target) ==
            ("a.com", "b.com")
            for r in redirects
        )

    def test_referrer_not_duplicating_content_evidence(self):
        body = b'<iframe src="http://b.com/x"></iframe>'
        txns = [
            make_txn(host="a.com", ts=1.0, body=body),
            make_txn(host="b.com", ts=2.0, referrer="http://a.com/"),
        ]
        redirects = infer_redirects(txns)
        kinds = {r.kind for r in redirects if r.target == "b.com"}
        assert RedirectKind.IFRAME in kinds
        assert RedirectKind.REFERRER not in kinds

    def test_dedup_same_edge(self):
        txns = [
            make_txn(host="a.com", ts=1.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://b.com/1"}),
            make_txn(host="a.com", ts=2.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://b.com/2"}),
        ]
        redirects = infer_redirects(txns)
        assert len([r for r in redirects
                    if r.kind is RedirectKind.HTTP_30X]) == 1

    def test_non_textual_body_not_scanned(self):
        body = b'<iframe src="http://x.com/y"></iframe>'
        txn = make_txn(content_type="image/png", body=body)
        assert infer_redirects([txn]) == []


class TestChains:
    def _redirect(self, src, dst, ts):
        return Redirect(src, dst, RedirectKind.HTTP_30X, ts)

    def test_single_chain(self):
        redirects = [
            self._redirect("a", "b", 1.0),
            self._redirect("b", "c", 2.0),
            self._redirect("c", "d", 3.0),
        ]
        chains = redirect_chains(redirects)
        assert len(chains) == 1
        assert len(chains[0]) == 3
        assert longest_chain_length(redirects) == 3

    def test_two_independent_chains(self):
        redirects = [
            self._redirect("a", "b", 1.0),
            self._redirect("x", "y", 1.5),
            self._redirect("b", "c", 2.0),
        ]
        chains = redirect_chains(redirects)
        assert len(chains) == 2
        assert longest_chain_length(redirects) == 2

    def test_time_ordering_respected(self):
        # b->c happens BEFORE a->b: cannot chain backwards.
        redirects = [
            self._redirect("b", "c", 1.0),
            self._redirect("a", "b", 2.0),
        ]
        assert longest_chain_length(redirects) == 1

    def test_empty(self):
        assert redirect_chains([]) == []
        assert longest_chain_length([]) == 0

    def test_cross_domain_flag(self):
        assert Redirect("a.com", "b.com", RedirectKind.HTTP_30X, 0).cross_domain
        assert not Redirect(
            "x.a.com", "y.a.com", RedirectKind.HTTP_30X, 0
        ).cross_domain
        assert not Redirect(
            "shop.co.uk.example.co.uk", "example.co.uk",
            RedirectKind.HTTP_30X, 0,
        ).cross_domain
