"""Shared fixtures: small corpora and a trained classifier.

Expensive artifacts are session-scoped so the suite builds them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import (
    Headers,
    HttpMethod,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    Trace,
    TraceLabel,
)
from repro.features.extractor import extract_matrix
from repro.learning.forest import EnsembleRandomForest
from repro.synthesis.corpus import ground_truth_corpus


def make_txn(
    host: str = "example.com",
    uri: str = "/index.html",
    ts: float = 100.0,
    client: str = "victim",
    method: HttpMethod = HttpMethod.GET,
    status: int = 200,
    content_type: str = "text/html",
    body: bytes = b"",
    referrer: str = "",
    size: int | None = None,
    res_delay: float = 0.1,
    extra_req_headers: dict[str, str] | None = None,
    extra_res_headers: dict[str, str] | None = None,
) -> HttpTransaction:
    """Construct one HTTP transaction with sensible defaults."""
    req_headers = Headers({"Host": host, "User-Agent": "test-agent"})
    if referrer:
        req_headers.set("Referer", referrer)
    for name, value in (extra_req_headers or {}).items():
        req_headers.set(name, value)
    request = HttpRequest(
        method=method, uri=uri, host=host, client=client,
        timestamp=ts, headers=req_headers,
    )
    res_headers = Headers()
    if content_type:
        res_headers.set("Content-Type", content_type)
    res_headers.set("Content-Length", str(size if size is not None else len(body)))
    for name, value in (extra_res_headers or {}).items():
        res_headers.set(name, value)
    response = HttpResponse(
        status=status, timestamp=ts + res_delay, headers=res_headers,
        body=body,
    )
    return HttpTransaction(request=request, response=response)


@pytest.fixture(scope="session")
def tiny_corpus():
    """A small but class-complete ground-truth corpus."""
    return ground_truth_corpus(seed=31, scale=0.05)


@pytest.fixture(scope="session")
def small_corpus():
    """A mid-size corpus for learning tests."""
    return ground_truth_corpus(seed=17, scale=0.15)


@pytest.fixture(scope="session")
def small_dataset(small_corpus):
    """(X, y) extracted from the mid-size corpus."""
    return extract_matrix(small_corpus.traces)


@pytest.fixture(scope="session")
def trained_model(small_dataset):
    """A paper-configured ERF trained on the mid-size corpus."""
    X, y = small_dataset
    model = EnsembleRandomForest(n_trees=20, random_state=5)
    model.fit(X, y)
    return model


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def simple_trace():
    """A 4-transaction benign-looking trace with a redirect."""
    txns = [
        make_txn(host="start.com", uri="/", ts=10.0,
                 referrer="http://google.com/search?q=x"),
        make_txn(host="start.com", uri="/jump", ts=11.0, status=302,
                 content_type="", referrer="http://start.com/",
                 extra_res_headers={"Location": "http://mid.com/land"}),
        make_txn(host="mid.com", uri="/land", ts=12.0,
                 referrer="http://start.com/jump"),
        make_txn(host="mid.com", uri="/logo.png", ts=13.0,
                 content_type="image/png", referrer="http://mid.com/land"),
    ]
    return Trace(transactions=txns, label=TraceLabel.BENIGN,
                 origin="google.com")
