"""Tests for the leave-one-family-out experiment."""

import pytest

from repro.experiments import families_breakdown

SEED = 7
SCALE = 0.12


class TestFamiliesBreakdown:
    @pytest.fixture(scope="class")
    def results(self):
        return families_breakdown.run(SEED, SCALE)

    def test_all_families_evaluated(self, results):
        assert len(results) == 10

    def test_metrics_shape(self, results):
        for family, metrics in results.items():
            assert set(metrics) == {"episodes", "detected", "tpr",
                                    "mean_score"}
            assert 0.0 <= metrics["tpr"] <= 1.0
            assert metrics["detected"] <= metrics["episodes"]

    def test_generalization_holds(self, results):
        weighted = sum(
            m["tpr"] * m["episodes"] for m in results.values()
        ) / sum(m["episodes"] for m in results.values())
        assert weighted > 0.8

    def test_report_renders(self):
        text = families_breakdown.report(SEED, SCALE)
        assert "leave-one-family-out" in text
        assert "Angler" in text
