"""Unit tests for the prior-work baseline abstractions."""

import numpy as np
import pytest

from repro.baselines.downloader_graph import (
    DOWNLOADER_FEATURES,
    build_download_graph,
    downloader_features,
)
from repro.baselines.redirect_chain import (
    REDIRECT_FEATURES,
    redirect_features,
)
from repro.core.model import Trace, TraceLabel
from tests.conftest import make_txn


def _download_trace():
    txns = [
        make_txn(host="pages.com", uri="/index.html", ts=1.0),
        make_txn(host="files.com", uri="/a.exe", ts=10.0,
                 content_type="application/x-msdownload",
                 referrer="http://pages.com/index.html", size=1000),
        make_txn(host="files.com", uri="/b.zip", ts=20.0,
                 content_type="application/zip",
                 referrer="http://files.com/a.exe", size=2000),
    ]
    return Trace(transactions=txns, label=TraceLabel.INFECTION)


class TestDownloaderGraph:
    def test_nodes_are_downloads(self):
        graph = build_download_graph(_download_trace())
        assert graph.number_of_nodes() == 2  # exe + zip (html is not)

    def test_provenance_edge(self):
        graph = build_download_graph(_download_trace())
        assert graph.number_of_edges() == 1

    def test_feature_vector_shape(self):
        vec = downloader_features(_download_trace())
        assert vec.shape == (len(DOWNLOADER_FEATURES),)
        assert np.all(np.isfinite(vec))

    def test_total_bytes(self):
        vec = downloader_features(_download_trace())
        index = DOWNLOADER_FEATURES.index("dg_total_bytes")
        assert vec[index] == 3000.0

    def test_empty_trace(self):
        vec = downloader_features(Trace(transactions=[make_txn()]))
        assert vec[DOWNLOADER_FEATURES.index("dg_order")] == 0.0

    def test_growth_rate(self):
        vec = downloader_features(_download_trace())
        index = DOWNLOADER_FEATURES.index("dg_growth_rate")
        # 1 inter-download interval over 10 s -> 6 downloads/minute
        assert vec[index] == pytest.approx(6.0)

    def test_corpus_separation(self, tiny_corpus):
        from repro.baselines.downloader_graph import extract_matrix
        X, y = extract_matrix(tiny_corpus.traces)
        order = X[:, DOWNLOADER_FEATURES.index("dg_order")]
        assert order[y == 1].mean() > order[y == 0].mean()


class TestRedirectChain:
    def test_feature_vector_shape(self, simple_trace):
        vec = redirect_features(simple_trace)
        assert vec.shape == (len(REDIRECT_FEATURES),)
        assert np.all(np.isfinite(vec))

    def test_counts_30x_hop(self, simple_trace):
        vec = redirect_features(simple_trace)
        assert vec[REDIRECT_FEATURES.index("rc_http_30x_hops")] == 1.0
        assert vec[REDIRECT_FEATURES.index("rc_chain_count")] == 1.0

    def test_no_redirects(self):
        trace = Trace(transactions=[make_txn()], label=TraceLabel.BENIGN)
        vec = redirect_features(trace)
        assert vec[REDIRECT_FEATURES.index("rc_total_hops")] == 0.0

    def test_ip_literal_hops(self):
        txns = [
            make_txn(host="a.com", ts=1.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://10.1.2.3/x"}),
        ]
        vec = redirect_features(Trace(transactions=txns))
        assert vec[REDIRECT_FEATURES.index("rc_ip_literal_hops")] == 1.0

    def test_corpus_separation(self, tiny_corpus):
        from repro.baselines.redirect_chain import extract_matrix
        X, y = extract_matrix(tiny_corpus.traces)
        hops = X[:, REDIRECT_FEATURES.index("rc_total_hops")]
        assert hops[y == 1].mean() > hops[y == 0].mean()
