"""Tests for the detection tracer: rings, sampling, determinism, I/O."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    canonical_events,
    disable_tracing,
    enable_tracing,
    get_tracer,
    parse_trace,
    read_trace,
    set_tracer,
    tracing_enabled,
    use_tracer,
    write_trace,
)
from repro.obs.trace import _MAX_CLUES, _env_enabled


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTracer:
    def test_emit_records_in_order(self):
        tracer = Tracer()
        tracer.emit("watch", ts=1.0, client="c", watch="c#1")
        tracer.emit("clue", ts=2.0, client="c", watch="c#1",
                    server="evil.example", payload="exe", chain_length=3)
        tracer.emit("verdict", ts=3.0, client="c", watch="c#1",
                    decision="alert", score=0.9)
        events = tracer.events()
        assert [e.kind for e in events] == ["watch", "clue", "verdict"]
        assert [e.seq for e in events] == [0, 1, 2]
        assert events[1].data["server"] == "evil.example"

    def test_watchless_events_bypass_rings(self):
        tracer = Tracer()
        tracer.emit("prune", ts=5.0)
        assert tracer.event_count == 1
        assert tracer.events()[0].watch == ""

    def test_watch_event_resets_recycled_key(self):
        """Watch keys recycle per client; a fresh watch must not inherit
        its predecessor's timeline or clue summary."""
        tracer = Tracer()
        tracer.emit("watch", ts=1.0, client="c", watch="c#1")
        tracer.emit("clue", ts=1.5, client="c", watch="c#1",
                    server="a", payload="exe", chain_length=1)
        tracer.close_watch("c#1", alerted=True)
        tracer.emit("watch", ts=9.0, client="c", watch="c#1")
        summary = tracer.watch_summary("c#1")
        assert summary.clue_count == 0
        assert len(summary.events) == 1

    def test_per_watch_ring_is_bounded(self):
        tracer = Tracer(max_events_per_watch=4)
        tracer.emit("watch", ts=0.0, client="c", watch="w")
        for i in range(10):
            tracer.emit("score", ts=float(i + 1), client="c", watch="w",
                        score=0.1)
        summary = tracer.watch_summary("w")
        assert len(summary.events) == 4
        assert tracer.dropped_events == 7  # 11 emissions, ring of 4
        # The newest events survive.
        assert summary.events[-1].ts == 10.0

    def test_clue_summary_survives_ring_rotation(self):
        tracer = Tracer(max_events_per_watch=2)
        tracer.emit("watch", ts=0.0, client="c", watch="w")
        tracer.emit("clue", ts=1.0, client="c", watch="w",
                    server="evil", payload="exe", chain_length=2)
        for i in range(5):
            tracer.emit("score", ts=float(i + 2), client="c", watch="w",
                        score=0.2)
        summary = tracer.watch_summary("w")
        assert all(e.kind == "score" for e in summary.events)
        assert summary.clue_count == 1
        assert summary.clues[0].data["server"] == "evil"

    def test_clue_summary_is_bounded(self):
        tracer = Tracer()
        tracer.emit("watch", ts=0.0, client="c", watch="w")
        for i in range(_MAX_CLUES + 10):
            tracer.emit("clue", ts=float(i), client="c", watch="w",
                        server=f"s{i}", payload="exe", chain_length=1)
        summary = tracer.watch_summary("w")
        assert len(summary.clues) == _MAX_CLUES
        assert summary.clue_count == _MAX_CLUES + 10

    def test_max_watches_evicts_stalest(self):
        tracer = Tracer(max_watches=2)
        tracer.emit("watch", ts=0.0, client="a", watch="a#1")
        tracer.emit("watch", ts=1.0, client="b", watch="b#1")
        tracer.emit("watch", ts=2.0, client="c", watch="c#1")
        assert tracer.dropped_watches == 1
        assert tracer.watch_summary("a#1") is None
        # The evicted timeline flushed as a non-alerting close.
        assert any(e.watch == "a#1" for e in tracer.events())

    def test_global_done_buffer_is_bounded(self):
        tracer = Tracer(max_events=5)
        for i in range(10):
            tracer.emit("prune", ts=float(i))
        assert tracer.event_count == 5
        assert tracer.dropped_events == 5
        assert [e.ts for e in tracer.events()] == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_alerts_sampling_drops_non_alerting_watches(self):
        tracer = Tracer(sample="alerts")
        tracer.emit("watch", ts=0.0, client="a", watch="a#1")
        tracer.emit("watch", ts=1.0, client="b", watch="b#1")
        tracer.close_watch("a#1", alerted=False)
        tracer.close_watch("b#1", alerted=True)
        events = tracer.events()
        assert {e.watch for e in events} == {"b#1"}

    def test_alerts_sampling_excludes_open_watches(self):
        tracer = Tracer(sample="alerts")
        tracer.emit("watch", ts=0.0, client="a", watch="a#1")
        assert tracer.events() == []
        full = Tracer(sample="full")
        full.emit("watch", ts=0.0, client="a", watch="a#1")
        assert len(full.events()) == 1

    def test_unknown_sample_mode_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample="everything")

    def test_drain_resets_state(self):
        tracer = Tracer()
        tracer.emit("watch", ts=0.0, client="a", watch="a#1")
        tracer.emit("prune", ts=1.0)
        assert len(tracer.drain()) == 2
        assert tracer.event_count == 0
        assert tracer.drain() == []

    def test_events_sorted_by_ts_then_seq(self):
        tracer = Tracer()
        tracer.emit("watch", ts=5.0, client="a", watch="a#1")
        tracer.emit("watch", ts=1.0, client="b", watch="b#1")
        tracer.emit("clue", ts=1.0, client="b", watch="b#1",
                    server="s", payload="exe", chain_length=1)
        events = tracer.events()
        assert [(e.ts, e.seq) for e in events] == [(1.0, 1), (1.0, 2),
                                                   (5.0, 0)]

    def test_mono_uses_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 2.5
        event = tracer.emit("prune", ts=0.0)
        assert event.mono == 2.5


class TestCanonicalForm:
    def test_canonical_strips_volatile_fields(self):
        """``mono``/``latency_s`` are wall clock; ``batch`` depends on
        how requests coalesced in this process, not on the stream."""
        tracer = Tracer(clock=FakeClock())
        tracer.emit("score", ts=1.0, client="c", watch="w",
                    score=0.5, batch=3, latency_s=0.001)
        canon = canonical_events(tracer.events())
        assert canon == [{
            "kind": "score", "ts": 1.0, "client": "c", "watch": "w",
            "data": {"score": 0.5},
        }]

    def test_to_dict_keeps_wall_clock_fields(self):
        tracer = Tracer(clock=FakeClock())
        event = tracer.emit("score", ts=1.0, client="c", watch="w",
                            score=0.5, latency_s=0.001)
        full = event.to_dict()
        assert full["mono"] == 0.0
        assert full["data"]["latency_s"] == 0.001


class TestNullTracer:
    def test_null_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("watch", ts=0.0, watch="w") is None
        assert NULL_TRACER.watch_summary("w") is None
        assert NULL_TRACER.close_watch("w", alerted=True) is None
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.event_count == 0


class TestTracerSwap:
    def test_enable_disable_roundtrip(self):
        previous = get_tracer()
        try:
            tracer = enable_tracing(sample="alerts")
            assert tracing_enabled()
            assert get_tracer() is tracer
            assert tracer.sample == "alerts"
            disable_tracing()
            assert not tracing_enabled()
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)

    def test_use_tracer_restores_previous(self):
        previous = get_tracer()
        with use_tracer() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is previous

    def test_env_parsing(self):
        assert _env_enabled("1") and _env_enabled("true")
        assert not _env_enabled("0") and not _env_enabled(None)


class TestTraceIO:
    def _sample_events(self):
        tracer = Tracer(clock=FakeClock())
        tracer.emit("watch", ts=1.0, client="c", watch="c#1")
        tracer.emit("verdict", ts=2.0, client="c", watch="c#1",
                    decision="alert", score=0.9)
        return tracer.drain()

    def test_write_read_roundtrip_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = self._sample_events()
        assert write_trace(events, path) == 2
        loaded = read_trace(path)
        assert [e["kind"] for e in loaded] == ["watch", "verdict"]
        assert loaded[1]["data"]["score"] == 0.9

    def test_write_appends_to_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = self._sample_events()
        write_trace(events, path)
        write_trace(events, path)
        assert len(read_trace(path)) == 4

    def test_stream_sink_not_closed(self):
        stream = io.StringIO()
        write_trace(self._sample_events(), stream)
        assert not stream.closed
        assert len(parse_trace(stream.getvalue().splitlines())) == 2

    def test_lines_are_stable_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(self._sample_events(), path)
        with open(path) as handle:
            for line in handle:
                decoded = json.loads(line)
                assert list(decoded) == sorted(decoded)
