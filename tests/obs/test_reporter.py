"""Tests for the JSON-lines pipeline stats reporter."""

import io
import json

from repro.obs import (
    MetricsRegistry,
    PipelineStatsReporter,
    parse_snapshots,
    read_snapshots,
)


class FakeClock:
    """Deterministic monotonic clock for interval tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestReporter:
    def test_emit_collects_lines_without_sink(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(7)
        reporter = PipelineStatsReporter(registry=registry)
        data = reporter.emit("checkpoint")
        assert data["reason"] == "checkpoint"
        assert data["counters"]["events"] == 7
        assert reporter.emitted == 1
        parsed = parse_snapshots(reporter.lines)
        assert parsed == [data]

    def test_jsonl_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "stats.jsonl")
        registry = MetricsRegistry()
        registry.counter("pkts").inc(3)
        registry.histogram("lat").observe(0.5)
        reporter = PipelineStatsReporter(registry=registry, out=path)
        reporter.emit("interval")
        registry.counter("pkts").inc(2)
        reporter.finalize()
        snapshots = read_snapshots(path)
        assert [s["reason"] for s in snapshots] == ["interval", "finalize"]
        assert [s["counters"]["pkts"] for s in snapshots] == [3, 5]
        assert snapshots[0]["histograms"]["lat"]["count"] == 1
        # Every line is standalone JSON with stable key order.
        with open(path) as handle:
            for line in handle:
                assert json.loads(line)

    def test_file_sink_appends(self, tmp_path):
        path = str(tmp_path / "stats.jsonl")
        for _ in range(2):
            reporter = PipelineStatsReporter(
                registry=MetricsRegistry(), out=path
            )
            reporter.finalize()
        assert len(read_snapshots(path)) == 2

    def test_stream_sink_is_not_closed(self):
        stream = io.StringIO()
        reporter = PipelineStatsReporter(
            registry=MetricsRegistry(), out=stream
        )
        reporter.finalize()
        assert not stream.closed
        assert parse_snapshots(stream.getvalue().splitlines())

    def test_maybe_emit_honours_interval(self):
        clock = FakeClock()
        reporter = PipelineStatsReporter(
            registry=MetricsRegistry(), interval=5.0, clock=clock
        )
        assert reporter.maybe_emit() is None  # 0s elapsed
        clock.advance(4.9)
        assert reporter.maybe_emit() is None
        clock.advance(0.2)
        assert reporter.maybe_emit() is not None
        # Interval restarts from the last emission.
        clock.advance(4.9)
        assert reporter.maybe_emit() is None
        clock.advance(0.2)
        assert reporter.maybe_emit() is not None
        assert reporter.emitted == 2

    def test_maybe_emit_disabled_without_interval(self):
        clock = FakeClock()
        reporter = PipelineStatsReporter(
            registry=MetricsRegistry(), clock=clock
        )
        clock.advance(1e9)
        assert reporter.maybe_emit() is None
        assert reporter.emitted == 0

    def test_elapsed_seconds_uses_clock(self):
        clock = FakeClock()
        reporter = PipelineStatsReporter(
            registry=MetricsRegistry(), clock=clock
        )
        clock.advance(3.5)
        assert reporter.snapshot()["elapsed_seconds"] == 3.5


class TestDeltasAndRates:
    def test_first_snapshot_deltas_equal_totals(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.counter("decode.packets").inc(100)
        reporter = PipelineStatsReporter(registry=registry, clock=clock)
        clock.advance(4.0)
        data = reporter.snapshot()
        assert data["interval_seconds"] == 4.0
        assert data["deltas"]["decode.packets"] == 100
        assert data["rates"]["decode.packets_per_s"] == 25.0

    def test_deltas_rebaseline_on_emit(self):
        """Per-interval deltas measure each interval, not the lifetime."""
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.counter("decode.packets").inc(100)
        reporter = PipelineStatsReporter(registry=registry, clock=clock)
        clock.advance(2.0)
        first = reporter.emit("interval")
        assert first["deltas"]["decode.packets"] == 100
        registry.counter("decode.packets").inc(50)
        clock.advance(10.0)
        second = reporter.emit("interval")
        assert second["counters"]["decode.packets"] == 150  # cumulative
        assert second["deltas"]["decode.packets"] == 50     # this interval
        assert second["rates"]["decode.packets_per_s"] == 5.0
        assert second["interval_seconds"] == 10.0

    def test_snapshot_does_not_advance_baseline(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.counter("n").inc(5)
        reporter = PipelineStatsReporter(registry=registry, clock=clock)
        clock.advance(1.0)
        assert reporter.snapshot()["deltas"]["n"] == 5
        assert reporter.snapshot()["deltas"]["n"] == 5  # unchanged

    def test_zero_interval_reports_no_rates(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(5)
        reporter = PipelineStatsReporter(
            registry=registry, clock=FakeClock()
        )
        data = reporter.snapshot()
        assert data["interval_seconds"] == 0.0
        assert data["rates"] == {}

    def test_histogram_samples_stripped_from_lines(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.5)
        reporter = PipelineStatsReporter(registry=registry)
        data = reporter.emit("interval")
        assert "samples" not in data["histograms"]["lat"]
        # ... and the registry's own buffer is untouched.
        assert registry.histogram("lat").snapshot()["samples"] == [0.5]
