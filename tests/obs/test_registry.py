"""Tests for the metrics primitives and the registry swap machinery."""

import numpy as np
import pytest

from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)
from repro.obs.registry import (
    _MAX_SAMPLES,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    _NULL_SPAN,
    _env_enabled,
)


class TestCounter:
    def test_inc(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_exact_stats_under_cap(self):
        histogram = Histogram("h")
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for value in values:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == 15.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0
        assert histogram.mean == 3.0
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 5.0
        assert histogram.quantile(0.5) == 3.0
        # Linear interpolation at a non-sample position.
        assert histogram.quantile(0.25) == 2.0
        assert histogram.quantile(0.125) == pytest.approx(1.5)

    def test_quantiles_match_numpy_under_cap(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=500)
        histogram = Histogram("h")
        for value in values:
            histogram.observe(float(value))
        for q in (0.1, 0.5, 0.9, 0.99):
            assert histogram.quantile(q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_empty_quantile_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_decimation_is_deterministic_and_bounded(self):
        a, b = Histogram("a", max_samples=64), Histogram("b", max_samples=64)
        for i in range(10_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a._samples == b._samples
        assert len(a._samples) < 64
        # Exact aggregates survive decimation untouched.
        assert a.count == 10_000
        assert a.min == 0.0 and a.max == 9_999.0
        # Quantiles remain a sane approximation of the uniform ramp.
        assert a.quantile(0.5) == pytest.approx(5_000.0, rel=0.1)

    def test_snapshot_keys(self):
        histogram = Histogram("h")
        histogram.observe(2.0)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum", "min", "max", "mean",
                             "p50", "p90", "p99", "samples"}
        assert snap["count"] == 1 and snap["p50"] == 2.0
        # The retained sample buffer rides along for exact fleet-merge
        # quantiles (the stats reporter strips it from emitted lines).
        assert snap["samples"] == [2.0]

    def test_default_cap(self):
        histogram = Histogram("h")
        for i in range(3 * _MAX_SAMPLES):
            histogram.observe(float(i))
        assert len(histogram._samples) <= _MAX_SAMPLES


class TestSpan:
    def test_span_records_into_named_histogram(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            pass
        histogram = registry.histogram("span.stage")
        assert histogram.count == 1
        assert histogram.min >= 0.0

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("x")
        assert registry.histogram("span.boom").count == 1


class TestNullRegistry:
    def test_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is _NULL_COUNTER
        assert registry.counter("b") is _NULL_COUNTER
        assert registry.gauge("a") is _NULL_GAUGE
        assert registry.histogram("a") is _NULL_HISTOGRAM
        assert registry.span("a") is _NULL_SPAN

    def test_noop_operations(self):
        registry = NullRegistry()
        registry.counter("a").inc(100)
        registry.gauge("a").set(5)
        registry.histogram("a").observe(1.0)
        with registry.span("a"):
            pass
        assert registry.counter("a").value == 0
        assert registry.histogram("a").count == 0
        assert registry.histogram("a").quantile(0.5) is None
        assert not registry.enabled

    def test_snapshot_shape(self):
        snap = NullRegistry().snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}


class TestRegistrySwap:
    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        with use_registry() as registry:
            assert get_registry() is registry
            assert isinstance(registry, MetricsRegistry)
            assert metrics_enabled()
        assert get_registry() is before

    def test_use_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(ValueError):
            with use_registry(NULL_REGISTRY):
                raise ValueError("x")
        assert get_registry() is before

    def test_enable_disable(self):
        previous = get_registry()
        try:
            registry = enable_metrics()
            assert get_registry() is registry and registry.enabled
            disable_metrics()
            assert get_registry() is NULL_REGISTRY
        finally:
            set_registry(previous)

    def test_snapshot_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(3)
        registry.counter("a.count").inc(1)
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 3
        assert snap["gauges"]["g"] == 2.0
        assert snap["histograms"]["h"]["count"] == 1


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on ", "True"])
    def test_truthy(self, value):
        assert _env_enabled(value)

    @pytest.mark.parametrize("value", [None, "", "0", "false", "off", "nope"])
    def test_falsy(self, value):
        assert not _env_enabled(value)
