"""Property tests on corpus-level invariants the pipeline relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import TraceLabel
from repro.core.payloads import PayloadType, is_downloadable, is_exploit_type
from repro.core.sessions import group_sessions
from repro.core.stages import Stage, assign_stages
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.corpus import ground_truth_corpus
from repro.synthesis.families import EXPLOIT_KIT_FAMILIES
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator


class TestInfectionEpisodeInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6),
           family_index=st.integers(0, len(EXPLOIT_KIT_FAMILIES) - 1))
    def test_every_episode_delivers_a_payload(self, seed, family_index):
        """Property: every infection has at least one risky download."""
        rng = np.random.default_rng(seed)
        generator = InfectionGenerator(
            EXPLOIT_KIT_FAMILIES[family_index], rng
        )
        trace = generator.generate()
        delivered = [
            t for t in trace.transactions
            if t.status == 200 and is_downloadable(t.payload_type)
        ]
        assert delivered

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_single_victim_per_episode(self, seed):
        rng = np.random.default_rng(seed)
        trace = InfectionGenerator(EXPLOIT_KIT_FAMILIES[0], rng).generate()
        assert len({t.client for t in trace.transactions}) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_stage_monotonicity(self, seed):
        """Property: post-download edges never precede the first
        exploit delivery."""
        rng = np.random.default_rng(seed)
        trace = InfectionGenerator(
            EXPLOIT_KIT_FAMILIES[seed % 4], rng
        ).generate(EpisodeConfig(with_post_download=True, stealth=False))
        stages = assign_stages(trace.transactions)
        exploit_times = [
            t.timestamp for t in trace.transactions
            if t.status == 200 and is_exploit_type(t.payload_type)
        ]
        if not exploit_times:
            return  # redirectless crypt-only episodes may classify oddly
        first_exploit = min(exploit_times)
        for txn, stage in zip(trace.transactions, stages):
            if stage is Stage.POST_DOWNLOAD:
                assert txn.timestamp >= first_exploit

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_benign_sessions_have_no_exploit_payloads(self, seed):
        rng = np.random.default_rng(seed)
        trace = BenignGenerator(rng).generate_session()
        assert trace.label is TraceLabel.BENIGN
        types = {t.payload_type for t in trace.transactions}
        assert PayloadType.CRYPT not in types
        assert PayloadType.SWF not in types

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_session_grouping_total(self, seed):
        """Property: grouping partitions the stream losslessly."""
        rng = np.random.default_rng(seed)
        trace = BenignGenerator(rng).generate_session()
        clusters = group_sessions(trace.transactions)
        regrouped = sum(len(c.transactions) for c in clusters)
        assert regrouped == len(trace.transactions)


class TestCorpusComposition:
    def test_scaled_counts_proportional(self):
        corpus = ground_truth_corpus(seed=3, scale=0.04)
        assert len(corpus.benign) == round(980 * 0.04)
        per_family = {
            f.name: len(corpus.by_family(f.name))
            for f in EXPLOIT_KIT_FAMILIES
        }
        assert per_family["Angler"] == round(253 * 0.04)
        assert per_family["Goon"] == max(1, round(19 * 0.04))

    def test_stealth_fraction_zero(self):
        corpus = ground_truth_corpus(seed=3, scale=0.04,
                                     stealth_fraction=0.0)
        assert not any(t.meta.get("stealth") for t in corpus.infections)

    def test_stealth_fraction_one(self):
        corpus = ground_truth_corpus(seed=3, scale=0.02,
                                     stealth_fraction=1.0)
        assert all(t.meta.get("stealth") for t in corpus.infections)
