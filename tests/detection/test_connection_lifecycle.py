"""Connection-lifecycle regressions: the tap must run forever.

Before this suite existed, two lifecycle bugs made a long-running tap
strangle itself:

* closed streams were never evicted from ``TcpReassembler._streams`` /
  ``LiveDecoder._pairers`` / ``_not_http``, so the ``max_connections``
  overload cap filled with *dead* connections — after cap-many total
  connections, every new flow was shed forever as ``decode.dropped``;
* any SYN on an *established* stream overwrote ``next_seq`` and
  reassigned ``stream.client``, so one forged packet desynchronized
  reassembly for the rest of the connection.

Each test here fails against the old behaviour.
"""

from repro.detection.live import LiveDecoder, OverloadPolicy
from repro.loadgen.episodes import (
    HostAllocator,
    RawConnection,
    _http_get,
    _http_response,
)
from repro.net.flows import transactions_from_packets
from repro.net.packets import SYN, encode_tcp_in_ipv4_ethernet
from repro.net.pcap import PcapPacket
from repro.obs import MetricsRegistry, use_registry


def _conversation(conn: RawConnection, ts: float, uri: str = "/page",
                  body: bytes = b"<html>ok</html>") -> list[PcapPacket]:
    """Handshake, one GET/200 exchange, graceful close."""
    packets = conn.open(ts)
    packets += conn.send(ts + 0.01, True,
                         _http_get(conn.server_ip, uri, "test-agent"))
    packets += conn.send(ts + 0.02, False, _http_response(200, body))
    packets += conn.close(ts + 0.03)
    return packets


def _decode_all(decoder: LiveDecoder, packets) -> list:
    transactions = []
    for packet in packets:
        transactions.extend(decoder.feed(packet))
    transactions.extend(decoder.flush())
    return transactions


class TestLongRunLifecycle:
    def test_sequential_connections_past_cap_all_decode(self):
        """Open/close far more connections than ``max_connections``:
        every one must decode, none may be shed, and per-connection
        state must stay bounded by the linger window, not by the total
        connection count."""
        cap = 32
        total = 200
        registry = MetricsRegistry()
        with use_registry(registry):
            decoder = LiveDecoder(policy=OverloadPolicy(
                max_connections=cap, closed_linger=5.0,
            ))
            hosts = HostAllocator()
            transactions = []
            for i in range(total):
                ip, port = hosts.client()
                conn = RawConnection(ip, port, hosts.server())
                for packet in _conversation(conn, ts=float(i)):
                    transactions.extend(decoder.feed(packet))
            transactions.extend(decoder.flush())
        counters = registry.snapshot()["counters"]
        assert len(transactions) == total
        assert counters["decode.dropped"] == 0
        assert counters["decode.evicted_connections"] > total - cap
        # Bounded state: only connections inside the linger window
        # (plus the final few never swept) remain tracked.
        assert len(decoder._pairers) <= cap
        assert len(decoder._reassembler) <= cap
        assert len(decoder._not_http) == 0

    def test_infinite_linger_retains_all_state(self):
        """Contrast case: with eviction disabled (infinite linger) the
        same run keeps every dead connection's state — the leak the
        linger sweep exists to stop.  Decoding still works (the cap now
        counts live connections), but memory grows with *total*
        connections instead of concurrent ones."""
        total = 64
        decoder = LiveDecoder(policy=OverloadPolicy(
            max_connections=32, closed_linger=float("inf"),
        ))
        hosts = HostAllocator()
        transactions = []
        for i in range(total):
            ip, port = hosts.client()
            conn = RawConnection(ip, port, hosts.server())
            for packet in _conversation(conn, ts=float(i)):
                transactions.extend(decoder.feed(packet))
        transactions.extend(decoder.flush())
        assert len(transactions) == total
        assert len(decoder._reassembler) == total
        assert len(decoder._pairers) == total

    def test_live_connections_never_evicted(self):
        """The cap sheds *new* flows; established ones keep decoding."""
        decoder = LiveDecoder(policy=OverloadPolicy(
            max_connections=1, closed_linger=1.0,
        ))
        hosts = HostAllocator()
        ip_a, port_a = hosts.client()
        ip_b, port_b = hosts.client()
        server = hosts.server()
        held = RawConnection(ip_a, port_a, server)
        shed = RawConnection(ip_b, port_b, server)
        transactions = []
        for packet in held.open(0.0):
            transactions.extend(decoder.feed(packet))
        for packet in shed.open(0.1):  # over cap: dropped
            transactions.extend(decoder.feed(packet))
        for packet in held.send(0.2, True,
                                _http_get(server, "/kept", "agent")):
            transactions.extend(decoder.feed(packet))
        for packet in held.send(0.3, False, _http_response(200, b"ok")):
            transactions.extend(decoder.feed(packet))
        for packet in held.close(0.4):
            transactions.extend(decoder.feed(packet))
        transactions.extend(decoder.flush())
        assert [t.request.uri for t in transactions] == ["/kept"]


class TestSpoofedSyn:
    def _established(self):
        hosts = HostAllocator()
        ip, port = hosts.client()
        conn = RawConnection(ip, port, hosts.server())
        return conn

    def _forged_syn(self, conn: RawConnection, ts: float,
                    from_client: bool, isn: int) -> PcapPacket:
        if from_client:
            src_ip, src_port = conn.client_ip, conn.client_port
            dst_ip, dst_port = conn.server_ip, conn.server_port
        else:
            src_ip, src_port = conn.server_ip, conn.server_port
            dst_ip, dst_port = conn.client_ip, conn.client_port
        return PcapPacket(ts, encode_tcp_in_ipv4_ethernet(
            src_ip, dst_ip, src_port, dst_port, isn, 0, SYN,
        ))

    def test_forged_client_syn_does_not_desync(self):
        """A spoofed SYN claiming the client's endpoint mid-connection
        must not reset ``next_seq`` (which would discard the genuine
        in-flight response bytes as retransmissions)."""
        conn = self._established()
        decoder = LiveDecoder()
        packets = conn.open(0.0)
        packets += conn.send(0.01, True,
                             _http_get(conn.server_ip, "/real", "agent"))
        packets.append(self._forged_syn(conn, 0.015, from_client=True,
                                        isn=999_999_999))
        packets += conn.send(0.02, False, _http_response(200, b"payload"))
        packets += conn.close(0.03)
        transactions = _decode_all(decoder, packets)
        assert [t.request.uri for t in transactions] == ["/real"]
        assert transactions[0].response is not None
        assert transactions[0].response.body == b"payload"

    def test_forged_server_syn_keeps_client_designation(self):
        """A spoofed pure SYN from the *server* endpoint used to flip
        ``stream.client`` to the server, inverting who the detector
        blames.  The designation must stick once established."""
        conn = self._established()
        decoder = LiveDecoder()
        packets = conn.open(0.0)
        packets += conn.send(0.01, True,
                             _http_get(conn.server_ip, "/whoami", "agent"))
        packets.append(self._forged_syn(conn, 0.015, from_client=False,
                                        isn=31_337))
        packets += conn.send(0.02, False, _http_response(200, b"ok"))
        packets += conn.close(0.03)
        transactions = _decode_all(decoder, packets)
        assert len(transactions) == 1
        assert transactions[0].client == conn.client_ip

    def test_forged_syn_live_equals_batch(self):
        """Both pipelines shrug the forged SYN off identically."""
        conn = self._established()
        packets = conn.open(0.0)
        packets += conn.send(0.01, True,
                             _http_get(conn.server_ip, "/x", "agent"))
        packets.append(self._forged_syn(conn, 0.015, from_client=True,
                                        isn=123_456))
        packets += conn.send(0.02, False, _http_response(200, b"same"))
        packets += conn.close(0.03)
        live = _decode_all(LiveDecoder(), packets)
        batch = transactions_from_packets(packets)
        assert len(live) == len(batch) == 1
        assert live[0].request == batch[0].request
        assert live[0].response == batch[0].response


class TestTupleReuse:
    def test_fresh_syn_on_closed_tuple_starts_new_conversation(self):
        """TIME_WAIT-style reuse: a fresh handshake on a just-closed
        4-tuple is a *new* connection, in live and batch alike."""
        hosts = HostAllocator()
        ip, port = hosts.client()
        server = hosts.server()
        first = RawConnection(ip, port, server)
        second = RawConnection(ip, port, server)
        second.client_isn = 7_000_000
        second.server_isn = 9_000_000
        packets = _conversation(first, 0.0, uri="/first")
        packets += _conversation(second, 1.0, uri="/second")
        live = _decode_all(LiveDecoder(), packets)
        batch = transactions_from_packets(packets)
        assert sorted(t.request.uri for t in live) == ["/first", "/second"]
        assert len(batch) == len(live)
        for ours, theirs in zip(
            sorted(live, key=lambda t: t.timestamp),
            sorted(batch, key=lambda t: t.timestamp),
        ):
            assert ours.request == theirs.request
            assert ours.response == theirs.response
