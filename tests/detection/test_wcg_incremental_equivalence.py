"""Differential tests: incremental WCG maintenance vs. from-scratch builds.

The live path (one long-lived :class:`WCGBuilder` fed per transaction,
one caching :class:`FeatureExtractor`) must produce, after *every*
prefix of the stream, exactly the graph and exactly the feature vector
a cold :func:`build_wcg` + fresh extraction produces for that prefix —
byte-identical, not approximately equal.  This is the contract that
lets the detector trust cached vectors (DESIGN.md §9).

Streams come from the synthesis corpus (realistic infections and benign
browsing) plus randomized shuffles, so both the in-order fast path and
the out-of-order replay path are exercised.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.builder import WCGBuilder, build_wcg
from repro.core.wcg import WebConversationGraph
from repro.features.extractor import FeatureExtractor
from repro.synthesis.corpus import ground_truth_corpus

_PREFIX_CAP = 28  # transactions per stream (keeps the O(n^2) check fast)


def _fingerprint(wcg: WebConversationGraph):
    """Order-independent but otherwise complete content snapshot."""
    nodes = sorted(
        (
            host,
            wcg.node_data(host).kind.value,
            tuple(sorted(wcg.node_data(host).uris)),
            tuple(sorted(
                (str(k), v)
                for k, v in wcg.node_data(host).payloads.counts.items()
            )),
        )
        for host in wcg.hosts()
    )
    edges = sorted(
        (
            source, target, data.kind.value, data.timestamp,
            data.stage.value, data.method, data.uri_length, data.status,
            str(data.payload_type), data.payload_size, data.redirect_kind,
            data.cross_domain, data.referrer, data.user_agent,
        )
        for source, target, data in wcg.edges()
    )
    return (
        wcg.victim, wcg.origin, wcg.dnt, wcg.x_flash_version,
        nodes, edges,
    )


def _streams():
    corpus = ground_truth_corpus(seed=97, scale=0.02)
    picked = corpus.infections[:3] + corpus.benign[:3]
    rng = random.Random(41)
    streams = []
    for trace in picked:
        txns = list(trace.transactions)[:_PREFIX_CAP]
        streams.append(("in-order", sorted(txns, key=lambda t: t.timestamp)))
        shuffled = list(txns)
        rng.shuffle(shuffled)
        streams.append(("shuffled", shuffled))
    return streams


@pytest.mark.parametrize(
    "label, txns", _streams(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_every_prefix_matches_cold_build(label, txns):
    builder = WCGBuilder()
    live_extractor = FeatureExtractor()
    for count in range(1, len(txns) + 1):
        builder.add(txns[count - 1])
        live = builder.build()
        cold = build_wcg(txns[:count])

        assert _fingerprint(live) == _fingerprint(cold), (
            f"graph divergence after prefix of {count} ({label})"
        )
        assert live.counters == cold.counters
        assert live.timestamps() == cold.timestamps()
        assert list(live.request_timestamps()) == \
            list(cold.request_timestamps())

        live_vector = live_extractor.extract(live)
        cold_vector = FeatureExtractor().extract(cold)
        # Byte-identity, not approx: the live path serves these vectors
        # from version-keyed caches and the classifier must see exactly
        # what a from-scratch extraction would produce.
        assert np.array_equal(live_vector, cold_vector), (
            f"feature divergence after prefix of {count} ({label}): "
            f"{live_vector - cold_vector}"
        )


def test_cached_vector_is_served_for_unchanged_graph(simple_trace):
    builder = WCGBuilder()
    extractor = FeatureExtractor()
    for txn in simple_trace.transactions:
        builder.add(txn)
    wcg = builder.build()
    first = extractor.extract(wcg)
    second = extractor.extract(wcg)
    assert second is first  # version unchanged -> same cached array

    builder.add(
        simple_trace.transactions[0].__class__(
            request=simple_trace.transactions[0].request,
            response=simple_trace.transactions[0].response,
        )
    )
    third = extractor.extract(builder.build())
    assert third is not first  # version moved -> re-extracted


def test_cached_vector_is_read_only(simple_trace):
    wcg = build_wcg(simple_trace)
    vector = FeatureExtractor().extract(wcg)
    with pytest.raises(ValueError):
        vector[0] = 123.0
