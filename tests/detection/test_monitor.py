"""Unit tests for session watching and the session table."""

from repro.core.model import HttpMethod
from repro.detection.clues import CluePolicy
from repro.detection.monitor import SessionTable, SessionWatch
from tests.conftest import make_txn


class TestSessionWatch:
    def test_add_tracks_state(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", uri="/x?sid=S1", ts=1.0))
        assert watch.session_ids == {"S1"}
        assert "a.com" in watch.hosts
        assert watch.last_ts == 1.0

    def test_clue_recorded_once(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        first = watch.add(make_txn(host="ek.pw", uri="/a.exe", ts=1.0,
                                   content_type="application/x-msdownload"))
        assert first is not None
        watch.add(make_txn(host="ek.pw", uri="/b.exe", ts=2.0,
                           content_type="application/x-msdownload"))
        assert watch.active_clue is first

    def test_wcg_grows_incrementally(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        order_before = watch.wcg().order
        watch.add(make_txn(host="b.com", ts=2.0))
        assert watch.wcg().order == order_before + 1

    def test_matches_by_session_id(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", uri="/x?sid=SAME", ts=1.0))
        later = make_txn(host="z.org", uri="/y?sid=SAME", ts=500.0)
        assert watch.matches(later, "SAME", idle_gap=60.0)

    def test_matches_by_referrer_within_gap(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        linked = make_txn(host="b.com", ts=10.0, referrer="http://a.com/")
        assert watch.matches(linked, "", idle_gap=60.0)

    def test_no_match_past_idle_gap(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        later = make_txn(host="a.com", ts=1000.0)
        assert not watch.matches(later, "", idle_gap=60.0)

    def test_no_match_other_client(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        other = make_txn(host="a.com", ts=2.0, client="other")
        assert not watch.matches(other, "", idle_gap=60.0)

    def test_referrerless_post_matches(self):
        # The C&C call-back grouping rule (Section V-B timestamps).
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        callback = make_txn(host="fresh-cnc.xyz", ts=5.0,
                            method=HttpMethod.POST)
        assert watch.matches(callback, "", idle_gap=60.0)

    def test_referrerless_get_to_new_host_does_not_match(self):
        watch = SessionWatch(key="k", client="victim", policy=CluePolicy())
        watch.add(make_txn(host="a.com", ts=1.0))
        unrelated = make_txn(host="fresh.org", ts=5.0)
        assert not watch.matches(unrelated, "", idle_gap=60.0)


class TestSessionTable:
    def test_routes_to_same_watch(self):
        table = SessionTable()
        w1 = table.route(make_txn(host="a.com", ts=1.0))
        w2 = table.route(make_txn(host="b.com", ts=2.0,
                                  referrer="http://a.com/"))
        assert w1 is w2

    def test_new_watch_for_unrelated(self):
        table = SessionTable()
        w1 = table.route(make_txn(host="a.com", ts=1.0))
        w2 = table.route(make_txn(host="z.org", ts=2.0))
        assert w1 is not w2
        assert len(table.watches()) == 2

    def test_per_client_isolation(self):
        table = SessionTable()
        w1 = table.route(make_txn(host="a.com", ts=1.0, client="alice"))
        w2 = table.route(make_txn(host="a.com", ts=2.0, client="bob"))
        assert w1 is not w2

    def test_terminated_watch_not_reused(self):
        table = SessionTable()
        w1 = table.route(make_txn(host="a.com", ts=1.0))
        w1.terminated = True
        w2 = table.route(make_txn(host="a.com", ts=2.0))
        assert w2 is not w1

    def test_expire(self):
        table = SessionTable(idle_gap=60.0)
        table.route(make_txn(host="a.com", ts=1.0))
        table.route(make_txn(host="z.org", ts=100.0))
        expired = table.expire(now=130.0)
        assert len(expired) == 1
        assert expired[0].hosts == {"a.com"}

    def test_watch_keys_unique(self):
        table = SessionTable()
        table.route(make_txn(host="a.com", ts=1.0))
        table.route(make_txn(host="z.org", ts=2.0))
        keys = [w.key for w in table.watches()]
        assert len(set(keys)) == len(keys)
