"""Integration-style tests for the on-the-wire detector."""

import pytest

from repro.detection.alerts import Alert, ListSink
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.exceptions import DetectionError
from repro.learning.forest import EnsembleRandomForest
from tests.conftest import make_txn


@pytest.fixture()
def detector(trained_model):
    return OnTheWireDetector(
        trained_model,
        policy=CluePolicy(redirect_threshold=3),
    )


class TestConstruction:
    def test_requires_fitted_classifier(self):
        with pytest.raises(DetectionError, match="fitted"):
            OnTheWireDetector(EnsembleRandomForest())

    def test_alerts_requires_list_sink(self, trained_model):
        class NullSink:
            def emit(self, alert):
                pass

        detector = OnTheWireDetector(trained_model, sink=NullSink())
        detector.sink.emit(None)  # interface works
        with pytest.raises(DetectionError, match="ListSink"):
            _ = detector.alerts


class TestStreaming:
    def test_detects_infection_episode(self, detector, small_corpus):
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        alerts = detector.process_stream(infection.transactions)
        detector.finalize()
        assert len(detector.alerts) >= 1 or len(alerts) >= 1

    def test_benign_streams_mostly_clean(self, trained_model, small_corpus):
        detector = OnTheWireDetector(trained_model)
        false_alerts = 0
        scenarios = [
            t for t in small_corpus.benign
            if t.meta.get("scenario") in ("search", "social", "alexa")
        ][:15]
        for trace in scenarios:
            false_alerts += len(detector.process_stream(trace.transactions))
        assert false_alerts <= 1

    def test_whitelisted_traffic_weeded(self, detector):
        txn = make_txn(host="download.microsoft.com", uri="/x.exe",
                       content_type="application/x-msdownload")
        assert detector.process(txn) is None
        assert detector.transactions_weeded == 1
        assert detector.watch_count() == 0

    def test_whitelist_disabled(self, trained_model):
        detector = OnTheWireDetector(
            trained_model, config=DetectorConfig(use_whitelist=False)
        )
        txn = make_txn(host="download.microsoft.com")
        detector.process(txn)
        assert detector.transactions_weeded == 0
        assert detector.watch_count() == 1

    def test_no_clue_no_classification(self, detector):
        detector.process(make_txn(host="ok.com"))
        detector.process(make_txn(host="ok.com", uri="/style.css", ts=101.0,
                                  content_type="text/css"))
        assert detector.classifications == 0

    def test_alert_terminates_session(self, detector, small_corpus):
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        alerts = detector.process_stream(infection.transactions)
        detector.finalize()
        all_alerts = detector.alerts
        if all_alerts:
            # After the alert, the session is terminated: at most one
            # alert per session key.
            keys = [a.session_key for a in all_alerts]
            assert len(keys) == len(set(keys))

    def test_alert_fields(self, detector, small_corpus):
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        detector.process_stream(infection.transactions)
        detector.finalize()
        assert detector.alerts, "expected at least one alert"
        alert = detector.alerts[0]
        assert isinstance(alert, Alert)
        assert alert.score >= 0.5
        assert alert.wcg_order >= 2
        assert alert.clue is not None

    def test_transactions_seen_counter(self, detector, small_corpus):
        trace = small_corpus.benign[0]
        detector.process_stream(trace.transactions)
        assert detector.transactions_seen == len(trace.transactions)

    def test_interleaved_clients_separate_watches(self, detector):
        detector.process(make_txn(host="a.com", client="alice", ts=1.0))
        detector.process(make_txn(host="a.com", client="bob", ts=1.5))
        assert detector.watch_count() == 2


class TestListSink:
    def test_collects_and_filters(self):
        sink = ListSink()
        alert = Alert(client="c", score=0.9, clue=None, timestamp=0.0,
                      wcg_order=3, wcg_size=5, session_key="c#1")
        sink.emit(alert)
        assert len(sink) == 1
        assert sink.for_client("c") == [alert]
        assert sink.for_client("other") == []
