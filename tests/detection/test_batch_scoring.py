"""Differential tests: micro-batched vs. per-transaction detection.

``process_batch`` defers classifier calls so the watches dirtied within
a decoder batch score as one matrix call.  The contract is that nothing
observable changes: alerts (every field, scores bytewise), counters,
and retained state must match a detector fed the same stream one
transaction at a time through ``process``.
"""

import numpy as np
import pytest

from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector


def _fresh(trained_model, **config_kwargs):
    config = DetectorConfig(**config_kwargs) if config_kwargs else None
    return OnTheWireDetector(
        trained_model,
        policy=CluePolicy(redirect_threshold=3),
        config=config,
    )


def _sequential_replay(detector, stream):
    alerts = []
    for txn in stream:
        alert = detector.process(txn)
        if alert is not None:
            alerts.append(alert)
    detector.finalize()
    return alerts


def _batched_replay(detector, stream, chunk):
    alerts = []
    for start in range(0, len(stream), chunk):
        alerts.extend(detector.process_batch(stream[start:start + chunk]))
    detector.finalize()
    return alerts


def _assert_same_outcome(sequential, batched, alerts_a, alerts_b):
    assert len(alerts_a) == len(alerts_b)
    for left, right in zip(alerts_a, alerts_b):
        assert left == right  # dataclass equality: every field
        assert left.score == right.score  # bytewise, not approx
    assert sequential.transactions_seen == batched.transactions_seen
    assert sequential.transactions_weeded == batched.transactions_weeded
    assert sequential.classifications == batched.classifications
    assert sequential.watch_count() == batched.watch_count()
    assert sequential.alerts == batched.alerts  # sink contents too


@pytest.fixture(scope="module")
def streams(small_corpus):
    """Single-client infection streams plus a multi-client interleave."""
    infections = [
        t for t in small_corpus.infections if not t.meta.get("stealth")
    ][:6]
    merged = []
    for trace in infections:
        merged.extend(trace.transactions)
    merged.sort(key=lambda t: t.timestamp)
    benign = small_corpus.benign[0].transactions
    return {
        "single": infections[0].transactions,
        "interleaved": merged,
        "benign": benign,
    }


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("kind", ["single", "interleaved", "benign"])
    @pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
    def test_alerts_and_counters_match(self, trained_model, streams,
                                       kind, chunk):
        stream = streams[kind]
        sequential = _fresh(trained_model)
        batched = _fresh(trained_model)
        alerts_a = _sequential_replay(sequential, stream)
        alerts_b = _batched_replay(batched, stream, chunk)
        _assert_same_outcome(sequential, batched, alerts_a, alerts_b)

    def test_interleaved_alerts_fire(self, trained_model, streams):
        # The differential above is vacuous unless alerts actually fire.
        detector = _fresh(trained_model)
        alerts = _batched_replay(detector, streams["interleaved"], 10_000)
        assert alerts
        assert detector.classifications > 0

    def test_cooldown_semantics_preserved(self, trained_model, streams):
        # A tight threshold plus a huge cooldown exercises the
        # suppression branch; batched dispatch must suppress the same
        # fragments the sequential walk does.
        stream = streams["interleaved"]
        sequential = _fresh(trained_model, alert_threshold=0.5,
                            alert_cooldown=1e9)
        batched = _fresh(trained_model, alert_threshold=0.5,
                         alert_cooldown=1e9)
        alerts_a = _sequential_replay(sequential, stream)
        alerts_b = _batched_replay(batched, stream, 10_000)
        _assert_same_outcome(sequential, batched, alerts_a, alerts_b)
        assert sequential._last_alert_ts == batched._last_alert_ts

    def test_process_stream_is_batched(self, trained_model, streams):
        stream = streams["single"]
        via_stream = _fresh(trained_model)
        alerts_a = via_stream.process_stream(stream)
        via_stream.finalize()
        sequential = _fresh(trained_model)
        alerts_b = _sequential_replay(sequential, stream)
        assert alerts_a == alerts_b
        assert via_stream.classifications == sequential.classifications


class TestScoreBatchUnit:
    def test_empty_batch_is_noop(self, trained_model):
        detector = _fresh(trained_model)
        assert detector.score_batch([]) == []
        assert detector.classifications == 0

    def test_batch_rows_score_like_single_rows(self, trained_model,
                                               small_dataset):
        # The batched matrix call must be bytewise the per-row calls.
        X, _ = small_dataset
        batch = trained_model.decision_scores(X[:32])
        singles = np.array([
            trained_model.decision_scores(X[i:i + 1])[0] for i in range(32)
        ])
        assert np.array_equal(batch, singles)
