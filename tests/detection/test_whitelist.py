"""Unit tests for trusted-vendor weeding."""

from repro.detection.whitelist import VendorWhitelist
from tests.conftest import make_txn


class TestVendorWhitelist:
    def test_exact_match(self):
        whitelist = VendorWhitelist(["dl.google.com"])
        assert whitelist.trusted("dl.google.com")
        assert whitelist.trusted("DL.GOOGLE.COM")

    def test_subdomain_match(self):
        whitelist = VendorWhitelist(["microsoft.com"])
        assert whitelist.trusted("update.microsoft.com")
        assert whitelist.trusted("a.b.microsoft.com")

    def test_suffix_not_substring(self):
        whitelist = VendorWhitelist(["microsoft.com"])
        assert not whitelist.trusted("notmicrosoft.com")
        assert not whitelist.trusted("microsoft.com.evil.pw")

    def test_untrusted(self):
        whitelist = VendorWhitelist(["pypi.org"])
        assert not whitelist.trusted("evil.pw")

    def test_add(self):
        whitelist = VendorWhitelist([])
        assert not whitelist.trusted("corp.example")
        whitelist.add("corp.example")
        assert whitelist.trusted("corp.example")
        assert whitelist.trusted("files.corp.example")

    def test_filter_transactions(self):
        whitelist = VendorWhitelist(["trusted.com"])
        txns = [
            make_txn(host="trusted.com"),
            make_txn(host="evil.pw", ts=101.0),
            make_txn(host="cdn.trusted.com", ts=102.0),
        ]
        kept = whitelist.filter(txns)
        assert [t.server for t in kept] == ["evil.pw"]

    def test_add_deduplicates(self):
        # Repeated add() must not grow the matching state unboundedly.
        whitelist = VendorWhitelist([])
        for _ in range(100):
            whitelist.add("corp.example")
            whitelist.add("CORP.EXAMPLE.")
        assert len(whitelist) == 1
        assert whitelist.trusted("files.corp.example")

    def test_label_boundary_matching(self):
        whitelist = VendorWhitelist(["google.com"])
        assert whitelist.trusted("dl.google.com")
        assert not whitelist.trusted("evil-google.com")
        assert not whitelist.trusted("google.com.attacker.pw")

    def test_empty_host_untrusted(self):
        whitelist = VendorWhitelist(["example.com"])
        assert not whitelist.trusted("")
        whitelist.add("")  # no-op, not a match-everything entry
        assert not whitelist.trusted("anything.net")

    def test_default_list_covers_vendors(self):
        whitelist = VendorWhitelist()
        assert whitelist.trusted("download.microsoft.com")
        assert whitelist.trusted("pypi.org")
        assert len(whitelist) >= 5
