"""Regression tests: detector and session-table state stays bounded.

The seed implementation never dropped anything: terminated watches sat
in ``SessionTable._watches`` forever (``route()`` re-scanned them per
transaction), and the detector's per-watch scoring dicts and per-client
cooldown map only ever grew.  On a long-lived wire tap that is a slow
memory leak and a slowly degrading hot path.  These tests stream many
short sessions from many clients over a long simulated capture and pin
that every state container stays small while the opened-watch counter
keeps the old accounting semantics.
"""

from __future__ import annotations

from repro.core.model import HttpMethod
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.monitor import SessionTable
from tests.conftest import make_txn


def _benign_session(client: str, base_ts: float, host: str):
    return [
        make_txn(host=host, uri="/", ts=base_ts, client=client),
        make_txn(host=host, uri="/style.css", ts=base_ts + 1.0,
                 client=client, content_type="text/css",
                 referrer=f"http://{host}/"),
    ]


def _infection_burst(prefix: str, base_ts: float, client: str):
    return [
        make_txn(host=f"{prefix}-hop.com", ts=base_ts, status=302,
                 content_type="", client=client,
                 extra_res_headers={"Location": f"http://{prefix}-ek.pw/g"}),
        make_txn(host=f"{prefix}-ek.pw", uri="/g", ts=base_ts + 1,
                 client=client, referrer=f"http://{prefix}-hop.com/"),
        make_txn(host=f"{prefix}-ek.pw", uri="/drop.exe", ts=base_ts + 2,
                 client=client, content_type="application/x-msdownload",
                 referrer=f"http://{prefix}-ek.pw/g"),
        make_txn(host=f"{prefix}-cnc.xyz", uri="/p.php", ts=base_ts + 3,
                 client=client, method=HttpMethod.POST,
                 content_type="text/plain"),
    ]


class TestDetectorStateBounded:
    @staticmethod
    def _run(trained_model, sessions: int):
        config = DetectorConfig(
            alert_threshold=0.2,
            alert_cooldown=50.0,
            idle_gap=30.0,
            prune_after=120.0,
            alert_state_cap=64,
        )
        detector = OnTheWireDetector(trained_model, config=config)
        clients = 160
        stream = []
        for index in range(sessions):
            client = f"host-{index % clients}"
            base_ts = 1000.0 + index * 40.0
            if index % 5 == 0:
                stream.extend(_infection_burst(f"s{index}", base_ts, client))
            else:
                stream.extend(
                    _benign_session(client, base_ts, f"site-{index}.example")
                )
        detector.process_stream(stream)
        return detector, config

    def test_long_multi_session_stream(self, trained_model):
        sessions = 400
        detector, config = self._run(trained_model, sessions)
        live_watches, score_entries, cooldown_entries = \
            detector.tracked_state_size()
        # Retained state is bounded by the prune horizon and the sweep
        # cadence, never by how many sessions flowed through.
        assert live_watches <= 300, live_watches
        assert score_entries <= 12, score_entries
        assert cooldown_entries <= config.alert_state_cap + 8
        # Accounting semantics survive pruning: watches *opened* keeps
        # counting even though most watches are long gone.
        assert detector.watch_count() >= sessions * 0.9
        assert len(detector.alerts) >= 10

        detector.finalize()
        live_watches, score_entries, _ = detector.tracked_state_size()
        assert live_watches == 0
        assert score_entries == 0

    def test_state_does_not_scale_with_stream_length(self, trained_model):
        # The sharp version of boundedness: doubling the stream must not
        # grow any retained container (the seed leaked one watch and two
        # dict entries per session).
        short, _ = self._run(trained_model, 200)
        long, _ = self._run(trained_model, 400)
        short_sizes = short.tracked_state_size()
        long_sizes = long.tracked_state_size()
        for short_size, long_size in zip(short_sizes, long_sizes):
            assert long_size <= max(short_size + 8, short_size * 1.25), (
                short_sizes, long_sizes,
            )

    def test_forgets_scoring_state_on_alert(self, trained_model):
        config = DetectorConfig(alert_threshold=0.2, alert_cooldown=10.0)
        detector = OnTheWireDetector(trained_model, config=config)
        detector.process_stream(_infection_burst("one", 10.0, "victim"))
        assert len(detector.alerts) == 1
        _, score_entries, _ = detector.tracked_state_size()
        assert score_entries == 0  # dropped the moment the watch closed


class TestSessionTablePruning:
    def test_expire_drops_terminated_watches(self):
        table = SessionTable(policy=CluePolicy(), idle_gap=30.0)
        for index in range(20):
            table.route(make_txn(host=f"h{index}.com", ts=100.0 + index,
                                 client=f"c{index}"))
        assert len(table.watches()) == 20
        expired = table.expire(now=100.0 + 20 + 31.0)
        assert len(expired) == 20
        assert table.watches() == []
        assert table.opened_count == 20

    def test_idle_clueless_watches_pruned_during_routing(self):
        table = SessionTable(policy=CluePolicy(), idle_gap=30.0,
                             prune_after=100.0)
        table.route(make_txn(host="old.com", ts=100.0, client="alice"))
        # Time marches on via other clients' traffic; alice's clueless
        # watch falls past the prune horizon and is dropped on her next
        # routed transaction (it gets a fresh watch).
        for index in range(10):
            table.route(make_txn(host=f"b{index}.com",
                                 ts=150.0 + index * 10.0, client="bob"))
        table.route(make_txn(host="new.com", ts=260.0, client="alice"))
        alice = [w for w in table.watches() if w.client == "alice"]
        assert len(alice) == 1
        assert alice[0].hosts == {"new.com"}

    def test_session_id_match_survives_within_prune_horizon(self):
        # The session-ID match intentionally ignores idle_gap; pruning
        # must not break it inside the horizon.
        table = SessionTable(policy=CluePolicy(), idle_gap=30.0,
                             prune_after=500.0)
        first = table.route(make_txn(
            host="app.com", ts=100.0, client="alice",
            extra_req_headers={"Cookie": "PHPSESSID=abc123"},
        ))
        second = table.route(make_txn(
            host="app.com", uri="/later", ts=300.0, client="alice",
            extra_req_headers={"Cookie": "PHPSESSID=abc123"},
        ))
        assert second is first
