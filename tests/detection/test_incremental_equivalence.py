"""Equivalence: incremental redirect inference == batch inference.

The clue detector's incremental :class:`RedirectInferencer` must produce
exactly what the batch :func:`infer_redirects` produces on the same
stream — otherwise streaming detection and offline analytics would
disagree about the same traffic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.redirects import RedirectInferencer, infer_redirects
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import EXPLOIT_KIT_FAMILIES
from repro.synthesis.infection import InfectionGenerator


def _equivalent(transactions):
    batch = infer_redirects(transactions)
    inferencer = RedirectInferencer()
    incremental = []
    for txn in transactions:
        incremental.extend(inferencer.observe(txn))
    assert [(r.source, r.target, r.kind) for r in batch] == [
        (r.source, r.target, r.kind) for r in incremental
    ]
    assert inferencer.redirects == incremental


class TestIncrementalEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6),
           family_index=st.integers(0, len(EXPLOIT_KIT_FAMILIES) - 1))
    def test_infection_streams(self, seed, family_index):
        rng = np.random.default_rng(seed)
        trace = InfectionGenerator(
            EXPLOIT_KIT_FAMILIES[family_index], rng
        ).generate()
        _equivalent(trace.transactions)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_benign_streams(self, seed):
        rng = np.random.default_rng(seed)
        trace = BenignGenerator(rng).generate_session()
        _equivalent(trace.transactions)

    def test_interleaved_multihost_stream(self, small_corpus):
        transactions = []
        for trace in small_corpus.traces[:6]:
            transactions.extend(trace.transactions)
        transactions.sort(key=lambda t: t.timestamp)
        _equivalent(transactions)
