"""Tests for detection-latency measurement."""

import pytest

from repro.detection.latency import (
    EpisodeLatency,
    latency_summary,
    measure_latency,
)


class TestMeasureLatency:
    @pytest.fixture(scope="class")
    def latencies(self, trained_model, small_corpus):
        infections = [
            t for t in small_corpus.infections if not t.meta.get("stealth")
        ][:20]
        return measure_latency(trained_model, infections)

    def test_one_record_per_episode(self, latencies):
        assert len(latencies) == 20

    def test_high_detection_rate(self, latencies):
        detected = sum(1 for l in latencies if l.detected)
        assert detected / len(latencies) > 0.85

    def test_latency_fields_consistent(self, latencies):
        for record in latencies:
            if record.detected:
                assert record.seconds is not None
                assert record.seconds >= 0.0
                assert 0.0 < record.progress <= 1.0
            else:
                assert record.seconds is None
                assert record.progress is None

    def test_mostly_mid_stream(self, latencies):
        # The point of on-the-wire detection: alerts fire before the
        # conversation ends for a meaningful share of episodes.
        detected = [l for l in latencies if l.detected]
        mid_stream = sum(1 for l in detected if l.progress < 1.0)
        assert mid_stream / len(detected) > 0.5

    def test_families_recorded(self, latencies):
        assert all(l.family for l in latencies)


class TestLatencySummary:
    def test_summary_fields(self, trained_model, small_corpus):
        infections = [
            t for t in small_corpus.infections if not t.meta.get("stealth")
        ][:10]
        summary = latency_summary(measure_latency(trained_model, infections))
        assert summary["episodes"] == 10.0
        assert 0.0 <= summary["detection_rate"] <= 1.0
        assert summary["median_seconds"] >= 0.0
        assert 0.0 < summary["median_progress"] <= 1.0

    def test_empty(self):
        assert latency_summary([]) == {"episodes": 0.0,
                                       "detection_rate": 0.0}

    def test_all_missed(self):
        records = [EpisodeLatency(family="X", detected=False)] * 3
        summary = latency_summary(records)
        assert summary["detection_rate"] == 0.0
        assert "median_seconds" not in summary
