"""Differential tests: incremental live decoding == batch decoding.

The incremental :class:`LiveDecoder` (per-stream pairing state machines
over resumable HTTP parsers) must produce *identical* transactions to
the batch :func:`transactions_from_packets` pipeline on the same
capture — otherwise on-the-wire detection and offline analytics would
disagree about the same traffic.  Likewise :class:`LiveDetector` must
raise the same alerts as replaying the batch-decoded stream through the
same detector.
"""

import pytest

from repro.core.model import Headers, Trace
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.live import LiveDecoder, LiveDetector
from repro.net.flows import (
    AddressBook,
    _ConnectionEncoder,
    packets_from_trace,
    transactions_from_packets,
)
from repro.net.http1 import (
    RawHttpRequest,
    RawHttpResponse,
    serialize_request,
    serialize_response,
)
from repro.net.pcap import PcapPacket
from tests.conftest import make_txn


def _ordered(transactions):
    return sorted(
        transactions,
        key=lambda t: (t.timestamp, t.server, t.request.uri),
    )


def _assert_identical(live, batch):
    """Field-level identity, not just matching URI sets."""
    assert len(live) == len(batch)
    for ours, theirs in zip(_ordered(live), _ordered(batch)):
        assert ours.request == theirs.request
        assert ours.response == theirs.response


def _live_decode(packets, book):
    decoder = LiveDecoder(book=book)
    transactions = []
    for packet in packets:
        transactions.extend(decoder.feed(packet))
    transactions.extend(decoder.flush())
    return transactions


def _roundtrip(trace):
    packets, book = packets_from_trace(trace)
    packets.sort(key=lambda p: p.timestamp)
    return packets, book


class TestDecoderEquivalence:
    def test_every_corpus_trace(self, small_corpus):
        """Infection and benign captures decode identically, packet by
        packet, to the batch pipeline."""
        traces = small_corpus.infections[:8] + small_corpus.benign[:8]
        assert traces
        for trace in traces:
            packets, book = _roundtrip(trace)
            _assert_identical(
                _live_decode(packets, book),
                transactions_from_packets(packets, book=book),
            )

    def test_interleaved_infection_and_benign(self, small_corpus):
        """One merged capture with connections interleaving on the wire."""
        merged = Trace(transactions=sorted(
            small_corpus.infections[0].transactions
            + small_corpus.benign[0].transactions,
            key=lambda t: t.timestamp,
        ))
        packets, book = _roundtrip(merged)
        _assert_identical(
            _live_decode(packets, book),
            transactions_from_packets(packets, book=book),
        )

    def test_pipelined_requests(self):
        """Both requests on the wire before either response."""
        book = AddressBook()
        encoder = _ConnectionEncoder(
            book.ip_of("client"), book.ip_of("pipelined.example"), 40001
        )
        requests = [
            serialize_request(RawHttpRequest(
                "GET", f"/{n}", "HTTP/1.1",
                Headers({"Host": "pipelined.example"}), b"",
            ))
            for n in range(2)
        ]
        responses = [
            serialize_response(RawHttpResponse(
                "HTTP/1.1", 200, "OK", Headers(), f"body{n}".encode(),
            ))
            for n in range(2)
        ]
        packets = encoder.open(1.0)
        packets += encoder.send(1.1, True, requests[0] + requests[1])
        packets += encoder.send(1.2, False, responses[0] + responses[1])
        packets += encoder.close(1.3)
        live = _live_decode(packets, book)
        batch = transactions_from_packets(packets, book=book)
        _assert_identical(live, batch)
        assert [t.response.body for t in _ordered(live)] == [b"body0", b"body1"]

    def test_connection_never_closes_until_flush(self):
        """No FIN/RST ever: completed pairs still stream out, and the
        trailing unanswered request only surfaces at flush()."""
        book = AddressBook()
        encoder = _ConnectionEncoder(
            book.ip_of("client"), book.ip_of("open.example"), 40002
        )
        request = serialize_request(RawHttpRequest(
            "GET", "/answered", "HTTP/1.1",
            Headers({"Host": "open.example"}), b"",
        ))
        response = serialize_response(RawHttpResponse(
            "HTTP/1.1", 200, "OK", Headers(), b"done",
        ))
        unanswered = serialize_request(RawHttpRequest(
            "GET", "/unanswered", "HTTP/1.1",
            Headers({"Host": "open.example"}), b"",
        ))
        packets = encoder.open(1.0)
        packets += encoder.send(1.1, True, request)
        packets += encoder.send(1.2, False, response)
        packets += encoder.send(1.3, True, unanswered)

        decoder = LiveDecoder(book=book)
        streamed = []
        for packet in packets:
            streamed.extend(decoder.feed(packet))
        # The answered pair is out already; the unanswered one is held.
        assert [t.request.uri for t in streamed] == ["/answered"]
        flushed = decoder.flush()
        assert [t.request.uri for t in flushed] == ["/unanswered"]
        assert flushed[0].response is None
        _assert_identical(
            streamed + flushed,
            transactions_from_packets(packets, book=book),
        )

    def test_read_until_close_body_waits_for_teardown(self):
        """A response without Content-Length is only delimitable at
        close; the live path must emit the full body, not a prefix."""
        book = AddressBook()
        encoder = _ConnectionEncoder(
            book.ip_of("client"), book.ip_of("legacy.example"), 40003
        )
        request = serialize_request(RawHttpRequest(
            "GET", "/stream", "HTTP/1.1",
            Headers({"Host": "legacy.example"}), b"",
        ))
        packets = encoder.open(1.0)
        packets += encoder.send(1.1, True, request)
        packets += encoder.send(
            1.2, False, b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n"
        )
        packets += encoder.send(1.3, False, b"first half ")
        packets += encoder.send(1.4, False, b"second half")
        packets += encoder.close(1.5)
        live = _live_decode(packets, book)
        _assert_identical(live, transactions_from_packets(packets, book=book))
        assert live[0].response.body == b"first half second half"

    def test_non_http_connection_skipped_by_both(self, small_corpus):
        trace = small_corpus.benign[1]
        packets, book = _roundtrip(trace)
        noise = _ConnectionEncoder(
            book.ip_of("client"), book.ip_of("tls.example"), 40004
        )
        packets += noise.open(0.5)
        packets += noise.send(0.6, True, b"\x16\x03\x01\x02\x00" * 40)
        packets += noise.close(0.7)
        packets.sort(key=lambda p: p.timestamp)
        _assert_identical(
            _live_decode(packets, book),
            transactions_from_packets(packets, book=book),
        )


class TestDetectorEquivalence:
    def test_alert_parity_on_mixed_capture(self, trained_model, small_corpus):
        """Feeding packets one at a time alerts exactly like replaying
        the batch-decoded transaction stream."""
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        benign = small_corpus.benign[0]
        merged = Trace(transactions=sorted(
            infection.transactions + benign.transactions,
            key=lambda t: t.timestamp,
        ))
        packets, book = _roundtrip(merged)
        config = DetectorConfig(alert_threshold=0.5)

        live = LiveDetector(
            OnTheWireDetector(trained_model, config=config), book=book
        )
        live_alerts = []
        for packet in packets:
            live_alerts.extend(live.feed(packet))
        live_alerts.extend(live.finish())

        batch_detector = OnTheWireDetector(trained_model, config=config)
        batch_detector.process_stream(
            transactions_from_packets(packets, book=book)
        )
        batch_detector.finalize()
        batch_alerts = batch_detector.alerts

        assert live_alerts  # the infection fires on the wire
        assert [(a.client, a.clue, a.wcg_order) for a in live_alerts] == [
            (a.client, a.clue, a.wcg_order) for a in batch_alerts
        ]
