"""Behavioural tests for detector policies: cooldown, thresholds, scoring."""

import pytest

from repro.detection.alerts import ListSink
from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from tests.conftest import make_txn


def _infection_burst(host_prefix: str, base_ts: float, client="victim"):
    """A minimal alert-worthy burst: redirects + exploit drop + callback."""
    from repro.core.model import HttpMethod

    return [
        make_txn(host=f"{host_prefix}-hop.com", ts=base_ts, status=302,
                 content_type="", client=client,
                 extra_res_headers={"Location":
                                    f"http://{host_prefix}-ek.pw/g"}),
        make_txn(host=f"{host_prefix}-ek.pw", uri="/g", ts=base_ts + 1,
                 client=client,
                 referrer=f"http://{host_prefix}-hop.com/"),
        make_txn(host=f"{host_prefix}-ek.pw", uri="/drop.exe",
                 ts=base_ts + 2, client=client,
                 content_type="application/x-msdownload",
                 referrer=f"http://{host_prefix}-ek.pw/g"),
        make_txn(host=f"{host_prefix}-cnc.xyz", uri="/p.php",
                 ts=base_ts + 3, client=client,
                 method=HttpMethod.POST, content_type="text/plain"),
    ]


class TestAlertCooldown:
    def test_same_incident_suppressed(self, trained_model):
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_cooldown=300.0, alert_threshold=0.2),
        )
        stream = _infection_burst("one", 10.0)
        # A second, unrelated burst 60 s later (same client).
        stream += _infection_burst("two", 70.0)
        alerts = detector.process_stream(
            sorted(stream, key=lambda t: t.timestamp)
        )
        detector.finalize()
        assert len(detector.alerts) == 1  # second burst inside cooldown

    def test_separated_incidents_both_alert(self, trained_model):
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_cooldown=60.0, alert_threshold=0.2),
        )
        stream = _infection_burst("one", 10.0)
        stream += _infection_burst("two", 500.0)
        alerts = detector.process_stream(
            sorted(stream, key=lambda t: t.timestamp)
        )
        detector.finalize()
        assert len(detector.alerts) == 2

    def test_skewed_clock_stays_in_cooldown(self, trained_model):
        # A second fragment of the same incident arriving with *earlier*
        # timestamps (skewed capture clock / out-of-order delivery) must
        # not page twice: the old `0 <= now - last` guard silently
        # disabled the cooldown whenever the delta went negative.
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_cooldown=300.0, alert_threshold=0.2),
        )
        stream = _infection_burst("one", 1000.0)
        # Same client, second burst stamped 10 minutes in the past.
        stream += _infection_burst("two", 400.0)
        detector.process_stream(stream)  # delivery order, not time order
        detector.finalize()
        assert len(detector.alerts) == 1

    def test_skewed_clock_keeps_monotonic_window(self, trained_model):
        # After a skewed fragment is suppressed, the cooldown window
        # still anchors at the *latest* alert time: a third burst well
        # past the original alert pages again.
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_cooldown=300.0, alert_threshold=0.2),
        )
        stream = _infection_burst("one", 1000.0)
        stream += _infection_burst("two", 400.0)     # suppressed
        stream += _infection_burst("three", 1500.0)  # new incident
        detector.process_stream(stream)
        detector.finalize()
        assert len(detector.alerts) == 2

    def test_cooldown_is_per_client(self, trained_model):
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_cooldown=600.0, alert_threshold=0.2),
        )
        stream = _infection_burst("one", 10.0, client="alice")
        stream += _infection_burst("two", 20.0, client="bob")
        detector.process_stream(sorted(stream, key=lambda t: t.timestamp))
        detector.finalize()
        clients = {a.client for a in detector.alerts}
        assert clients == {"alice", "bob"}


class TestThreshold:
    def test_impossible_threshold_silences(self, trained_model):
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_threshold=1.01),
        )
        detector.process_stream(_infection_burst("x", 1.0))
        detector.finalize()
        assert detector.alerts == []

    def test_zero_threshold_alerts_on_first_clue(self, trained_model):
        detector = OnTheWireDetector(
            trained_model,
            config=DetectorConfig(alert_threshold=0.0),
        )
        alerts = detector.process_stream(_infection_burst("x", 1.0))
        assert alerts  # first scored WCG trips a zero threshold


class TestScoringEconomy:
    def test_classifications_bounded_by_updates(self, trained_model,
                                                small_corpus):
        detector = OnTheWireDetector(trained_model)
        trace = small_corpus.infections[0]
        detector.process_stream(trace.transactions)
        detector.finalize()
        assert detector.classifications <= len(trace.transactions) + \
            detector.watch_count()

    def test_custom_sink_receives_alerts(self, trained_model):
        sink = ListSink()
        detector = OnTheWireDetector(
            trained_model, sink=sink,
            config=DetectorConfig(alert_threshold=0.2),
        )
        detector.process_stream(_infection_burst("y", 1.0))
        detector.finalize()
        assert len(sink) >= 1
