"""Metrics must observe the pipeline, never steer it.

The contract of the observability layer (DESIGN.md §11): running the
exact same capture with metrics enabled and disabled produces
byte-identical transactions, graphs, feature vectors, and alerts — the
instruments only count.  And when enabled, the counters must agree with
the pipeline's own ground truth (alert totals, cache versions), or the
telemetry is lying.
"""

import numpy as np

from repro.core.builder import build_wcg
from repro.core.model import Trace
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.live import LiveDecoder, LiveDetector
from repro.features.extractor import FeatureExtractor
from repro.net.flows import packets_from_trace
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    PipelineStatsReporter,
    use_registry,
)
from tests.conftest import make_txn


def _merged_capture(small_corpus):
    infection = next(
        t for t in small_corpus.infections if not t.meta.get("stealth")
    )
    benign = small_corpus.benign[0]
    merged = Trace(transactions=sorted(
        infection.transactions + benign.transactions,
        key=lambda t: t.timestamp,
    ))
    packets, book = packets_from_trace(merged)
    packets.sort(key=lambda p: p.timestamp)
    return packets, book


def _run_live(trained_model, packets, book, reporter=None):
    """One full LiveDetector pass under the currently active registry."""
    detector = OnTheWireDetector(
        trained_model, config=DetectorConfig(alert_threshold=0.5)
    )
    live = LiveDetector(detector, book=book, reporter=reporter)
    for packet in packets:
        live.feed(packet)
    live.finish()
    return detector, live


def _alert_tuples(detector):
    return [
        (a.client, a.clue, a.score, a.wcg_order, a.wcg_size)
        for a in detector.alerts
    ]


class TestMetricsAreInert:
    def test_live_run_is_byte_identical_on_and_off(
        self, trained_model, small_corpus
    ):
        packets, book = _merged_capture(small_corpus)

        with use_registry(NULL_REGISTRY):
            base_detector, base_live = _run_live(trained_model, packets, book)
        registry = MetricsRegistry()
        with use_registry(registry):
            obs_detector, obs_live = _run_live(trained_model, packets, book)

        # Same transactions surfaced, same watches, same classifier work,
        # same alerts down to the float scores.
        assert obs_live.transactions_emitted == base_live.transactions_emitted
        assert obs_detector.transactions_seen == base_detector.transactions_seen
        assert obs_detector.classifications == base_detector.classifications
        assert obs_detector.watch_count() == base_detector.watch_count()
        assert _alert_tuples(obs_detector) == _alert_tuples(base_detector)
        assert base_detector.alerts  # the capture does alert

        # The counters agree with the pipeline's own ground truth.
        counters = registry.snapshot()["counters"]
        assert counters["detector.alerts"] == len(obs_detector.alerts)
        assert (counters["detector.transactions"]
                == obs_detector.transactions_seen)
        assert (counters["detector.scores_requested"]
                == obs_detector.classifications)
        assert counters["session.watches_opened"] == obs_detector.watch_count()

    def test_decoder_graphs_and_vectors_identical(self, small_corpus):
        packets, book = _merged_capture(small_corpus)

        def decode():
            decoder = LiveDecoder(book=book)
            transactions = []
            for packet in packets:
                transactions.extend(decoder.feed(packet))
            transactions.extend(decoder.flush())
            return transactions

        with use_registry(NULL_REGISTRY):
            base_txns = decode()
            base_wcg = build_wcg(base_txns)
            base_vector = FeatureExtractor().extract(base_wcg)
        with use_registry():
            obs_txns = decode()
            obs_wcg = build_wcg(obs_txns)
            obs_vector = FeatureExtractor().extract(obs_wcg)

        assert len(obs_txns) == len(base_txns)
        for ours, theirs in zip(obs_txns, base_txns):
            assert ours.request == theirs.request
            assert ours.response == theirs.response
        base_graph = base_wcg.simple_graph()
        obs_graph = obs_wcg.simple_graph()
        assert set(obs_graph.nodes) == set(base_graph.nodes)
        assert set(obs_graph.edges) == set(base_graph.edges)
        assert np.array_equal(obs_vector, base_vector)


class TestCountersMatchGroundTruth:
    def test_extractor_cache_counters_track_versions(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            extractor = FeatureExtractor()
            wcg = build_wcg([make_txn(ts=1.0)])
            extractor.extract(wcg)  # cold: vector + topology miss
            extractor.extract(wcg)  # warm: vector hit, topology untouched
        counters = registry.snapshot()["counters"]
        assert counters["features.vector_cache_misses"] == 1
        assert counters["features.vector_cache_hits"] == 1
        assert counters["features.topology_cache_misses"] == 1
        assert counters["features.topology_cache_hits"] == 0

        with use_registry(registry):
            # A feature-bearing mutation without new structure: re-uses
            # the topology tier, recomputes the vector.
            structure_before = wcg.structure_version
            wcg.dnt = True
            assert wcg.structure_version == structure_before
            extractor.extract(wcg)
        counters = registry.snapshot()["counters"]
        assert counters["features.vector_cache_misses"] == 2
        assert counters["features.topology_cache_hits"] == 1
        assert counters["features.topology_cache_misses"] == 1

        with use_registry(registry):
            # New structure (a new host pair) invalidates both tiers.
            builder_txns = [make_txn(ts=1.0),
                            make_txn(host="other.com", ts=2.0)]
            wcg2 = build_wcg(builder_txns)
            assert wcg2.structure_version > 0
            extractor.extract(wcg2)
        counters = registry.snapshot()["counters"]
        assert counters["features.topology_cache_misses"] == 2

    def test_enabled_run_emits_complete_snapshot(
        self, trained_model, small_corpus
    ):
        """The acceptance snapshot: nonzero stage counters, span
        timings, and a populated score-latency histogram."""
        packets, book = _merged_capture(small_corpus)
        registry = MetricsRegistry()
        with use_registry(registry):
            reporter = PipelineStatsReporter(registry=registry)
            detector, live = _run_live(
                trained_model, packets, book, reporter=reporter
            )

        assert reporter.emitted >= 1  # finish() emitted the finalize line
        snapshot = reporter.snapshot("final")
        counters = snapshot["counters"]
        for name in (
            "decode.packets",
            "decode.bytes",
            "http.transactions",
            "detector.transactions",
            "detection.clues_fired",
            "detector.scores_requested",
            "detector.alerts",
            "session.watches_opened",
            "wcg.edges_appended",
            "features.vector_cache_misses",
        ):
            assert counters[name] > 0, name
        assert counters["decode.packets"] == len(packets)

        histograms = snapshot["histograms"]
        for name in (
            "span.decode.feed",
            "span.detector.process_batch",
            "span.detector.finalize",
            "detector.score_latency_seconds",
            "detector.score_batch_size",
        ):
            assert histograms[name]["count"] > 0, name
            assert histograms[name]["p50"] is not None, name
        assert (histograms["detector.score_latency_seconds"]["min"] or 0) >= 0

        # Engine-tagged forest counter matches the scoring volume.
        engine_rows = sum(
            value for name, value in counters.items()
            if name.startswith("forest.rows_scored.")
        )
        assert engine_rows >= detector.classifications
